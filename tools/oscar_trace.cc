// Offline analyzer for `.otrace` columnar binary traces (written by
// `oscar_sim --trace-file x.otrace` / `oscar_serve --trace-file=x.otrace`;
// format in src/trace/columnar_trace.h).
//
//   oscar_trace run.otrace                per-scope summaries: event-kind
//                                         counts, lookup latency
//                                         percentiles, queue-depth /
//                                         in-flight stats, and an ASCII
//                                         time x peer-bucket heatmap
//   oscar_trace run.otrace --csv          decode to CSV on stdout —
//                                         byte-identical to what the
//                                         direct CSV sink would have
//                                         streamed for the same run
//   oscar_trace run.otrace --time-buckets=96 --peer-buckets=24
//                                         heatmap resolution
//   oscar_trace run.otrace --no-heatmap   summaries only
//
// Exit codes: 0 on success, 2 on flag-parse errors or an unreadable /
// corrupt trace file.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "metrics/message_metrics.h"
#include "trace/trace.h"
#include "trace/trace_reader.h"

namespace oscar {
namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: oscar_trace FILE.otrace [--csv] [--no-heatmap]\n"
         "                   [--time-buckets=N] [--peer-buckets=N]\n"
         "modes: default = per-scope summaries + heatmap; --csv = decode\n"
         "to the t_ms,scenario,event,... CSV rows on stdout\n";
}

int RejectUsage(const std::string& message) {
  std::cerr << "oscar_trace: " << message << "\n";
  PrintUsage(std::cerr);
  return 2;
}

bool FlagValue(const std::string& arg, const std::string& flag,
               std::string* value) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

/// Everything the summary mode aggregates for one scope (scenario or
/// sweep cell), in first-appearance order.
struct ScopeStats {
  std::string name;
  size_t total = 0;
  size_t counts[static_cast<size_t>(TraceKind::kCount)] = {};
  uint64_t t_min_us = 0;
  uint64_t t_max_us = 0;

  // Lookup lifecycle: start time by lookup id, closed latencies.
  std::map<uint32_t, uint64_t> open_lookups;
  std::vector<double> latencies_ms;
  size_t started = 0;
  size_t done = 0;
  size_t failed = 0;

  // Timeline gauges (sim kQueueDepth/kInFlight and the serve kinds).
  size_t depth_samples = 0;
  uint64_t depth_sum = 0;
  uint32_t depth_max = 0;
  uint32_t in_flight_max = 0;
  uint32_t backlog_max = 0;
  uint32_t served_dropped = 0;  // Cumulative, so last sample wins.
  uint32_t served_shed = 0;

  // Heatmap input: peer-bearing events as (t_us, peer).
  std::vector<std::pair<uint64_t, uint32_t>> peer_events;
  uint32_t peer_max = 0;
};

size_t CountOf(const ScopeStats& scope, TraceKind kind) {
  return scope.counts[static_cast<size_t>(kind)];
}

void Aggregate(const TraceEvent& event, ScopeStats* scope) {
  if (scope->total == 0) {
    scope->t_min_us = event.t_us;
    scope->t_max_us = event.t_us;
  } else {
    scope->t_min_us = std::min(scope->t_min_us, event.t_us);
    scope->t_max_us = std::max(scope->t_max_us, event.t_us);
  }
  ++scope->total;
  ++scope->counts[static_cast<size_t>(event.kind)];
  switch (event.kind) {
    case TraceKind::kStart:
      ++scope->started;
      scope->open_lookups[event.lookup] = event.t_us;
      break;
    case TraceKind::kDone:
    case TraceKind::kFailed: {
      event.kind == TraceKind::kDone ? ++scope->done : ++scope->failed;
      auto it = scope->open_lookups.find(event.lookup);
      if (it != scope->open_lookups.end()) {
        scope->latencies_ms.push_back(
            static_cast<double>(event.t_us - it->second) / 1000.0);
        scope->open_lookups.erase(it);
      }
      break;
    }
    case TraceKind::kQueueDepth:
    case TraceKind::kServeQueueDepth:
      ++scope->depth_samples;
      scope->depth_sum += event.info;
      scope->depth_max = std::max(scope->depth_max, event.info);
      break;
    case TraceKind::kInFlight:
      scope->in_flight_max = std::max(scope->in_flight_max, event.info);
      if (event.to != kTraceNone) {
        scope->backlog_max = std::max(scope->backlog_max, event.to);
      }
      break;
    case TraceKind::kServeInFlight:
      scope->in_flight_max = std::max(scope->in_flight_max, event.info);
      break;
    case TraceKind::kServeDropped:
      scope->served_dropped = event.info;
      if (event.to != kTraceNone) scope->served_shed = event.to;
      break;
    default:
      break;
  }
  if (event.peer != kTraceNone) {
    scope->peer_events.emplace_back(event.t_us, event.peer);
    scope->peer_max = std::max(scope->peer_max, event.peer);
  }
}

/// Density ramp from empty to saturated; any non-zero cell gets at
/// least the first non-blank glyph.
constexpr char kRamp[] = " .:-=+*#%@";
constexpr size_t kRampLevels = sizeof(kRamp) - 1;

void PrintHeatmap(const ScopeStats& scope, size_t time_buckets,
                  size_t peer_buckets) {
  if (scope.peer_events.empty()) return;
  peer_buckets = std::min<size_t>(
      peer_buckets, static_cast<size_t>(scope.peer_max) + 1);
  const uint64_t t0 = scope.t_min_us;
  const uint64_t span = scope.t_max_us - t0 + 1;
  std::vector<std::vector<size_t>> grid(
      peer_buckets, std::vector<size_t>(time_buckets, 0));
  for (const auto& [t_us, peer] : scope.peer_events) {
    const size_t col = static_cast<size_t>(
        static_cast<uint64_t>(time_buckets) * (t_us - t0) / span);
    const size_t row = static_cast<size_t>(
        static_cast<uint64_t>(peer_buckets) * peer /
        (static_cast<uint64_t>(scope.peer_max) + 1));
    ++grid[row][col];
  }
  size_t cell_max = 0;
  for (const auto& row : grid) {
    for (size_t cell : row) cell_max = std::max(cell_max, cell);
  }
  std::cout << "heatmap: peer-bearing events, t=["
            << TraceTimeMs(scope.t_min_us) << ".."
            << TraceTimeMs(scope.t_max_us) << "] ms ("
            << time_buckets << " cols) x peers 0.." << scope.peer_max
            << " (" << peer_buckets << " rows), max cell=" << cell_max
            << "\n";
  const size_t peers_per_row =
      (static_cast<size_t>(scope.peer_max) + peer_buckets) / peer_buckets;
  for (size_t row = 0; row < peer_buckets; ++row) {
    std::string line;
    line.reserve(time_buckets);
    for (size_t col = 0; col < time_buckets; ++col) {
      const size_t count = grid[row][col];
      size_t level = 0;
      if (count > 0) {
        // Ceiling-scale so 1 event is visible and cell_max saturates.
        level = 1 + (count - 1) * (kRampLevels - 2) / cell_max;
        level = std::min(level, kRampLevels - 1);
      }
      line.push_back(kRamp[level]);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "p%6zu |", row * peers_per_row);
    std::cout << label << line << "|\n";
  }
}

void PrintScopeSummary(const ScopeStats& scope, bool heatmap,
                       size_t time_buckets, size_t peer_buckets) {
  std::cout << "== scope \""
            << (scope.name.empty() ? "(default)" : scope.name) << "\" ==\n"
            << "events: " << scope.total << " over ["
            << TraceTimeMs(scope.t_min_us) << ".."
            << TraceTimeMs(scope.t_max_us) << "] ms\n";
  std::string kinds = "kinds:";
  for (size_t k = 0; k < static_cast<size_t>(TraceKind::kCount); ++k) {
    if (scope.counts[k] == 0) continue;
    kinds += StrCat(" ", TraceKindName(static_cast<TraceKind>(k)), "=",
                    scope.counts[k]);
  }
  std::cout << kinds << "\n";
  if (scope.started > 0) {
    std::cout << "lookups: started=" << scope.started
              << " done=" << scope.done << " failed=" << scope.failed
              << " open=" << scope.open_lookups.size() << "\n";
    if (!scope.latencies_ms.empty()) {
      const LatencySummary latency =
          SummarizeLatency(scope.latencies_ms);
      std::cout << "latency_ms: mean=" << FormatDouble(latency.mean_ms, 3)
                << " p50=" << FormatDouble(latency.p50_ms, 3)
                << " p95=" << FormatDouble(latency.p95_ms, 3)
                << " p99=" << FormatDouble(latency.p99_ms, 3)
                << " max=" << FormatDouble(latency.max_ms, 3) << "\n";
    }
  }
  if (scope.depth_samples > 0) {
    std::cout << "queue_depth: samples=" << scope.depth_samples
              << " max=" << scope.depth_max << " mean="
              << FormatDouble(static_cast<double>(scope.depth_sum) /
                                  static_cast<double>(scope.depth_samples),
                              2)
              << "\n";
  }
  if (scope.in_flight_max > 0 || scope.backlog_max > 0) {
    std::cout << "in_flight: max=" << scope.in_flight_max
              << " backlog_max=" << scope.backlog_max << "\n";
  }
  if (CountOf(scope, TraceKind::kServeDropped) > 0) {
    std::cout << "serve: dropped=" << scope.served_dropped
              << " shed=" << scope.served_shed << "\n";
  }
  if (heatmap) PrintHeatmap(scope, time_buckets, peer_buckets);
  std::cout << "\n";
}

/// --csv: replays the decoded records through the same CsvTraceSink
/// class both CLIs use for direct CSV traces, so the bytes match the
/// direct path by construction.
void ReplayCsv(const TraceContents& contents) {
  CsvTraceSink sink(&std::cout);
  for (const TraceRecord& record : contents.records) {
    sink.SetScope(sink.Intern(contents.scope_text(record)));
    sink.Append(record.event);
  }
  sink.Flush();
}

int RunCli(const std::vector<std::string>& args) {
  std::string path;
  bool csv = false;
  bool heatmap = true;
  uint64_t time_buckets = 72;
  uint64_t peer_buckets = 16;

  for (const std::string& arg : args) {
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--no-heatmap") {
      heatmap = false;
    } else if (FlagValue(arg, "--time-buckets", &value)) {
      if (!ParseUint(value, &time_buckets) || time_buckets == 0 ||
          time_buckets > 512) {
        return RejectUsage(StrCat("--time-buckets wants 1..512, got '",
                                  value, "'"));
      }
    } else if (FlagValue(arg, "--peer-buckets", &value)) {
      if (!ParseUint(value, &peer_buckets) || peer_buckets == 0 ||
          peer_buckets > 256) {
        return RejectUsage(StrCat("--peer-buckets wants 1..256, got '",
                                  value, "'"));
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return RejectUsage(StrCat("unknown flag: '", arg, "'"));
    } else if (path.empty()) {
      path = arg;
    } else {
      return RejectUsage("expected exactly one trace file");
    }
  }
  if (path.empty()) {
    return RejectUsage("missing trace file argument");
  }

  auto decoded = ReadTraceFile(path);
  if (!decoded.ok()) {
    std::cerr << "oscar_trace: " << decoded.status().message() << "\n";
    return 2;
  }
  const TraceContents& contents = decoded.value();

  if (csv) {
    ReplayCsv(contents);
    if (!std::cout) {
      std::cerr << "oscar_trace: error writing CSV to stdout\n";
      return 2;
    }
    return 0;
  }

  // Group by scope, first-appearance order (matches emission order).
  std::vector<ScopeStats> scopes;
  std::map<uint32_t, size_t> scope_index;
  for (const TraceRecord& record : contents.records) {
    auto [it, fresh] = scope_index.emplace(record.scope, scopes.size());
    if (fresh) {
      scopes.emplace_back();
      scopes.back().name = contents.scope_text(record);
    }
    Aggregate(record.event, &scopes[it->second]);
  }

  std::cout << "# oscar_trace: " << path << "\n"
            << "# " << contents.records.size() << " events in "
            << contents.blocks << " blocks, " << scopes.size()
            << " scopes, " << contents.strings.size()
            << " interned strings\n\n";
  for (const ScopeStats& scope : scopes) {
    PrintScopeSummary(scope, heatmap, static_cast<size_t>(time_buckets),
                      static_cast<size_t>(peer_buckets));
  }
  return 0;
}

}  // namespace
}  // namespace oscar

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return oscar::RunCli(args);
}

// Scenario runner for the discrete-event message-level simulator.
//
//   oscar_sim                  run every cataloged scenario
//   oscar_sim flash-crowd ...  run the named scenario(s)
//   oscar_sim --list           print the catalog
//   oscar_sim --cross-check    verify the message engine reproduces the
//                              synchronous engine's per-query hop counts
//                              (zero latency, one lookup in flight)
//
// Scale and seed come from the same environment knobs the bench
// harnesses use (see ScaleFromEnv): OSCAR_BENCH_SCALE=small|paper,
// OSCAR_BENCH_SIZE, OSCAR_BENCH_QUERIES (lookups), OSCAR_BENCH_SEED.
// Output follows the harness conventions — `#`-prefixed banner, aligned
// tables — and is byte-identical across runs with identical knobs.
//
// Exit codes: 0 on success, 1 on a failed cross-check, 2 on an
// infrastructure error (unknown scenario, experiment Status error).

#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiments.h"
#include "sim/scenario.h"

namespace oscar {
namespace {

void PrintBanner(const ExperimentScale& scale) {
  std::cout << "###############################################\n"
            << "# oscar_sim\n"
            << "# Discrete-event message-level scenario runner\n"
            << "# scale: target_size=" << scale.target_size
            << " queries=" << scale.queries << " seed=" << scale.seed
            << " (OSCAR_BENCH_SCALE=small|paper)\n"
            << "###############################################\n";
}

int RunCli(const std::vector<std::string>& args) {
  bool list = false;
  bool cross_check = false;
  std::vector<std::string> names;
  for (const std::string& arg : args) {
    if (arg == "--list") {
      list = true;
    } else if (arg == "--cross-check") {
      cross_check = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: oscar_sim [--list] [--cross-check] "
                   "[scenario ...]\nscenarios:";
      for (const std::string& name : ScenarioCatalog()) {
        std::cout << " " << name;
      }
      std::cout << "\n";
      return 0;
    } else {
      names.push_back(arg);
    }
  }

  const ExperimentScale scale = ScaleFromEnv();
  ScenarioOptions base;
  base.network_size = scale.target_size;
  base.lookups = scale.queries;
  base.seed = scale.seed;

  if (list) {
    for (const std::string& name : ScenarioCatalog()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  PrintBanner(scale);

  if (cross_check) {
    auto checked = CrossCheckMessageVsSync(base);
    if (!checked.ok()) {
      std::cout << "# cross-check: message-level vs synchronous ... "
                << "MISMATCH (" << checked.status().message() << ")\n";
      return 1;
    }
    std::cout << "# cross-check: message-level vs synchronous hop counts"
              << " over " << checked.value() << " queries ... OK\n";
    if (names.empty()) return 0;
  }

  if (names.empty()) names = ScenarioCatalog();

  TablePrinter table("scenario runs (message-level engine)");
  table.SetHeader({"scenario", "n", "lookups", "done", "ok%", "p50_ms",
                   "p95_ms", "hops", "wasted", "msgs", "timeout", "retry",
                   "peak_ifl", "load_p2m", "gini", "crash", "join"});
  for (const std::string& name : names) {
    auto run = RunScenario(name, base);
    if (!run.ok()) {
      std::cerr << "oscar_sim: " << name << ": " << run.status().message()
                << "\n";
      return 2;
    }
    const ScenarioResult& result = run.value();
    const MessageSimReport& report = result.report;
    table.AddRow({
        name,
        StrCat(result.options.network_size),
        StrCat(report.submitted),
        StrCat(report.completed),
        FormatDouble(report.success_rate * 100.0, 1),
        FormatDouble(report.latency.p50_ms, 1),
        FormatDouble(report.latency.p95_ms, 1),
        FormatDouble(report.mean_hops, 2),
        FormatDouble(report.mean_wasted, 2),
        StrCat(report.messages_sent),
        StrCat(report.timeouts),
        StrCat(report.retries),
        StrCat(report.peak_in_flight),
        FormatDouble(report.peer_load.peak_to_mean, 1),
        FormatDouble(report.peer_load.gini, 3),
        StrCat(result.crashed),
        StrCat(result.joined),
    });
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace oscar

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return oscar::RunCli(args);
}

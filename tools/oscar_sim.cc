// Scenario runner for the discrete-event message-level simulator.
//
//   oscar_sim                     run every cataloged scenario
//   oscar_sim flash-crowd ...     run the named scenario(s)
//   oscar_sim --scenarios a,b,c   same, comma-separated
//   oscar_sim --list              print the catalog
//   oscar_sim --trace-file F.csv  stream the event trace as CSV rows
//   oscar_sim --cross-check       verify the message engine reproduces
//                                 the synchronous engine's per-query hop
//                                 counts (zero latency, one in flight)
//
// The network is grown ONCE per (seed, size, overlay) and frozen as a
// TopologySnapshot; every requested scenario replays against a cheap
// restore of that snapshot instead of regrowing. The grow-vs-run wall
// time split is reported on stderr (stdout stays byte-identical across
// runs with identical knobs; only stderr carries timing).
//
// Scale and seed come from the same environment knobs the bench
// harnesses use (see ScaleFromEnv): OSCAR_BENCH_SCALE=small|paper,
// OSCAR_BENCH_SIZE, OSCAR_BENCH_QUERIES (lookups), OSCAR_BENCH_SEED.
// Output follows the harness conventions — `#`-prefixed banner, aligned
// tables.
//
// Exit codes: 0 on success, 1 on a failed cross-check, 2 on an
// infrastructure error (unknown scenario, experiment Status error).

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiments.h"
#include "sim/scenario.h"

namespace oscar {
namespace {

void PrintBanner(const ExperimentScale& scale) {
  std::cout << "###############################################\n"
            << "# oscar_sim\n"
            << "# Discrete-event message-level scenario runner\n"
            << "# scale: target_size=" << scale.target_size
            << " queries=" << scale.queries << " seed=" << scale.seed
            << " (OSCAR_BENCH_SCALE=small|paper)\n"
            << "###############################################\n";
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void PrintUsage(std::ostream& out) {
  out << "usage: oscar_sim [--list] [--cross-check] "
         "[--scenarios a,b,c] [--trace-file out.csv] "
         "[scenario ...]\nscenarios:";
  for (const std::string& name : ScenarioCatalog()) {
    out << " " << name;
  }
  out << "\n";
}

/// Flag-parse rejection: one diagnostic plus the usage line, exit 2
/// (the CLI's infrastructure-error code, distinct from a failed
/// cross-check's exit 1).
int RejectUsage(const std::string& message) {
  std::cerr << "oscar_sim: " << message << "\n";
  PrintUsage(std::cerr);
  return 2;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int RunCli(const std::vector<std::string>& args) {
  bool list = false;
  bool cross_check = false;
  std::string trace_path;
  std::vector<std::string> names;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--cross-check") {
      cross_check = true;
    } else if (arg == "--scenarios" || arg.rfind("--scenarios=", 0) == 0) {
      // Repeats accumulate (like listing the names bare); an empty
      // value — separate or trailing `=` — is always a rejection.
      std::string raw_list;
      if (arg == "--scenarios") {
        if (i + 1 >= args.size()) {
          return RejectUsage("--scenarios requires a comma-separated list");
        }
        raw_list = args[++i];
      } else {
        raw_list = arg.substr(sizeof("--scenarios=") - 1);
      }
      std::vector<std::string> parsed = SplitCommaList(raw_list);
      if (parsed.empty()) {
        return RejectUsage("--scenarios got an empty list");
      }
      for (std::string& name : parsed) names.push_back(std::move(name));
    } else if (arg == "--trace-file" || arg.rfind("--trace-file=", 0) == 0) {
      if (!trace_path.empty()) {
        return RejectUsage("duplicate --trace-file (one trace per run)");
      }
      if (arg == "--trace-file") {
        if (i + 1 >= args.size()) {
          return RejectUsage("--trace-file requires a path");
        }
        trace_path = args[++i];
      } else {
        trace_path = arg.substr(sizeof("--trace-file=") - 1);
      }
      if (trace_path.empty()) {
        return RejectUsage("--trace-file requires a path");
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      return RejectUsage(StrCat("unknown flag: '", arg, "'"));
    } else {
      names.push_back(arg);
    }
  }

  const ExperimentScale scale = ScaleFromEnv();
  ScenarioOptions base;
  base.network_size = scale.target_size;
  base.lookups = scale.queries;
  base.seed = scale.seed;

  if (list) {
    for (const std::string& name : ScenarioCatalog()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  PrintBanner(scale);

  if (!cross_check && names.empty()) names = ScenarioCatalog();

  // Validate names before paying for growth — every name, not just the
  // first bad one's predecessors, so `valid,bogus` still exits 2.
  for (const std::string& name : names) {
    if (auto probe = MakeScenarioOptions(name, base); !probe.ok()) {
      return RejectUsage(probe.status().message());
    }
  }

  std::ofstream trace_file;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::cerr << "oscar_sim: cannot open trace file: " << trace_path
                << "\n";
      return 2;
    }
    trace_file << "t_ms,event,lookup,peer,to,info\n";
  }

  // One grow per (seed, size, overlay), shared by the cross-check and
  // every scenario run (each replays a restore of the frozen snapshot).
  const auto grow_start = std::chrono::steady_clock::now();
  auto grown = GrowScenarioTopology(base);
  if (!grown.ok()) {
    std::cerr << "oscar_sim: grow: " << grown.status().message() << "\n";
    return 2;
  }
  const double grow_s = SecondsSince(grow_start);

  if (cross_check) {
    auto checked = CrossCheckMessageVsSync(base, grown.value());
    if (!checked.ok()) {
      std::cout << "# cross-check: message-level vs synchronous ... "
                << "MISMATCH (" << checked.status().message() << ")\n";
      return 1;
    }
    std::cout << "# cross-check: message-level vs synchronous hop counts"
              << " over " << checked.value() << " queries ... OK\n";
    if (names.empty()) return 0;
  }

  TablePrinter table("scenario runs (message-level engine)");
  table.SetHeader({"scenario", "n", "lookups", "done", "ok%", "p50_ms",
                   "p95_ms", "hops", "wasted", "msgs", "timeout", "retry",
                   "peak_ifl", "load_p2m", "gini", "crash", "join"});
  const auto run_start = std::chrono::steady_clock::now();
  // One scratch network recycled across scenario replays: each
  // RunScenarioOn delta-restores it (repairing only what the previous
  // scenario's churn touched) instead of rebuilding all N peer rows.
  Network scratch;
  for (const std::string& name : names) {
    ScenarioOptions options = base;
    if (trace_file.is_open()) {
      trace_file << "# scenario=" << name << "\n";
      options.sim.trace_csv = &trace_file;
    }
    auto run = RunScenarioOn(name, options, grown.value(), &scratch);
    if (!run.ok()) {
      std::cerr << "oscar_sim: " << name << ": " << run.status().message()
                << "\n";
      return 2;
    }
    const ScenarioResult& result = run.value();
    const MessageSimReport& report = result.report;
    table.AddRow({
        name,
        StrCat(result.options.network_size),
        StrCat(report.submitted),
        StrCat(report.completed),
        FormatDouble(report.success_rate * 100.0, 1),
        FormatDouble(report.latency.p50_ms, 1),
        FormatDouble(report.latency.p95_ms, 1),
        FormatDouble(report.mean_hops, 2),
        FormatDouble(report.mean_wasted, 2),
        StrCat(report.messages_sent),
        StrCat(report.timeouts),
        StrCat(report.retries),
        StrCat(report.peak_in_flight),
        FormatDouble(report.peer_load.peak_to_mean, 1),
        FormatDouble(report.peer_load.gini, 3),
        StrCat(result.crashed),
        StrCat(result.joined),
    });
  }
  const double run_s = SecondsSince(run_start);
  table.Print(std::cout);
  std::cerr << "# timing: grow=" << FormatDouble(grow_s, 2) << "s (1 grow, "
            << names.size() << " scenario run"
            << (names.size() == 1 ? "" : "s") << ") run="
            << FormatDouble(run_s, 2) << "s\n";
  return 0;
}

}  // namespace
}  // namespace oscar

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return oscar::RunCli(args);
}

// Scenario runner for the discrete-event message-level simulator.
//
//   oscar_sim                     run every cataloged scenario
//   oscar_sim flash-crowd ...     run the named scenario(s)
//   oscar_sim --scenarios a,b,c   same, comma-separated
//   oscar_sim --list              print the catalog
//   oscar_sim --trace-file F      stream the event trace; a `.otrace`
//                                 extension selects the binary columnar
//                                 encoding, anything else CSV rows
//   oscar_sim --trace-format F    override that choice (csv | otrace)
//   oscar_sim --queue-cadence-ms N  queue-depth/in-flight timeline
//                                 sample cadence in virtual ms while
//                                 tracing (default 10, 0 disables)
//   oscar_sim --maintenance-cadence-ms N  run Maintainer::RunRound
//                                 against the live network every N
//                                 virtual ms mid-scenario (0 forces
//                                 repair off; unset lets each scenario
//                                 pick — hostile ones default it on)
//   oscar_sim --fault-plan SPEC   inject extra faults in virtual time,
//                                 e.g. 'crash@80:0.2,0.1;partition@
//                                 100+300:0.0,0.25,0.5,0.25,0.9;slow@
//                                 200+150:0.6,0.2,25' (see
//                                 sim/fault_plan.h for the grammar);
//                                 added on top of the scenario's own plan
//   oscar_sim --cross-check       verify the message engine reproduces
//                                 the synchronous engine's per-query hop
//                                 counts (zero latency, one in flight)
//
// The network is grown ONCE per (seed, size, overlay) and frozen as a
// TopologySnapshot; every requested scenario replays against a cheap
// restore of that snapshot instead of regrowing. The grow-vs-run wall
// time split is reported on stderr (stdout stays byte-identical across
// runs with identical knobs; only stderr carries timing).
//
// Scale and seed come from the same environment knobs the bench
// harnesses use (see ScaleFromEnv): OSCAR_BENCH_SCALE=small|paper,
// OSCAR_BENCH_SIZE, OSCAR_BENCH_QUERIES (lookups), OSCAR_BENCH_SEED.
// Output follows the harness conventions — `#`-prefixed banner, aligned
// tables.
//
// Exit codes: 0 on success, 1 on a failed cross-check, 2 on an
// infrastructure error (unknown scenario, experiment Status error).

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/audit.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiments.h"
#include "sim/scenario.h"
#include "trace/columnar_trace.h"
#include "trace/trace.h"

namespace oscar {
namespace {

void PrintBanner(const ExperimentScale& scale) {
  std::cout << "###############################################\n"
            << "# oscar_sim\n"
            << "# Discrete-event message-level scenario runner\n"
            << "# scale: target_size=" << scale.target_size
            << " queries=" << scale.queries << " seed=" << scale.seed
            << " (OSCAR_BENCH_SCALE=small|paper)\n"
            << "###############################################\n";
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void PrintUsage(std::ostream& out) {
  out << "usage: oscar_sim [--list] [--cross-check] "
         "[--scenarios a,b,c] [--trace-file out.otrace|out.csv] "
         "[--trace-format csv|otrace] [--queue-cadence-ms N] "
         "[--maintenance-cadence-ms N] [--fault-plan SPEC] "
         "[scenario ...]\nscenarios:";
  for (const std::string& name : ScenarioCatalog()) {
    out << " " << name;
  }
  out << "\n";
}

/// True when `path` ends in the binary columnar extension.
bool HasOtraceExtension(const std::string& path) {
  const std::string ext = ".otrace";
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

/// Flag-parse rejection: one diagnostic plus the usage line, exit 2
/// (the CLI's infrastructure-error code, distinct from a failed
/// cross-check's exit 1).
int RejectUsage(const std::string& message) {
  std::cerr << "oscar_sim: " << message << "\n";
  PrintUsage(std::cerr);
  return 2;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int RunCli(const std::vector<std::string>& args) {
  // Runtime invariant audits (common/audit.h): growth checkpoints,
  // scenario freezes, and delta restores all self-check under
  // OSCAR_AUDIT=1. Stderr only — stdout stays byte-deterministic.
  if (AuditEnabled()) {
    std::cerr << "oscar_sim: OSCAR_AUDIT=1 — runtime invariant audits on\n";
  }
  bool list = false;
  bool cross_check = false;
  std::string trace_path;
  std::string trace_format;  // "" = decide by extension.
  double queue_cadence_ms = 10.0;
  double maintenance_cadence_ms = -1.0;  // < 0: scenario decides.
  FaultPlan extra_faults;
  std::vector<std::string> names;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--cross-check") {
      cross_check = true;
    } else if (arg == "--scenarios" || arg.rfind("--scenarios=", 0) == 0) {
      // Repeats accumulate (like listing the names bare); an empty
      // value — separate or trailing `=` — is always a rejection.
      std::string raw_list;
      if (arg == "--scenarios") {
        if (i + 1 >= args.size()) {
          return RejectUsage("--scenarios requires a comma-separated list");
        }
        raw_list = args[++i];
      } else {
        raw_list = arg.substr(sizeof("--scenarios=") - 1);
      }
      std::vector<std::string> parsed = SplitCommaList(raw_list);
      if (parsed.empty()) {
        return RejectUsage("--scenarios got an empty list");
      }
      for (std::string& name : parsed) names.push_back(std::move(name));
    } else if (arg == "--trace-file" || arg.rfind("--trace-file=", 0) == 0) {
      if (!trace_path.empty()) {
        return RejectUsage("duplicate --trace-file (one trace per run)");
      }
      if (arg == "--trace-file") {
        if (i + 1 >= args.size()) {
          return RejectUsage("--trace-file requires a path");
        }
        trace_path = args[++i];
      } else {
        trace_path = arg.substr(sizeof("--trace-file=") - 1);
      }
      if (trace_path.empty()) {
        return RejectUsage("--trace-file requires a path");
      }
    } else if (arg == "--trace-format" ||
               arg.rfind("--trace-format=", 0) == 0) {
      if (arg == "--trace-format") {
        if (i + 1 >= args.size()) {
          return RejectUsage("--trace-format requires csv or otrace");
        }
        trace_format = args[++i];
      } else {
        trace_format = arg.substr(sizeof("--trace-format=") - 1);
      }
      if (trace_format != "csv" && trace_format != "otrace") {
        return RejectUsage(StrCat("--trace-format wants csv or otrace, "
                                  "got '", trace_format, "'"));
      }
    } else if (arg == "--queue-cadence-ms" ||
               arg.rfind("--queue-cadence-ms=", 0) == 0) {
      std::string value;
      if (arg == "--queue-cadence-ms") {
        if (i + 1 >= args.size()) {
          return RejectUsage("--queue-cadence-ms requires a value");
        }
        value = args[++i];
      } else {
        value = arg.substr(sizeof("--queue-cadence-ms=") - 1);
      }
      char* end = nullptr;
      const double parsed =
          value.empty() ? -1.0 : std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || parsed < 0.0) {
        return RejectUsage(StrCat("--queue-cadence-ms wants a non-negative "
                                  "number, got '", value, "'"));
      }
      queue_cadence_ms = parsed;
    } else if (arg == "--maintenance-cadence-ms" ||
               arg.rfind("--maintenance-cadence-ms=", 0) == 0) {
      std::string value;
      if (arg == "--maintenance-cadence-ms") {
        if (i + 1 >= args.size()) {
          return RejectUsage("--maintenance-cadence-ms requires a value");
        }
        value = args[++i];
      } else {
        value = arg.substr(sizeof("--maintenance-cadence-ms=") - 1);
      }
      char* end = nullptr;
      const double parsed =
          value.empty() ? -1.0 : std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || parsed < 0.0) {
        return RejectUsage(StrCat("--maintenance-cadence-ms wants a "
                                  "non-negative number, got '", value, "'"));
      }
      maintenance_cadence_ms = parsed;
    } else if (arg == "--fault-plan" || arg.rfind("--fault-plan=", 0) == 0) {
      std::string value;
      if (arg == "--fault-plan") {
        if (i + 1 >= args.size()) {
          return RejectUsage("--fault-plan requires a spec");
        }
        value = args[++i];
      } else {
        value = arg.substr(sizeof("--fault-plan=") - 1);
      }
      auto parsed = ParseFaultPlan(value);
      if (!parsed.ok()) {
        return RejectUsage(parsed.status().message());
      }
      // Repeats accumulate, like the scenario list.
      for (FaultSpec& spec : parsed.value().faults) {
        extra_faults.faults.push_back(std::move(spec));
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      return RejectUsage(StrCat("unknown flag: '", arg, "'"));
    } else {
      names.push_back(arg);
    }
  }

  const ExperimentScale scale = ScaleFromEnv();
  ScenarioOptions base;
  base.network_size = scale.target_size;
  base.lookups = scale.queries;
  base.seed = scale.seed;
  base.maintenance_cadence_ms = maintenance_cadence_ms;
  base.faults = extra_faults;

  if (list) {
    for (const std::string& name : ScenarioCatalog()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  PrintBanner(scale);

  if (!cross_check && names.empty()) names = ScenarioCatalog();

  // Validate names before paying for growth — every name, not just the
  // first bad one's predecessors, so `valid,bogus` still exits 2.
  for (const std::string& name : names) {
    if (auto probe = MakeScenarioOptions(name, base); !probe.ok()) {
      return RejectUsage(probe.status().message());
    }
  }

  if (!trace_format.empty() && trace_path.empty()) {
    return RejectUsage("--trace-format needs --trace-file");
  }
  // Sink selection: the `.otrace` extension picks the binary columnar
  // writer, anything else the CSV adapter; --trace-format overrides.
  std::ofstream trace_file;
  std::unique_ptr<TraceSink> trace_sink;
  ColumnarTraceWriter* columnar = nullptr;
  if (!trace_path.empty()) {
    const bool binary = trace_format.empty()
                            ? HasOtraceExtension(trace_path)
                            : trace_format == "otrace";
    trace_file.open(trace_path,
                    binary ? std::ios::binary | std::ios::out
                           : std::ios::out);
    if (!trace_file) {
      std::cerr << "oscar_sim: cannot open trace file: " << trace_path
                << "\n";
      return 2;
    }
    if (binary) {
      auto writer = std::make_unique<ColumnarTraceWriter>(&trace_file);
      columnar = writer.get();
      trace_sink = std::move(writer);
    } else {
      trace_sink = std::make_unique<CsvTraceSink>(&trace_file);
    }
  }

  // One grow per (seed, size, overlay), shared by the cross-check and
  // every scenario run (each replays a restore of the frozen snapshot).
  const auto grow_start = std::chrono::steady_clock::now();
  auto grown = GrowScenarioTopology(base);
  if (!grown.ok()) {
    std::cerr << "oscar_sim: grow: " << grown.status().message() << "\n";
    return 2;
  }
  const double grow_s = SecondsSince(grow_start);

  if (cross_check) {
    auto checked = CrossCheckMessageVsSync(base, grown.value());
    if (!checked.ok()) {
      std::cout << "# cross-check: message-level vs synchronous ... "
                << "MISMATCH (" << checked.status().message() << ")\n";
      return 1;
    }
    std::cout << "# cross-check: message-level vs synchronous hop counts"
              << " over " << checked.value() << " queries ... OK\n";
    if (names.empty()) return 0;
  }

  TablePrinter table("scenario runs (message-level engine)");
  table.SetHeader({"scenario", "n", "lookups", "done", "ok%", "p50_ms",
                   "p95_ms", "hops", "wasted", "msgs", "timeout", "retry",
                   "peak_ifl", "load_p2m", "gini", "crash", "join"});
  // Recovery per injected fault: windowed success just before the
  // injection, the worst window after it, the final window, and the
  // virtual ms until the rate re-crossed threshold×ok_before (0 = never
  // dipped, `never` = never came back). Printed only when faults fired.
  TablePrinter recovery_table("recovery (per injected fault)");
  recovery_table.SetHeader({"scenario", "fault", "at_ms", "heal_ms",
                            "crashed", "ok_before%", "dip%", "ok_after%",
                            "ttr_ms", "hops_b", "hops_a"});
  bool any_recovery = false;
  // Repair traffic per scenario, aggregated over its maintenance
  // rounds. Printed only when rounds ran.
  TablePrinter maintenance_table("maintenance rounds (virtual-time repair)");
  maintenance_table.SetHeader({"scenario", "rounds", "pruned", "rebuilt",
                               "refreshed", "samp_steps", "exhausted"});
  bool any_maintenance = false;
  const auto run_start = std::chrono::steady_clock::now();
  // One scratch network recycled across scenario replays: each
  // RunScenarioOn delta-restores it (repairing only what the previous
  // scenario's churn touched) instead of rebuilding all N peer rows.
  Network scratch;
  for (const std::string& name : names) {
    ScenarioOptions options = base;
    if (trace_sink != nullptr) {
      trace_sink->SetScope(trace_sink->Intern(name));
      options.sim.sink = trace_sink.get();
      options.sim.queue_depth_cadence_ms = queue_cadence_ms;
    }
    auto run = RunScenarioOn(name, options, grown.value(), &scratch);
    if (!run.ok()) {
      std::cerr << "oscar_sim: " << name << ": " << run.status().message()
                << "\n";
      return 2;
    }
    const ScenarioResult& result = run.value();
    const MessageSimReport& report = result.report;
    table.AddRow({
        name,
        StrCat(result.options.network_size),
        StrCat(report.submitted),
        StrCat(report.completed),
        FormatDouble(report.success_rate * 100.0, 1),
        FormatDouble(report.latency.p50_ms, 1),
        FormatDouble(report.latency.p95_ms, 1),
        FormatDouble(report.mean_hops, 2),
        FormatDouble(report.mean_wasted, 2),
        StrCat(report.messages_sent),
        StrCat(report.timeouts),
        StrCat(report.retries),
        StrCat(report.peak_in_flight),
        FormatDouble(report.peer_load.peak_to_mean, 1),
        FormatDouble(report.peer_load.gini, 3),
        StrCat(result.crashed),
        StrCat(result.joined),
    });
    for (const FaultRecovery& rec : result.recovery.faults) {
      any_recovery = true;
      recovery_table.AddRow({
          name,
          rec.label,
          FormatDouble(rec.at_ms, 0),
          rec.heal_ms < 0.0 ? "-" : FormatDouble(rec.heal_ms, 0),
          StrCat(rec.crashed),
          FormatDouble(rec.ok_before * 100.0, 1),
          FormatDouble(rec.dip * 100.0, 1),
          FormatDouble(rec.ok_after * 100.0, 1),
          rec.ttr_ms < 0.0 ? "never" : FormatDouble(rec.ttr_ms, 1),
          FormatDouble(rec.hops_before, 2),
          FormatDouble(rec.hops_after, 2),
      });
    }
    if (!result.maintenance.empty()) {
      any_maintenance = true;
      size_t pruned = 0;
      size_t rebuilt = 0;
      size_t refreshed = 0;
      size_t exhausted = 0;
      for (const MaintenanceRoundRecord& round : result.maintenance) {
        pruned += round.report.pruned_links;
        rebuilt += round.report.rebuilt_peers;
        refreshed += round.report.refreshed_peers;
        if (round.report.budget_exhausted) ++exhausted;
      }
      maintenance_table.AddRow({
          name,
          StrCat(result.maintenance.size()),
          StrCat(pruned),
          StrCat(rebuilt),
          StrCat(refreshed),
          StrCat(result.maintenance_sampling_steps),
          StrCat(exhausted),
      });
    }
  }
  const double run_s = SecondsSince(run_start);
  if (trace_sink != nullptr) {
    // The columnar writer frames an end record; both sinks flush.
    const Status closed =
        columnar != nullptr ? columnar->Close() : trace_sink->Flush();
    if (!closed.ok()) {
      std::cerr << "oscar_sim: trace: " << closed.message() << "\n";
      return 2;
    }
  }
  table.Print(std::cout);
  if (any_recovery) recovery_table.Print(std::cout);
  if (any_maintenance) maintenance_table.Print(std::cout);
  std::cerr << "# timing: grow=" << FormatDouble(grow_s, 2) << "s (1 grow, "
            << names.size() << " scenario run"
            << (names.size() == 1 ? "" : "s") << ") run="
            << FormatDouble(run_s, 2) << "s\n";
  return 0;
}

}  // namespace
}  // namespace oscar

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return oscar::RunCli(args);
}

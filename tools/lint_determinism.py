#!/usr/bin/env python3
"""Determinism lint: a static pass over the C++ sources for hazard
classes that would break the repo's byte-identical-output contract.

The library promises bit-equal results across OSCAR_THREADS, join-batch
sizes, and repeated runs. The test suite catches *divergence that
already happens*; this lint catches the constructs that *let* it happen
before they reach a hot path:

  unordered-iteration   iterating an std::unordered_map/set (bucket
                        order is implementation- and size-dependent)
  pointer-ordering      pointer-keyed ordered containers, or pointers
                        cast to integers (allocation addresses vary run
                        to run)
  hash-order            std::hash<...> (implementation-defined; ties
                        any derived ordering to the standard library)
  wall-clock            rand()/srand, std::random_device, time(),
                        system_clock, clock() in library code (Rng and
                        virtual time are the only sanctioned sources;
                        steady_clock is allowed — it only feeds
                        stderr/JSON timing, never results)
  float-parallel-accum  compound accumulation (+=, -=, *=, /=) into a
                        float/double declared OUTSIDE a ParallelFor /
                        ParallelForWorkers body from INSIDE it —
                        FP addition does not commute, so cross-thread
                        accumulation order becomes the result

Suppressions are inline and must carry a reason:

    code;  // oscar-lint: allow(rule) reason text

A suppression comment on its own line covers the next line. Bare
allow() without a reason, or naming an unknown rule, is itself a
finding (bad-suppression) — the gate stays at zero either way.

Usage:
    tools/lint_determinism.py [--json report.json] [paths...]
        (default paths: src/ tools/ relative to the repo root)
    tools/lint_determinism.py --list-rules

Exit code 0 iff no unsuppressed findings; the ctest/CI gate is exactly
this exit code.
"""

import argparse
import json
import os
import re
import sys

RULES = {
    "unordered-iteration":
        "iteration over std::unordered_map/std::unordered_set",
    "pointer-ordering":
        "pointer-keyed ordered container or pointer->integer cast",
    "hash-order": "std::hash usage (implementation-defined order)",
    "wall-clock": "wall-clock or ambient randomness in library code",
    "float-parallel-accum":
        "float/double accumulation into captured state inside a "
        "ParallelFor body",
    "bad-suppression": "malformed oscar-lint suppression",
}

SUPPRESS_RE = re.compile(
    r"//\s*oscar-lint:\s*allow\(([^)]*)\)\s*(.*)$")

# Declarations of unordered containers: capture the variable name.
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;={(]")
# Ordered associative containers with a pointer-typed first key.
POINTER_KEY_RE = re.compile(
    r"std::(?:map|set|multimap|multiset)\s*<\s*[\w:]+(?:\s*<[^<>]*>)?\s*\*")
POINTER_CAST_RE = re.compile(
    r"reinterpret_cast\s*<\s*u?intptr_t\s*>")
HASH_RE = re.compile(r"std::hash\s*<")
WALL_CLOCK_RES = [
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"(?<![\w:])s?rand\s*\(\s*\)"),
    re.compile(r"(?<![\w:])srand\s*\("),
    re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
    re.compile(r"\bsystem_clock\b"),
    re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"),
]
FLOAT_DECL_RE = re.compile(
    r"\b(?:double|float)\s+(\w+)\s*(?:=|;|,|\)|\{)")
PARALLEL_CALL_RE = re.compile(r"\bParallelFor(?:Workers)?\s*\(")


def strip_strings_and_comments(line, in_block_comment):
    """Blanks out string/char literals and comments, preserving column
    positions. Returns (code_text, still_in_block_comment)."""
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        if state == "code":
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                out.append(" " * (n - i))
                i = n
            elif c == "/" and i + 1 < n and line[i + 1] == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "block":
            if c == "*" and i + 1 < n and line[i + 1] == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out), state == "block"


class FileLint:
    def __init__(self, path, rel, is_library):
        self.path = path
        self.rel = rel
        self.is_library = is_library
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw_lines = f.read().splitlines()
        # Code with comments/strings blanked, per line (1-indexed at [i-1]).
        self.code_lines = []
        in_block = False
        for line in self.raw_lines:
            code, in_block = strip_strings_and_comments(line, in_block)
            self.code_lines.append(code)
        self.findings = []
        self.suppressed = []
        self.suppressions = self._collect_suppressions()

    def _collect_suppressions(self):
        """Map line number -> (set(rules), reason). A suppression on a
        comment-only line covers the NEXT line instead."""
        by_line = {}
        for i, raw in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(raw)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            reason = m.group(2).strip()
            target = i
            if raw.strip().startswith("//"):
                target = i + 1  # Comment-only line: covers the next line.
            unknown = sorted(r for r in rules if r not in RULES)
            if not rules or not reason or unknown:
                detail = ("no rule named" if not rules else
                          "unknown rule(s): " + ", ".join(unknown)
                          if unknown else "missing reason string")
                self.findings.append({
                    "file": self.rel, "line": i, "rule": "bad-suppression",
                    "snippet": raw.strip()[:120],
                    "detail": detail,
                })
                continue
            by_line[target] = (rules, reason)
        return by_line

    def report(self, line_no, rule, snippet):
        entry = {
            "file": self.rel, "line": line_no, "rule": rule,
            "snippet": snippet.strip()[:120],
        }
        suppression = self.suppressions.get(line_no)
        if suppression and rule in suppression[0]:
            entry["reason"] = suppression[1]
            self.suppressed.append(entry)
        else:
            self.findings.append(entry)

    def lint(self):
        self._lint_unordered_iteration()
        self._lint_simple_patterns()
        self._lint_float_parallel_accum()

    def _lint_unordered_iteration(self):
        unordered_vars = set()
        for code in self.code_lines:
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered_vars.add(m.group(1))
        if not unordered_vars:
            return
        names = "|".join(re.escape(v) for v in sorted(unordered_vars))
        # Range-for over the container, or explicit begin() iteration.
        # Membership calls (find/count/insert/erase) are the sanctioned
        # uses and stay silent — which is why only begin/cbegin is
        # matched, never end(): `m.find(k) != m.end()` is the canonical
        # membership idiom and iteration cannot start without a begin.
        range_for = re.compile(r"for\s*\([^;)]*:\s*(?:%s)\s*\)" % names)
        begin_iter = re.compile(r"\b(?:%s)\s*\.\s*c?begin\s*\(" % names)
        for i, code in enumerate(self.code_lines, start=1):
            if range_for.search(code) or begin_iter.search(code):
                self.report(i, "unordered-iteration", self.raw_lines[i - 1])

    def _lint_simple_patterns(self):
        for i, code in enumerate(self.code_lines, start=1):
            raw = self.raw_lines[i - 1]
            if POINTER_KEY_RE.search(code) or POINTER_CAST_RE.search(code):
                self.report(i, "pointer-ordering", raw)
            if HASH_RE.search(code):
                self.report(i, "hash-order", raw)
            if any(rx.search(code) for rx in WALL_CLOCK_RES):
                self.report(i, "wall-clock", raw)

    def _parallel_extents(self):
        """Yields (start_line, end_line) of each ParallelFor(...) call,
        1-indexed inclusive, by balancing parens from the call site."""
        for i, code in enumerate(self.code_lines, start=1):
            m = PARALLEL_CALL_RE.search(code)
            if not m:
                continue
            depth = 0
            line = i
            col = m.end() - 1  # The opening paren.
            while line <= len(self.code_lines):
                text = self.code_lines[line - 1]
                for j in range(col, len(text)):
                    if text[j] == "(":
                        depth += 1
                    elif text[j] == ")":
                        depth -= 1
                        if depth == 0:
                            yield (i, line)
                            line = None
                            break
                if line is None:
                    break
                line += 1
                col = 0

    def _lint_float_parallel_accum(self):
        extents = list(self._parallel_extents())
        if not extents:
            return
        # float/double declarations with their lines; a name declared
        # inside the extent is lambda-local (per-index, deterministic).
        decls = {}
        for i, code in enumerate(self.code_lines, start=1):
            for m in FLOAT_DECL_RE.finditer(code):
                decls.setdefault(m.group(1), []).append(i)
        if not decls:
            return
        accum = re.compile(
            r"\b(%s)\s*(?:\+=|-=|\*=|/=)" %
            "|".join(re.escape(n) for n in decls))
        for (start, end) in extents:
            for line in range(start, end + 1):
                for m in accum.finditer(self.code_lines[line - 1]):
                    name = m.group(1)
                    declared_inside = any(start <= d <= end
                                          for d in decls[name])
                    if not declared_inside:
                        self.report(line, "float-parallel-accum",
                                    self.raw_lines[line - 1])


def scan(paths, repo_root):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, _, names in os.walk(path):
            for name in sorted(names):
                if name.endswith((".cc", ".h", ".cpp", ".hpp")):
                    files.append(os.path.join(dirpath, name))
    files.sort()
    findings, suppressed = [], []
    for path in files:
        rel = os.path.relpath(path, repo_root)
        is_library = rel.startswith("src" + os.sep)
        lint = FileLint(path, rel, is_library)
        lint.lint()
        findings.extend(lint.findings)
        suppressed.extend(lint.suppressed)
    key = lambda e: (e["file"], e["line"], e["rule"])  # noqa: E731
    return sorted(findings, key=key), sorted(suppressed, key=key), len(files)


def main(argv):
    parser = argparse.ArgumentParser(
        description="Determinism lint over the oscar:: sources.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/ tools/)")
    parser.add_argument("--json", metavar="OUT",
                        help="write the machine-readable report here")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print("%-22s %s" % (rule, description))
        return 0

    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or [os.path.join(repo_root, "src"),
                           os.path.join(repo_root, "tools")]
    for path in paths:
        if not os.path.exists(path):
            print("lint_determinism: no such path: %s" % path,
                  file=sys.stderr)
            return 2

    findings, suppressed, files_scanned = scan(paths, repo_root)

    if args.json:
        report = {
            "schema": "oscar-lint-v1",
            "files_scanned": files_scanned,
            "rules": sorted(RULES),
            "findings": findings,
            "suppressed": suppressed,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    for entry in findings:
        detail = entry.get("detail")
        print("%s:%d: [%s] %s%s" % (
            entry["file"], entry["line"], entry["rule"], entry["snippet"],
            " (%s)" % detail if detail else ""))
    if suppressed:
        print("lint_determinism: %d suppressed finding(s) with reasons"
              % len(suppressed))
    if findings:
        print("lint_determinism: %d unsuppressed finding(s) in %d file(s)"
              % (len(findings), files_scanned))
        return 1
    print("lint_determinism: clean (%d files, %d suppressed)"
          % (files_scanned, len(suppressed)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

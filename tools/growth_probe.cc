// Growth micro-probe for the perf artifact: grows one fig1c-style
// Oscar network (Gnutella keys, "realistic" degrees) and reports the
// wall time of the checkpoint-rewiring phase — the post-PR4 growth
// bottleneck — as one JSON object on stdout.
//
//   OSCAR_BENCH_SIZE   target size (default 3000, the probe scale the
//                      perf trajectory tracks)
//   OSCAR_BENCH_SEED   growth seed (default 42)
//   OSCAR_THREADS      rewiring worker threads (default 1)
//
// scripts/run_benches.sh runs it at 1 and max threads and folds the
// rows into the BENCH artifact; scripts/compare_benches.py diffs them
// across PRs. Timing goes to the JSON only — the probe prints no
// topology-dependent numbers, so it stays out of the determinism
// contract's way.

#include <chrono>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/thread_pool.h"
#include "core/experiments.h"
#include "core/simulation.h"

namespace {

// Process peak RSS in KiB (0 where getrusage is unavailable). Linux
// reports ru_maxrss in KiB already; macOS reports bytes.
long PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;
#else
  return usage.ru_maxrss;
#endif
#else
  return 0;
#endif
}

}  // namespace

int main() {
  using namespace oscar;
  const ExperimentScale scale = ScaleFromEnv();
  const uint32_t threads = ThreadCountFromEnv();

  auto keys = MakeKeyDistribution("gnutella");
  auto degrees = MakePaperDegreeDistribution("realistic");
  if (!keys.ok() || !degrees.ok()) {
    std::fprintf(stderr, "growth_probe: distribution setup failed\n");
    return 2;
  }
  GrowthConfig config;
  config.target_size = scale.target_size;
  config.queries_per_checkpoint = 1;  // Rewiring is the probe target.
  config.seed = scale.seed;
  config.checkpoints = scale.checkpoints;
  config.key_distribution = std::move(keys).value();
  config.degree_distribution = std::move(degrees).value();
  config.overlay = OscarFactory()();
  config.rewire_threads = threads;

  Simulation sim(std::move(config));
  const auto start = std::chrono::steady_clock::now();
  auto run = sim.Run();
  const double total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (!run.ok()) {
    std::fprintf(stderr, "growth_probe: growth failed\n");
    return 2;
  }
  const GrowthResult& result = run.value();
  const double per_checkpoint =
      result.rewire_count > 0
          ? result.rewire_wall_ms / static_cast<double>(result.rewire_count)
          : 0.0;
  std::printf(
      "{\"size\": %zu, \"threads\": %u, \"checkpoints\": %zu, "
      "\"rewire_ms_total\": %.1f, \"rewire_ms_per_checkpoint\": %.1f, "
      "\"growth_ms_total\": %.1f, \"peak_rss_kb\": %ld}\n",
      sim.network().alive_count(), threads, result.rewire_count,
      result.rewire_wall_ms, per_checkpoint, total_ms, PeakRssKb());
  return 0;
}

// Growth micro-probe for the perf artifact: grows one fig1c-style
// Oscar network (Gnutella keys, "realistic" degrees) and reports the
// wall time of the checkpoint-rewiring phase — the post-PR4 growth
// bottleneck — as one JSON object on stdout.
//
//   OSCAR_BENCH_SCALE  tier (smoke|n3000|paper|huge); "huge" switches
//                      the overlay to oracle segment sampling (walks
//                      are wall-clock-infeasible at 10^6 peers)
//   OSCAR_BENCH_SIZE   target size (default 3000, the probe scale the
//                      perf trajectory tracks)
//   OSCAR_BENCH_SEED   growth seed (default 42)
//   OSCAR_THREADS      rewiring/planning worker threads (default 1)
//   OSCAR_JOIN_BATCH   joins planned per wave over a shared epoch
//                      snapshot (default 0 = the sequential per-join
//                      path; see GrowthConfig::join_batch)
//
// scripts/run_benches.sh runs it at 1 and max threads and folds the
// rows into the BENCH artifact; scripts/compare_benches.py diffs them
// across PRs. Timing goes to the JSON only — the probe prints no
// topology-dependent numbers, so it stays out of the determinism
// contract's way.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/audit.h"
#include "common/thread_pool.h"
#include "core/experiments.h"
#include "core/simulation.h"
#include "overlay/oscar/oscar_overlay.h"
#include "sampling/oracle_sampler.h"

// Build-flavor stamp (CMake compile definitions): every BENCH row
// carries which build produced it, so compare_benches.py can refuse to
// diff wall times across mismatched flavors — a sanitizer run must
// never pollute the perf trajectory.
#ifndef OSCAR_SANITIZE_FLAVOR
#define OSCAR_SANITIZE_FLAVOR "none"
#endif
#ifndef OSCAR_BUILD_TYPE
#define OSCAR_BUILD_TYPE "unknown"
#endif
#ifndef OSCAR_COMPILER_ID
#define OSCAR_COMPILER_ID "unknown"
#endif

namespace {

// Process peak RSS in KiB (0 where getrusage is unavailable). Linux
// reports ru_maxrss in KiB already; macOS reports bytes.
long PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;
#else
  return usage.ru_maxrss;
#endif
#else
  return 0;
#endif
}

uint32_t JoinBatchFromEnv() {
  const char* value = std::getenv("OSCAR_JOIN_BATCH");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  return (end == nullptr || *end != '\0') ? 0
                                           : static_cast<uint32_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oscar;
  // `growth_probe --flavor` prints only the build-flavor stamp — the
  // hook scripts/run_benches.sh uses to stamp the artifact's top level
  // without growing a network first.
  if (argc > 1 && std::strcmp(argv[1], "--flavor") == 0) {
    std::printf(
        "{\"sanitizer\": \"%s\", \"build_type\": \"%s\", "
        "\"compiler\": \"%s\"}\n",
        OSCAR_SANITIZE_FLAVOR, OSCAR_BUILD_TYPE, OSCAR_COMPILER_ID);
    return 0;
  }
  if (AuditEnabled()) {
    std::fprintf(stderr,
                 "growth_probe: OSCAR_AUDIT=1 — runtime invariant audits on\n");
  }
  const ExperimentScale scale = ScaleFromEnv();
  const uint32_t threads = ThreadCountFromEnv();
  const uint32_t join_batch = JoinBatchFromEnv();

  auto keys = MakeKeyDistribution("gnutella");
  auto degrees = MakePaperDegreeDistribution("realistic");
  if (!keys.ok() || !degrees.ok()) {
    std::fprintf(stderr, "growth_probe: distribution setup failed\n");
    return 2;
  }
  GrowthConfig config;
  config.target_size = scale.target_size;
  config.queries_per_checkpoint = 1;  // Rewiring is the probe target.
  config.seed = scale.seed;
  config.checkpoints = scale.checkpoints;
  config.key_distribution = std::move(keys).value();
  config.degree_distribution = std::move(degrees).value();
  if (scale.huge) {
    // Oracle segment sampling at the huge tier (see README "Scale
    // tiers"): construction cost is the probe target, not sampling
    // bandwidth, and walks would take hours at 10^6 peers.
    OscarOptions options;
    options.sampler = std::make_shared<OracleSegmentSampler>();
    config.overlay = std::make_shared<OscarOverlay>(options);
  } else {
    config.overlay = OscarFactory()();
  }
  config.rewire_threads = threads;
  config.join_batch = join_batch;

  Simulation sim(std::move(config));
  const auto start = std::chrono::steady_clock::now();
  auto run = sim.Run();
  const double total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (!run.ok()) {
    std::fprintf(stderr, "growth_probe: growth failed\n");
    return 2;
  }
  const GrowthResult& result = run.value();
  const double per_checkpoint =
      result.rewire_count > 0
          ? result.rewire_wall_ms / static_cast<double>(result.rewire_count)
          : 0.0;
  std::printf(
      "{\"size\": %zu, \"threads\": %u, \"nproc\": %u, "
      "\"join_batch\": %u, \"sampler\": \"%s\", "
      "\"sanitizer\": \"%s\", \"build_type\": \"%s\", \"compiler\": \"%s\", "
      "\"checkpoints\": %zu, "
      "\"rewire_ms_total\": %.1f, \"rewire_ms_per_checkpoint\": %.1f, "
      "\"growth_ms_total\": %.1f, \"peak_rss_kb\": %ld}\n",
      sim.network().alive_count(), threads,
      std::thread::hardware_concurrency(), join_batch,
      scale.huge ? "oracle" : "walk", OSCAR_SANITIZE_FLAVOR, OSCAR_BUILD_TYPE,
      OSCAR_COMPILER_ID, result.rewire_count,
      result.rewire_wall_ms, per_checkpoint, total_ms, PeakRssKb());
  return 0;
}

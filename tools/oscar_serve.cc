// Open-loop lookup firehose over a frozen snapshot: grow once, freeze,
// route the lookup stream across the worker pool, then sweep offered
// rates x admission policies through the deterministic virtual-time
// serving model (see src/serve/load_generator.h for the two-clock
// design).
//
//   oscar_serve                          default sweep, summary tables
//   oscar_serve --rates=4000,0           offered lookups/s (0 = rate
//                                        limiting off: one burst at t=0)
//   oscar_serve --policies=none,timeout  admission policies to compare
//   oscar_serve --hot-keys=16            Zipf-hot query keys
//   oscar_serve --bench-json             one JSON object for the BENCH
//                                        artifact instead of tables
//   oscar_serve --trace-file=F           per-cell admission/queue-depth
//                                        timelines from the virtual-time
//                                        sweep; `.otrace` = binary
//                                        columnar, else CSV
//                                        (--trace-format=csv|otrace
//                                        overrides, --queue-cadence-ms=N
//                                        sets the sample cadence)
//   oscar_serve --list-policies          print the admission catalog
//
// Topology scale and seed come from the usual env knobs
// (OSCAR_BENCH_SCALE/SIZE/SEED); the route-phase worker count from
// OSCAR_THREADS. stdout is byte-identical across runs AND across
// OSCAR_THREADS for identical knobs — wall-clock throughput goes to
// stderr (or into --bench-json, which opts out of the byte contract).
//
// Exit codes: 0 on success, 2 on flag-parse or infrastructure errors.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/audit.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/experiments.h"
#include "serve/admission.h"
#include "serve/load_generator.h"
#include "sim/scenario.h"
#include "trace/columnar_trace.h"
#include "trace/trace.h"

namespace oscar {
namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: oscar_serve [--lookups=N] [--rates=r1,r2,...]\n"
         "                   [--policies=p1,p2,...] [--concurrency=C]\n"
         "                   [--burst=B] [--hop-ms=MS] [--hot-keys=K]\n"
         "                   [--zipf=S] [--queue-cap=Q] [--timeout-ms=MS]\n"
         "                   [--peer-cap=K] [--bench-json]\n"
         "                   [--trace-file=F] [--trace-format=csv|otrace]\n"
         "                   [--queue-cadence-ms=MS] [--list-policies]\n"
         "policies:";
  for (const std::string& name : AdmissionCatalog()) out << " " << name;
  out << "\nrates are offered lookups/s; 0 disables rate limiting "
         "(burst at t=0)\n";
}

/// Flag-parse rejection: one diagnostic plus the usage text, exit 2.
int RejectUsage(const std::string& message) {
  std::cerr << "oscar_serve: " << message << "\n";
  PrintUsage(std::cerr);
  return 2;
}

/// `--flag=value` splitter: true when `arg` starts with `prefix=` and
/// a non-empty value follows. A bare `--flag` or trailing `=` is the
/// caller's rejection path.
bool FlagValue(const std::string& arg, const std::string& flag,
               std::string* value) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void PrintBanner(const ScenarioOptions& base, const ServeOptions& serve) {
  std::cout << "###############################################\n"
            << "# oscar_serve\n"
            << "# Open-loop lookup firehose over a frozen snapshot\n"
            << "# n=" << base.network_size << " seed=" << base.seed
            << " lookups=" << serve.lookups
            << " concurrency=" << serve.concurrency
            << " hop_ms=" << FormatDouble(serve.hop_ms, 2)
            << " burst=" << FormatDouble(serve.burst, 0) << "\n"
            << "# admission: queue-cap=" << serve.admission.queue_capacity
            << " timeout-ms=" << FormatDouble(serve.admission.timeout_ms, 1)
            << " peer-cap=" << serve.admission.per_peer_cap << "\n"
            << "# keys: "
            << (serve.hot_keys == 0
                    ? std::string("uniform")
                    : StrCat("zipf-hot(", serve.hot_keys, ", s=",
                             FormatDouble(serve.zipf_exponent, 2), ")"))
            << "\n"
            << "###############################################\n";
}

void PrintTables(const ServeReport& report) {
  TablePrinter route("route phase (frozen snapshot, CSR greedy)");
  route.SetHeader({"routed", "ok%", "msgs", "svc_p50", "svc_p99",
                   "svc_p99.9", "svc_max"});
  route.AddRow({
      StrCat(report.routed),
      FormatDouble(report.route_success_rate * 100.0, 1),
      FormatDouble(report.mean_messages, 2),
      FormatDouble(report.service.p50_ms, 2),
      FormatDouble(report.service.p99_ms, 2),
      FormatDouble(report.service.p999_ms, 2),
      FormatDouble(report.service.max_ms, 2),
  });
  route.Print(std::cout);

  TablePrinter table("serving sweep (virtual time; rate 0 = limiter off)");
  table.SetHeader({"offered/s", "policy", "submitted", "drop", "shed",
                   "done", "ok%", "achieved/s", "q_peak", "p50_ms",
                   "p90_ms", "p99_ms", "p99.9_ms", "max_ms"});
  for (const ServeCellReport& cell : report.cells) {
    table.AddRow({
        cell.offered_per_s <= 0.0 ? "off"
                                  : FormatDouble(cell.offered_per_s, 0),
        cell.policy,
        StrCat(cell.submitted),
        StrCat(cell.dropped),
        StrCat(cell.shed),
        StrCat(cell.completed),
        FormatDouble(cell.completed == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(cell.succeeded) /
                               static_cast<double>(cell.completed),
                     1),
        FormatDouble(cell.achieved_per_s, 0),
        FormatDouble(cell.queue_peak, 0),
        FormatDouble(cell.latency.p50_ms, 2),
        FormatDouble(cell.latency.p90_ms, 2),
        FormatDouble(cell.latency.p99_ms, 2),
        FormatDouble(cell.latency.p999_ms, 2),
        FormatDouble(cell.latency.max_ms, 2),
    });
  }
  table.Print(std::cout);
  std::cout << "# total submitted across sweep: " << report.total_submitted
            << " lookups (" << report.routed << " routed once, replayed "
            << report.cells.size() << "x)\n";
}

void PrintBenchJson(const ScenarioOptions& base, const ServeOptions& serve,
                    const ServeReport& report, double grow_s) {
  std::printf(
      "{\"size\": %zu, \"threads\": %u, \"lookups\": %zu, "
      "\"grow_s\": %.2f, \"route_wall_s\": %.3f, "
      "\"route_lookups_per_s\": %.0f, \"mean_messages\": %.2f, "
      "\"service_p50_ms\": %.2f, \"service_p99_ms\": %.2f, "
      "\"cells\": [",
      base.network_size, serve.threads, serve.lookups, grow_s,
      report.route_wall_s, report.route_lookups_per_s,
      report.mean_messages, report.service.p50_ms, report.service.p99_ms);
  for (size_t i = 0; i < report.cells.size(); ++i) {
    const ServeCellReport& cell = report.cells[i];
    std::printf(
        "%s{\"offered_per_s\": %.0f, \"policy\": \"%s\", "
        "\"achieved_per_s\": %.0f, \"dropped\": %zu, \"shed\": %zu, "
        "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"p999_ms\": %.2f}",
        i == 0 ? "" : ", ", cell.offered_per_s, cell.policy.c_str(),
        cell.achieved_per_s, cell.dropped, cell.shed, cell.latency.p50_ms,
        cell.latency.p99_ms, cell.latency.p999_ms);
  }
  std::printf("]}\n");
}

int RunCli(const std::vector<std::string>& args) {
  // Runtime invariant audits (common/audit.h): the growth/freeze path
  // under this CLI self-checks when OSCAR_AUDIT=1. Stderr only.
  if (AuditEnabled()) {
    std::cerr << "oscar_serve: OSCAR_AUDIT=1 — runtime invariant audits on\n";
  }
  ServeOptions serve;
  bool bench_json = false;
  bool list_policies = false;
  std::string trace_path;
  std::string trace_format;  // "" = decide by extension.

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    uint64_t number = 0;
    double real = 0.0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg == "--list-policies") {
      list_policies = true;
    } else if (arg == "--bench-json") {
      bench_json = true;
    } else if (FlagValue(arg, "--lookups", &value)) {
      if (!ParseUint(value, &number) || number == 0) {
        return RejectUsage(StrCat("--lookups wants a positive integer, "
                                  "got '", value, "'"));
      }
      serve.lookups = static_cast<size_t>(number);
    } else if (FlagValue(arg, "--concurrency", &value)) {
      if (!ParseUint(value, &number) || number == 0) {
        return RejectUsage(StrCat("--concurrency wants a positive "
                                  "integer, got '", value, "'"));
      }
      serve.concurrency = static_cast<size_t>(number);
    } else if (FlagValue(arg, "--hot-keys", &value)) {
      if (!ParseUint(value, &number)) {
        return RejectUsage(StrCat("--hot-keys wants a non-negative "
                                  "integer, got '", value, "'"));
      }
      serve.hot_keys = static_cast<size_t>(number);
    } else if (FlagValue(arg, "--queue-cap", &value)) {
      if (!ParseUint(value, &number) || number == 0) {
        return RejectUsage(StrCat("--queue-cap wants a positive integer, "
                                  "got '", value, "'"));
      }
      serve.admission.queue_capacity = static_cast<size_t>(number);
    } else if (FlagValue(arg, "--peer-cap", &value)) {
      if (!ParseUint(value, &number) || number == 0) {
        return RejectUsage(StrCat("--peer-cap wants a positive integer, "
                                  "got '", value, "'"));
      }
      serve.admission.per_peer_cap = static_cast<size_t>(number);
    } else if (FlagValue(arg, "--burst", &value)) {
      if (!ParseDouble(value, &real) || real <= 0.0) {
        return RejectUsage(StrCat("--burst wants a positive number, "
                                  "got '", value, "'"));
      }
      serve.burst = real;
    } else if (FlagValue(arg, "--hop-ms", &value)) {
      if (!ParseDouble(value, &real) || real <= 0.0) {
        return RejectUsage(StrCat("--hop-ms wants a positive number, "
                                  "got '", value, "'"));
      }
      serve.hop_ms = real;
    } else if (FlagValue(arg, "--zipf", &value)) {
      if (!ParseDouble(value, &real) || real <= 0.0) {
        return RejectUsage(StrCat("--zipf wants a positive exponent, "
                                  "got '", value, "'"));
      }
      serve.zipf_exponent = real;
    } else if (FlagValue(arg, "--timeout-ms", &value)) {
      if (!ParseDouble(value, &real) || real <= 0.0) {
        return RejectUsage(StrCat("--timeout-ms wants a positive number, "
                                  "got '", value, "'"));
      }
      serve.admission.timeout_ms = real;
    } else if (FlagValue(arg, "--rates", &value)) {
      std::vector<std::string> parts = SplitCommaList(value);
      if (parts.empty()) {
        return RejectUsage("--rates got an empty list");
      }
      serve.offered_rates_per_s.clear();
      for (const std::string& part : parts) {
        if (!ParseDouble(part, &real) || real < 0.0) {
          return RejectUsage(StrCat("--rates wants non-negative numbers, "
                                    "got '", part, "'"));
        }
        serve.offered_rates_per_s.push_back(real);
      }
    } else if (FlagValue(arg, "--trace-file", &value)) {
      if (!trace_path.empty()) {
        return RejectUsage("duplicate --trace-file (one trace per run)");
      }
      if (value.empty()) {
        return RejectUsage("--trace-file requires a path");
      }
      trace_path = value;
    } else if (FlagValue(arg, "--trace-format", &value)) {
      if (value != "csv" && value != "otrace") {
        return RejectUsage(StrCat("--trace-format wants csv or otrace, "
                                  "got '", value, "'"));
      }
      trace_format = value;
    } else if (FlagValue(arg, "--queue-cadence-ms", &value)) {
      if (!ParseDouble(value, &real) || real < 0.0) {
        return RejectUsage(StrCat("--queue-cadence-ms wants a non-negative "
                                  "number, got '", value, "'"));
      }
      serve.trace_cadence_ms = real;
    } else if (FlagValue(arg, "--policies", &value)) {
      std::vector<std::string> parts = SplitCommaList(value);
      if (parts.empty()) {
        return RejectUsage("--policies got an empty list");
      }
      serve.policies = std::move(parts);
    } else {
      // Everything else — unknown flags, bare `--rates` (the = form is
      // mandatory for value flags), and positional words — is a
      // rejection: this CLI takes no positional arguments.
      return RejectUsage(StrCat("unknown argument: '", arg, "'"));
    }
  }
  if (list_policies) {
    for (const std::string& name : AdmissionCatalog()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  // Validate policy names before paying for growth.
  for (const std::string& name : serve.policies) {
    if (auto probe = MakeAdmissionPolicy(name, serve.admission);
        !probe.ok()) {
      return RejectUsage(probe.status().message());
    }
  }
  if (!trace_format.empty() && trace_path.empty()) {
    return RejectUsage("--trace-format needs --trace-file");
  }

  // Sink selection mirrors oscar_sim: `.otrace` extension = binary
  // columnar writer, anything else CSV; --trace-format overrides.
  std::ofstream trace_file;
  std::unique_ptr<TraceSink> trace_sink;
  ColumnarTraceWriter* columnar = nullptr;
  if (!trace_path.empty()) {
    const std::string ext = ".otrace";
    const bool by_ext =
        trace_path.size() >= ext.size() &&
        trace_path.compare(trace_path.size() - ext.size(), ext.size(),
                           ext) == 0;
    const bool binary =
        trace_format.empty() ? by_ext : trace_format == "otrace";
    trace_file.open(trace_path, binary ? std::ios::binary | std::ios::out
                                       : std::ios::out);
    if (!trace_file) {
      std::cerr << "oscar_serve: cannot open trace file: " << trace_path
                << "\n";
      return 2;
    }
    if (binary) {
      auto writer = std::make_unique<ColumnarTraceWriter>(&trace_file);
      columnar = writer.get();
      trace_sink = std::move(writer);
    } else {
      trace_sink = std::make_unique<CsvTraceSink>(&trace_file);
    }
    serve.trace = trace_sink.get();
  }

  const ExperimentScale scale = ScaleFromEnv();
  ScenarioOptions base;
  base.network_size = scale.target_size;
  base.seed = scale.seed;
  serve.seed = scale.seed;
  serve.threads = ThreadCountFromEnv();

  if (!bench_json) PrintBanner(base, serve);

  const auto grow_start = std::chrono::steady_clock::now();
  auto grown = GrowScenarioTopology(base);
  if (!grown.ok()) {
    std::cerr << "oscar_serve: grow: " << grown.status().message() << "\n";
    return 2;
  }
  const double grow_s = SecondsSince(grow_start);

  LoadGenerator generator(grown.value().snapshot, serve);
  const auto serve_start = std::chrono::steady_clock::now();
  auto run = generator.Run();
  if (!run.ok()) {
    std::cerr << "oscar_serve: " << run.status().message() << "\n";
    return 2;
  }
  const double serve_s = SecondsSince(serve_start);
  const ServeReport& report = run.value();

  if (trace_sink != nullptr) {
    if (columnar != nullptr) {
      columnar->Close();
    } else {
      trace_sink->Flush();
    }
    if (!trace_file) {
      std::cerr << "oscar_serve: error writing trace file: " << trace_path
                << "\n";
      return 2;
    }
  }

  if (bench_json) {
    PrintBenchJson(base, serve, report, grow_s);
  } else {
    PrintTables(report);
  }
  // Wall-clock numbers stay off stdout: the summary's byte-identity
  // across OSCAR_THREADS is part of the CLI's contract.
  std::cerr << "# timing: grow=" << FormatDouble(grow_s, 2)
            << "s route=" << FormatDouble(report.route_wall_s, 2) << "s ("
            << FormatDouble(report.route_lookups_per_s, 0)
            << " lookups/s at OSCAR_THREADS=" << serve.threads
            << ") sweep=" << FormatDouble(serve_s - report.route_wall_s, 2)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace oscar

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return oscar::RunCli(args);
}

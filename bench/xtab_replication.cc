// Extension table X9: data availability vs replication factor.
//
// The data-oriented payoff: items stored at owner + (r-1) successors
// survive crash waves with probability ~1 - f^r. This harness places
// items over a grown Oscar network, crashes 10% / 33%, and reports
// availability before and after re-replication — quantifying both the
// redundancy law and the repair exposure window.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "churn/churn.h"
#include "core/simulation.h"
#include "store/replicated_store.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 3000);
  scale.checkpoints.clear();
  bench::PrintHeader("X9 (extension)",
                     "item availability vs replication factor under "
                     "crash waves (items follow the key distribution)",
                     scale);

  auto keys = MakeKeyDistribution("gnutella");
  auto degrees = MakePaperDegreeDistribution("constant");
  if (!keys.ok() || !degrees.ok()) {
    std::cerr << "factory failure\n";
    return 2;
  }
  GrowthConfig config;
  config.target_size = scale.target_size;
  config.queries_per_checkpoint = 1;
  config.seed = scale.seed;
  config.key_distribution = keys.value();
  config.degree_distribution = degrees.value();
  config.overlay = OscarFactory()();
  Simulation sim(std::move(config));
  if (auto grown = sim.Run(); !grown.ok()) {
    std::cerr << "growth failed: " << grown.status() << "\n";
    return 2;
  }

  const size_t num_items = 5000;
  TablePrinter table(StrCat(num_items, " items, availability (%)"));
  table.SetHeader({"replicas", "crash", "available", "at-owner",
                   "after re-replication", "lost"});
  double r1_33 = 0, r3_33 = 0;
  for (const uint32_t replicas : {1u, 2u, 3u, 5u}) {
    for (const double crash : {0.10, 0.33}) {
      Network net = sim.network();  // Fresh copy per cell.
      ReplicatedStore store(replicas);
      Rng rng(scale.seed + 13);
      for (size_t i = 0; i < num_items; ++i) {
        const Status st = store.Put(net, keys.value()->Sample(&rng),
                                    StrCat("item", i));
        if (!st.ok()) {
          std::cerr << st << "\n";
          return 2;
        }
      }
      auto crashed = CrashFraction(&net, crash, &rng);
      if (!crashed.ok()) {
        std::cerr << crashed.status() << "\n";
        return 2;
      }
      const AvailabilityReport before = store.CheckAvailability(net);
      const size_t lost = store.ReReplicate(net);
      const AvailabilityReport after = store.CheckAvailability(net);
      table.AddRow({StrCat(replicas), FormatPercent(crash, 0),
                    FormatPercent(before.availability()),
                    FormatPercent(before.owner_hit_rate()),
                    FormatPercent(after.availability()),
                    StrCat(lost)});
      if (crash > 0.2) {
        if (replicas == 1) r1_33 = before.availability();
        if (replicas == 3) r3_33 = before.availability();
      }
    }
  }
  table.Print(std::cout);

  bench::ShapeCheck(
      "availability follows the redundancy law (r=3 >> r=1 at 33%)",
      r3_33 > r1_33 + 0.20);
  bench::ShapeCheck("r=3 survives 33% crashes nearly unscathed (>= 95%)",
                    r3_33 >= 0.95);
  bench::ShapeCheck(
      "r=1 at 33% loses roughly the crashed fraction (65%..70% left)",
      r1_33 > 0.60 && r1_33 < 0.75);
  return bench::ExitCode();
}

// Figure 1(a): the synthetic spiky node-degree distribution.
//
// Regenerates the pdf the paper plots (log-log: node-degree pdf over
// number of neighbors per peer) both analytically (the distribution's
// exact pmf) and empirically (a large sample), and verifies the shape
// properties: spikes at client defaults, heavy tail, mean exactly 27.

#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "degree/spiky_degree.h"

int main() {
  using namespace oscar;
  const ExperimentScale scale = ScaleFromEnv();
  bench::PrintHeader(
      "Fig 1(a)", "synthetic spiky node-degree pdf ('realistic' case)",
      scale);

  const auto dist = SpikyDegreeDistribution::Paper();
  const auto pmf = dist.Pmf();

  // Empirical check of the analytic pmf.
  Rng rng(scale.seed);
  std::vector<double> empirical(129, 0.0);
  const int trials = 500000;
  for (int i = 0; i < trials; ++i) {
    ++empirical[dist.Sample(&rng).max_in];
  }

  TablePrinter table("node degree pdf (only bins with mass >= 1e-4)");
  table.SetHeader({"degree", "pmf", "empirical", "note"});
  RunningStats mean_check;
  for (const auto& [degree, p] : pmf) {
    if (p < 1e-4) continue;
    std::string note;
    for (uint32_t spike : {10u, 20u, 27u, 30u, 32u, 50u, 64u, 100u}) {
      if (degree == spike) note = "spike";
    }
    table.AddRow({StrCat(degree), FormatDouble(p, 5),
                  FormatDouble(empirical[degree] / trials, 5), note});
  }
  table.Print(std::cout);

  double mean = 0.0, tail_mass = 0.0;
  double p27 = 0, p26 = 0, p28 = 0;
  for (const auto& [degree, p] : pmf) {
    mean += p * degree;
    if (degree > 64) tail_mass += p;
    if (degree == 26) p26 = p;
    if (degree == 27) p27 = p;
    if (degree == 28) p28 = p;
  }
  std::cout << "mean degree = " << FormatDouble(mean, 4)
            << " (paper: 27)\n";

  bench::ShapeCheck("mean degree == 27 (+-0.01)",
                    std::abs(mean - 27.0) < 0.01);
  bench::ShapeCheck("spike at 27 dominates neighbors 26/28",
                    p27 > 3 * p26 && p27 > 3 * p28);
  bench::ShapeCheck("heavy tail beyond degree 64", tail_mass > 1e-3);
  return bench::ExitCode();
}

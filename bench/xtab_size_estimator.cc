// Ablation X6: network-size estimation.
//
// Oscar only consumes log2(N_hat) (the partition count), so even a
// crude protocol-level size estimate should barely move the results.
// This harness compares the oracle estimator against the Chord-style
// gap estimator — which is locally biased under skewed keys — at
// several gap windows.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/simulation.h"
#include "overlay/oscar/oscar_overlay.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 4000);
  scale.checkpoints.clear();
  bench::PrintHeader("X6 (ablation)",
                     "Oscar with oracle vs gap-based size estimation "
                     "(Gnutella keys, constant degree 27)",
                     scale);

  auto keys = MakeKeyDistribution("gnutella");
  auto degrees = MakePaperDegreeDistribution("constant");
  if (!keys.ok() || !degrees.ok()) {
    std::cerr << "factory failure\n";
    return 2;
  }

  TablePrinter table("size estimator vs routing quality");
  table.SetHeader({"estimator", "avg cost", "p95", "success"});
  std::vector<double> costs;
  struct Variant {
    std::string label;
    SizeEstimatorPtr estimator;
  };
  const std::vector<Variant> variants = {
      {"oracle", std::make_shared<OracleSizeEstimator>()},
      {"gap(w=4)", std::make_shared<GapSizeEstimator>(4)},
      {"gap(w=8)", std::make_shared<GapSizeEstimator>(8)},
      {"gap(w=16)", std::make_shared<GapSizeEstimator>(16)},
  };
  for (const Variant& variant : variants) {
    GrowthConfig config;
    config.target_size = scale.target_size;
    config.queries_per_checkpoint = scale.queries;
    config.seed = scale.seed;
    config.key_distribution = keys.value();
    config.degree_distribution = degrees.value();
    OscarOptions options;
    options.size_estimator = variant.estimator;
    config.overlay = std::make_shared<OscarOverlay>(options);
    Simulation sim(std::move(config));
    auto run = sim.Run();
    if (!run.ok()) {
      std::cerr << "growth failed: " << run.status() << "\n";
      return 2;
    }
    const SearchEvaluation& eval = run.value().checkpoints.back().search;
    costs.push_back(eval.avg_cost);
    table.AddRow({variant.label, FormatDouble(eval.avg_cost, 2),
                  FormatDouble(eval.p95_cost, 1),
                  FormatPercent(eval.success_rate, 1)});
  }
  table.Print(std::cout);

  double worst_gap = 0.0;
  for (size_t i = 1; i < costs.size(); ++i) {
    worst_gap = std::max(worst_gap, costs[i]);
  }
  bench::ShapeCheck(
      "protocol-level size estimation costs < 40% routing overhead "
      "(Oscar only needs log2 of the estimate)",
      worst_gap < 1.4 * costs[0]);
  return bench::ExitCode();
}

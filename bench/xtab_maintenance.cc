// Extension table X8: maintenance rate under continuous churn.
//
// The paper rewires all peers periodically and calls churn handling
// orthogonal; a deployment amortizes repair. This harness runs a
// continuous leave/join process and sweeps the proactive maintenance
// fraction, reporting steady-state search cost, wasted traffic and the
// sampling bandwidth the maintenance consumes — the operational
// trade-off curve an operator would tune.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/simulation.h"
#include "overlay/maintenance.h"
#include "overlay/oscar/oscar_overlay.h"
#include "routing/backtracking_router.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 3000);
  bench::PrintHeader("X8 (extension)",
                     "maintenance-rate sweep under continuous churn "
                     "(2% leave+join per round, 12 rounds)",
                     scale);

  auto keys = MakeKeyDistribution("gnutella");
  auto degrees = MakePaperDegreeDistribution("constant");
  if (!keys.ok() || !degrees.ok()) {
    std::cerr << "factory failure\n";
    return 2;
  }

  TablePrinter table("steady-state quality vs proactive maintenance");
  table.SetHeader({"proactive", "avg cost", "avg wasted", "success",
                   "sampling msgs/round/peer"});
  std::vector<double> costs;
  for (const double fraction : {0.0, 0.02, 0.05, 0.10}) {
    // Grow once per variant (fresh overlay instance owns step counter).
    GrowthConfig config;
    config.target_size = scale.target_size;
    config.queries_per_checkpoint = 1;
    config.seed = scale.seed;
    config.key_distribution = keys.value();
    config.degree_distribution = degrees.value();
    auto overlay = std::make_shared<OscarOverlay>();
    config.overlay = overlay;
    Simulation sim(std::move(config));
    auto grown = sim.Run();
    if (!grown.ok()) {
      std::cerr << "growth failed: " << grown.status() << "\n";
      return 2;
    }
    Network net = sim.network();

    MaintenanceOptions options;
    options.proactive_fraction = fraction;
    Maintainer maintainer(overlay, options);
    Rng rng(scale.seed + 7);
    const size_t churn_per_round =
        std::max<size_t>(1, scale.target_size / 50);
    uint64_t sampling = 0;
    SearchEvaluation last_eval;
    for (int round = 0; round < 12; ++round) {
      RollingChurnOptions churn;
      churn.leaves_per_round = churn_per_round;
      churn.joins_per_round = churn_per_round;
      churn.rounds = 1;
      auto churn_result = RollingChurn(
          &net, churn, *keys.value(), *degrees.value(),
          [&](Network* n, PeerId id, Rng* r) {
            return overlay->BuildLinks(n, id, r);
          },
          &rng);
      if (!churn_result.ok()) {
        std::cerr << churn_result.status() << "\n";
        return 2;
      }
      auto report = maintainer.RunRound(&net, &rng);
      if (!report.ok()) {
        std::cerr << report.status() << "\n";
        return 2;
      }
      sampling += report.value().sampling_steps;
      SearchOptions search;
      search.num_queries = scale.queries / 2;
      search.query_distribution = keys.value().get();
      last_eval = EvaluateSearch(net, BacktrackingRouter(), search, &rng);
    }
    costs.push_back(last_eval.avg_cost);
    table.AddRow(
        {FormatPercent(fraction, 0), FormatDouble(last_eval.avg_cost, 2),
         FormatDouble(last_eval.avg_wasted, 2),
         FormatPercent(last_eval.success_rate, 1),
         FormatDouble(static_cast<double>(sampling) / 12.0 /
                          static_cast<double>(scale.target_size),
                      0)});
  }
  table.Print(std::cout);

  bench::ShapeCheck(
      "lazy repair alone keeps the network navigable at low cost",
      costs[0] < 20.0);
  bench::ShapeCheck(
      "proactive refresh does not degrade quality (within 20%)",
      costs.back() < costs[0] * 1.2);
  return bench::ExitCode();
}

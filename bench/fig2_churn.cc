// Figure 2(a)+(b): Oscar under churn.
//
// Networks grown under the Gnutella key distribution with (a) constant
// and (b) "realistic" in-degree distributions; at each checkpoint a
// snapshot is crashed at 0% / 10% / 33% and queried with the fault-
// aware backtracking router. Paper result: Oscar remains navigable and
// search cost stays fairly low (within the 0..50 band of the figure),
// ordered no-faults < 10% < 33%.

#include <iostream>
#include <map>

#include "bench_util.h"

int main() {
  using namespace oscar;
  const ExperimentScale scale = ScaleFromEnv();
  bench::PrintHeader("Fig 2(a)+(b)",
                     "Oscar search cost under churn (0/10/33% crashes), "
                     "constant & 'realistic' in-degree distributions",
                     scale);

  auto rows_result =
      RunSearchCostVsSize(scale, {"constant", "realistic"},
                          {0.0, 0.10, 0.33}, OscarFactory());
  if (!rows_result.ok()) {
    std::cerr << "experiment failed: " << rows_result.status() << "\n";
    return 2;
  }
  const std::vector<SearchCostRow>& rows = rows_result.value();

  for (const char* series : {"constant", "realistic"}) {
    std::vector<SearchCostRow> subset;
    for (const SearchCostRow& row : rows) {
      if (row.series == series) subset.push_back(row);
    }
    bench::PrintSearchCostTable(
        std::string("Fig 2: churn simulation, ") + series +
            " in-degree (avg search cost incl. wasted traffic)",
        subset);
  }

  // Shape checks at the final size, per series.
  bool ordering = true, navigable = true, bounded = true;
  for (const char* series : {"constant", "realistic"}) {
    std::map<double, double> final_cost;
    for (const SearchCostRow& row : rows) {
      navigable &= row.success_rate == 1.0;
      if (row.series == series && row.network_size == scale.target_size) {
        final_cost[row.churn_fraction] = row.avg_cost;
      }
    }
    ordering &= final_cost[0.0] < final_cost[0.10];
    ordering &= final_cost[0.10] < final_cost[0.33];
    bounded &= final_cost[0.33] < 50.0;
  }
  bench::ShapeCheck("network remains navigable (100% success)",
                    navigable);
  bench::ShapeCheck("cost ordering: none < 10% < 33% crashes", ordering);
  bench::ShapeCheck("33%-crash cost stays in the figure's 0..50 band",
                    bounded);
  return bench::ExitCode();
}

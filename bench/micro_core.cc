// Micro-benchmarks (google-benchmark): hot-path costs of the simulator
// substrate — ring queries, routing, sampling, partitioning, link
// construction. These guard against performance regressions that would
// make the paper-scale harnesses impractically slow.

#include <benchmark/benchmark.h>

#include "keyspace/gnutella_distribution.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "overlay/oscar/oscar_overlay.h"
#include "routing/backtracking_router.h"
#include "routing/greedy_router.h"
#include "sampling/oracle_sampler.h"
#include "sampling/random_walk_sampler.h"
#include "churn/churn.h"

namespace oscar {
namespace {

Network MakeLinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{27, 27});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    (void)overlay.BuildLinks(&net, id, &rng);
  }
  return net;
}

void BM_RingOwnerLookup(benchmark::State& state) {
  Network net = MakeLinkedNetwork(static_cast<size_t>(state.range(0)), 1);
  Rng rng(2);
  for (auto _ : state) {
    auto owner = net.OwnerOf(KeyId::FromUnit(rng.NextDouble()));
    benchmark::DoNotOptimize(owner);
  }
}
BENCHMARK(BM_RingOwnerLookup)->Arg(1000)->Arg(10000);

void BM_RingSegmentCount(benchmark::State& state) {
  Network net = MakeLinkedNetwork(static_cast<size_t>(state.range(0)), 3);
  Rng rng(4);
  for (auto _ : state) {
    const KeyId from = KeyId::FromUnit(rng.NextDouble());
    const KeyId to = KeyId::FromUnit(rng.NextDouble());
    benchmark::DoNotOptimize(net.ring().CountInSegment(from, to));
  }
}
BENCHMARK(BM_RingSegmentCount)->Arg(10000);

void BM_GreedyRoute(benchmark::State& state) {
  Network net = MakeLinkedNetwork(static_cast<size_t>(state.range(0)), 5);
  GreedyRouter router;
  Rng rng(6);
  const std::vector<PeerId> peers = net.AlivePeers();
  for (auto _ : state) {
    const PeerId source =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    const RouteResult r =
        router.Route(net, source, KeyId::FromUnit(rng.NextDouble()));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyRoute)->Arg(1000)->Arg(10000);

void BM_BacktrackingRouteUnderChurn(benchmark::State& state) {
  Network net = MakeLinkedNetwork(10000, 7);
  Rng churn_rng(8);
  (void)CrashFraction(&net, 0.33, &churn_rng);
  BacktrackingRouter router;
  Rng rng(9);
  const std::vector<PeerId> peers = net.AlivePeers();
  for (auto _ : state) {
    const PeerId source =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    const RouteResult r =
        router.Route(net, source, KeyId::FromUnit(rng.NextDouble()));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BacktrackingRouteUnderChurn);

void BM_OracleSegmentSample(benchmark::State& state) {
  Network net = MakeLinkedNetwork(10000, 10);
  OracleSegmentSampler sampler;
  Rng rng(11);
  for (auto _ : state) {
    auto s = sampler.SampleInSegment(net, 0, KeyId::FromUnit(0.1),
                                     KeyId::FromUnit(0.9), &rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_OracleSegmentSample);

void BM_RandomWalkSegmentSample(benchmark::State& state) {
  Network net = MakeLinkedNetwork(10000, 12);
  RandomWalkSegmentSampler sampler;
  Rng rng(13);
  for (auto _ : state) {
    auto s = sampler.SampleInSegment(net, 0, KeyId::FromUnit(0.1),
                                     KeyId::FromUnit(0.9), &rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_RandomWalkSegmentSample);

void BM_OscarPartitioning(benchmark::State& state) {
  Network net = MakeLinkedNetwork(10000, 14);
  OscarOverlay overlay;
  Rng rng(15);
  const std::vector<PeerId> peers = net.AlivePeers();
  for (auto _ : state) {
    const PeerId u =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    auto parts = overlay.partitioner().ComputePartitions(net, u, &rng);
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_OscarPartitioning);

void BM_OscarBuildLinks(benchmark::State& state) {
  Network net = MakeLinkedNetwork(10000, 16);
  OscarOverlay overlay;
  Rng rng(17);
  const std::vector<PeerId> peers = net.AlivePeers();
  for (auto _ : state) {
    const PeerId u =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    net.ClearLongLinks(u);
    benchmark::DoNotOptimize(overlay.BuildLinks(&net, u, &rng));
  }
}
BENCHMARK(BM_OscarBuildLinks);

void BM_NetworkJoin(benchmark::State& state) {
  Rng rng(18);
  for (auto _ : state) {
    state.PauseTiming();
    Network net = MakeLinkedNetwork(1000, rng.Next());
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{27, 27});
    }
    benchmark::DoNotOptimize(net.alive_count());
  }
}
BENCHMARK(BM_NetworkJoin)->Unit(benchmark::kMicrosecond);

void BM_GnutellaSample(benchmark::State& state) {
  auto dist = GnutellaKeyDistribution::Make();
  Rng rng(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.value().Sample(&rng));
  }
}
BENCHMARK(BM_GnutellaSample);

}  // namespace
}  // namespace oscar

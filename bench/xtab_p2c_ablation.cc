// Ablation X3: the power-of-two-choices in-degree balancing.
//
// The paper: "Since Oscar is truly randomized approach we could employ
// the 'power of two' technique which allowed us to better load-balance
// the in-degree distribution." This harness toggles P2C and reports the
// utilization, saturation and Gini of the in-degree load under the
// heterogeneous ("realistic") degree distribution.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "metrics/degree_metrics.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 4000);
  scale.checkpoints.clear();
  bench::PrintHeader("X3 (ablation)",
                     "power-of-two-choices on/off: in-degree balance "
                     "(Gnutella keys)",
                     scale);

  TablePrinter table("in-degree load balance with and without P2C");
  table.SetHeader({"variant", "degree-dist", "utilization", "saturated",
                   "gini", "p10-load", "p90-load"});
  double gini_with = 0, gini_without = 0;
  double util_with = 0, util_without = 0;
  for (const bool p2c : {true, false}) {
    const OverlayFactory factory =
        p2c ? OscarFactory() : OscarNoP2cFactory();
    for (const char* degrees : {"constant", "realistic"}) {
      auto rows = RunDegreeLoad(scale, {degrees}, factory,
                                p2c ? "oscar+p2c" : "oscar-no-p2c");
      if (!rows.ok()) {
        std::cerr << "experiment failed: " << rows.status() << "\n";
        return 2;
      }
      const DegreeLoadRow& row = rows.value().front();
      const auto& curve = row.report.sorted_relative_load;
      table.AddRow(
          {row.overlay_name, row.degree_name,
           FormatPercent(row.report.utilization),
           FormatPercent(row.report.saturated_fraction),
           FormatDouble(row.report.load_gini, 3),
           FormatDouble(curve[curve.size() / 10], 3),
           FormatDouble(curve[curve.size() * 9 / 10], 3)});
      if (std::string(degrees) == "realistic") {
        (p2c ? gini_with : gini_without) = row.report.load_gini;
        (p2c ? util_with : util_without) = row.report.utilization;
      }
    }
  }
  table.Print(std::cout);

  bench::ShapeCheck("P2C reduces load imbalance (lower Gini)",
                    gini_with < gini_without);
  bench::ShapeCheck("P2C does not sacrifice utilization (>= -2pp)",
                    util_with >= util_without - 0.02);
  return bench::ExitCode();
}

// Extension table X1: overlay comparison across key distributions.
//
// Quantifies the comparison the paper inherits from [8] ("Oscar ...
// significantly outperforms Mercury") plus two reference points: plain
// Chord (uniform-assumption baseline; collapses on skew) and oracle
// Kleinberg (full-knowledge upper bound Oscar approximates).

#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  // A single-size comparison; the growth phase dominates wall time, so
  // cap this extension table at 4000 peers even at paper scale.
  scale.target_size = std::min<size_t>(scale.target_size, 4000);
  scale.checkpoints.clear();
  bench::PrintHeader("X1 (extension)",
                     "overlay comparison: avg search cost / utilization "
                     "across key distributions (constant degree 27)",
                     scale);

  auto rows_result = RunOverlayComparison(
      scale,
      {{"oscar", OscarFactory()},
       {"mercury", MercuryFactory()},
       {"chord", ChordFactory()},
       {"kleinberg-oracle", KleinbergFactory()}},
      {"uniform", "gnutella", "clustered"});
  if (!rows_result.ok()) {
    std::cerr << "experiment failed: " << rows_result.status() << "\n";
    return 2;
  }
  const std::vector<ComparisonRow>& rows = rows_result.value();

  TablePrinter table("avg search cost (hops) | degree-volume utilization");
  table.SetHeader({"overlay", "uniform", "gnutella", "clustered"});
  std::map<std::string, std::map<std::string, const ComparisonRow*>> cell;
  std::vector<std::string> overlay_order;
  for (const ComparisonRow& row : rows) {
    if (cell.find(row.overlay_name) == cell.end()) {
      overlay_order.push_back(row.overlay_name);
    }
    cell[row.overlay_name][row.key_name] = &row;
  }
  for (const std::string& overlay : overlay_order) {
    std::vector<std::string> out = {overlay};
    for (const char* keys : {"uniform", "gnutella", "clustered"}) {
      const ComparisonRow* r = cell[overlay][keys];
      out.push_back(StrCat(FormatDouble(r->avg_cost, 2), " | ",
                           FormatPercent(r->utilization, 0)));
    }
    table.AddRow(std::move(out));
  }
  table.Print(std::cout);

  auto cost = [&](const std::string& overlay, const std::string& keys) {
    return cell[overlay][keys]->avg_cost;
  };
  bench::ShapeCheck("Oscar beats Mercury on gnutella keys",
                    cost("oscar", "gnutella") <
                        cost("mercury", "gnutella"));
  bench::ShapeCheck("Oscar beats Mercury on clustered keys",
                    cost("oscar", "clustered") <
                        cost("mercury", "clustered"));
  bench::ShapeCheck(
      "Chord collapses on clustered keys (>3x Oscar)",
      cost("chord", "clustered") > 3.0 * cost("oscar", "clustered"));
  bench::ShapeCheck(
      "Oscar within 2x of the oracle-Kleinberg bound on gnutella",
      cost("oscar", "gnutella") <
          2.0 * cost("kleinberg-oracle", "gnutella"));
  bench::ShapeCheck(
      "Oscar skew-insensitive (gnutella within 1.5x of uniform)",
      cost("oscar", "gnutella") < 1.5 * cost("oscar", "uniform"));
  return bench::ExitCode();
}

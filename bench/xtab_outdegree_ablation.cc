// Ablation X4: out-degree budget sweep.
//
// "The number of long-range links in Oscar is not restricted and can be
// assigned individually according to the needs of a particular peer, as
// long as there exists at least one such link per peer. It can be
// proven e.g. that in the worst case the search in Oscar network will
// be O(log^2 N)." This harness sweeps the uniform out-degree budget
// from 1 (the worst case) upward and reports average search cost; with
// 1 link/peer the cost band should be consistent with c*log^2 N, and it
// should fall roughly like 1/budget toward the log N regime.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/simulation.h"
#include "degree/constant_degree.h"
#include "overlay/oscar/oscar_overlay.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 4000);
  bench::PrintHeader("X4 (ablation)",
                     "Oscar out-degree budget sweep (Gnutella keys)",
                     scale);

  auto keys = MakeKeyDistribution("gnutella");
  if (!keys.ok()) {
    std::cerr << keys.status() << "\n";
    return 2;
  }
  const double log_n = std::log2(static_cast<double>(scale.target_size));

  TablePrinter table("avg search cost vs out-degree budget");
  table.SetHeader({"links/peer", "avg cost", "p95 cost", "cost/log2(N)",
                   "cost/log2^2(N)"});
  std::vector<double> costs;
  for (uint32_t budget : {1u, 2u, 4u, 8u, 16u, 27u}) {
    GrowthConfig config;
    config.target_size = scale.target_size;
    config.queries_per_checkpoint = scale.queries;
    config.seed = scale.seed;
    config.key_distribution = keys.value();
    auto degrees = ConstantDegreeDistribution::Make(
        std::max(budget, 2u) /* in-cap: allow some slack at budget 1 */,
        budget);
    if (!degrees.ok()) {
      std::cerr << degrees.status() << "\n";
      return 2;
    }
    config.degree_distribution =
        std::make_shared<ConstantDegreeDistribution>(
            std::move(degrees).value());
    config.overlay = std::make_shared<OscarOverlay>();
    Simulation sim(std::move(config));
    auto result = sim.Run();
    if (!result.ok()) {
      std::cerr << "growth failed: " << result.status() << "\n";
      return 2;
    }
    const SearchEvaluation& eval =
        result.value().checkpoints.back().search;
    costs.push_back(eval.avg_cost);
    table.AddRow({StrCat(budget), FormatDouble(eval.avg_cost, 2),
                  FormatDouble(eval.p95_cost, 1),
                  FormatDouble(eval.avg_cost / log_n, 2),
                  FormatDouble(eval.avg_cost / (log_n * log_n), 3)});
  }
  table.Print(std::cout);

  bench::ShapeCheck("cost decreases with the link budget",
                    costs.front() > costs.back());
  bench::ShapeCheck(
      "1 link/peer stays within the O(log^2 N) worst-case band (c<=2)",
      costs.front() <= 2.0 * log_n * log_n);
  bench::ShapeCheck(
      "paper budget (27) reaches the O(log N) regime (c<=1.5)",
      costs.back() <= 1.5 * log_n);
  return bench::ExitCode();
}

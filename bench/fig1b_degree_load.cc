// Figure 1(b) + in-text utilization claim.
//
// Fig 1(b): relative degree load ("actual in-degree" / "available
// in-degree") of peers sorted by load, for Oscar under the constant,
// "realistic" and "stepped" degree distributions — the three curves are
// very similar and exploit ~85% of the available degree volume at
// 10,000 peers. In-text claim: Mercury with the same constant setting
// exploits only ~61%.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "metrics/degree_metrics.h"

int main() {
  using namespace oscar;
  const ExperimentScale scale = ScaleFromEnv();
  bench::PrintHeader("Fig 1(b)",
                     "relative in-degree load curves + degree-volume "
                     "utilization (Oscar x3 vs Mercury)",
                     scale);

  auto oscar_rows = RunDegreeLoad(
      scale, {"constant", "realistic", "stepped"}, OscarFactory(), "oscar");
  if (!oscar_rows.ok()) {
    std::cerr << "oscar runs failed: " << oscar_rows.status() << "\n";
    return 2;
  }
  auto mercury_rows =
      RunDegreeLoad(scale, {"constant"}, MercuryFactory(), "mercury");
  if (!mercury_rows.ok()) {
    std::cerr << "mercury run failed: " << mercury_rows.status() << "\n";
    return 2;
  }

  std::vector<DegreeLoadRow> rows = oscar_rows.value();
  rows.insert(rows.end(), mercury_rows.value().begin(),
              mercury_rows.value().end());

  // The Fig 1(b) curves, downsampled to 11 sorted-peer positions.
  constexpr size_t kPoints = 11;
  TablePrinter curve_table(
      "relative degree load: actual/available in-degree, peers sorted "
      "ascending (11 curve points)");
  std::vector<std::string> header = {"overlay/degree-dist"};
  for (size_t i = 0; i < kPoints; ++i) {
    header.push_back(StrCat(i * 10, "%"));
  }
  curve_table.SetHeader(std::move(header));
  for (const DegreeLoadRow& row : rows) {
    const std::vector<double> points =
        DownsampleCurve(row.report.sorted_relative_load, kPoints);
    curve_table.AddNumericRow(
        StrCat(row.overlay_name, "/", row.degree_name), points, 3);
  }
  curve_table.Print(std::cout);

  TablePrinter util_table("degree volume utilization");
  util_table.SetHeader({"overlay", "degree-dist", "utilization",
                        "saturated-peers", "gini", "paper"});
  double oscar_min_util = 1.0, oscar_max_util = 0.0;
  double mercury_util = 0.0;
  for (const DegreeLoadRow& row : rows) {
    const bool is_oscar = row.overlay_name == "oscar";
    if (is_oscar) {
      oscar_min_util = std::min(oscar_min_util, row.report.utilization);
      oscar_max_util = std::max(oscar_max_util, row.report.utilization);
    } else {
      mercury_util = row.report.utilization;
    }
    util_table.AddRow({row.overlay_name, row.degree_name,
                       FormatPercent(row.report.utilization),
                       FormatPercent(row.report.saturated_fraction),
                       FormatDouble(row.report.load_gini, 3),
                       is_oscar ? "~85%" : "61%"});
  }
  util_table.Print(std::cout);

  bench::ShapeCheck("Oscar exploits most of the degree volume (>= 70%)",
                    oscar_min_util >= 0.70);
  bench::ShapeCheck(
      "Oscar's three curves similar (utilization spread < 12pp)",
      oscar_max_util - oscar_min_util < 0.12);
  bench::ShapeCheck("Mercury clearly lower than Oscar (>= 10pp gap)",
                    oscar_min_util - mercury_util >= 0.10);
  return bench::ExitCode();
}

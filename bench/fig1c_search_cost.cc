// Figure 1(c): Oscar's average search cost vs network size under three
// in-degree distributions (constant / "realistic" / "stepped"), peer
// keys from the Gnutella distribution, fault-free networks.
//
// Paper result: the three curves are nearly identical (Oscar adapts to
// any in-degree distribution without loss of search performance), flat
// in the 5-15 hop band across 2000..10000 peers.

#include <cmath>
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace oscar;
  const ExperimentScale scale = ScaleFromEnv();
  bench::PrintHeader("Fig 1(c)",
                     "Oscar avg search cost vs size, three in-degree "
                     "distributions (Gnutella keys)",
                     scale);

  auto rows_result = RunSearchCostVsSize(
      scale, {"constant", "realistic", "stepped"}, {0.0}, OscarFactory());
  if (!rows_result.ok()) {
    std::cerr << "experiment failed: " << rows_result.status() << "\n";
    return 2;
  }
  const std::vector<SearchCostRow>& rows = rows_result.value();
  bench::PrintSearchCostTable("average search cost (hops)", rows);

  // Shape checks.
  bool all_succeed = true;
  double final_min = 1e18, final_max = 0.0, overall_max = 0.0;
  const size_t final_size = scale.target_size;
  for (const SearchCostRow& row : rows) {
    all_succeed &= row.success_rate == 1.0;
    overall_max = std::max(overall_max, row.avg_cost);
    if (row.network_size == final_size) {
      final_min = std::min(final_min, row.avg_cost);
      final_max = std::max(final_max, row.avg_cost);
    }
  }
  bench::ShapeCheck("all queries succeed (fault-free)", all_succeed);
  bench::ShapeCheck(
      "three distributions nearly identical at final size (<35% spread)",
      final_max / final_min < 1.35);
  bench::ShapeCheck(
      "search cost stays in the paper's 0..15 hop band",
      overall_max < 15.0);
  return bench::ExitCode();
}

// Ablation X2: median sample size.
//
// The paper claims the sampling technique "yields very good results in
// practice even with very low sample sizes" and costs only O(log N)
// medians. This harness sweeps the per-median sample size and reports
// search cost + the total sampling message cost of construction.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 4000);
  scale.checkpoints.clear();
  bench::PrintHeader("X2 (ablation)",
                     "Oscar median sample-size sweep (Gnutella keys, "
                     "constant degree 27)",
                     scale);

  const std::vector<uint32_t> sample_sizes = {3, 5, 9, 17, 33};
  TablePrinter table("per-median sample size vs quality and cost");
  table.SetHeader({"samples/median", "avg search cost", "success",
                   "walk steps/peer"});
  std::vector<double> costs;
  for (uint32_t s : sample_sizes) {
    auto rows = RunOverlayComparison(
        scale, {{StrCat("oscar-s", s), OscarWithSampleSize(s)}},
        {"gnutella"});
    if (!rows.ok()) {
      std::cerr << "experiment failed: " << rows.status() << "\n";
      return 2;
    }
    const ComparisonRow& row = rows.value().front();
    costs.push_back(row.avg_cost);
    table.AddRow({StrCat(s), FormatDouble(row.avg_cost, 2),
                  FormatPercent(row.success_rate, 1),
                  FormatDouble(static_cast<double>(row.sampling_steps) /
                                   static_cast<double>(row.network_size),
                               0)});
  }
  table.Print(std::cout);

  bench::ShapeCheck(
      "tiny samples (3/median) already route within 1.6x of the largest",
      costs.front() < 1.6 * costs.back());
  bench::ShapeCheck("quality non-degrading as samples grow (monotone-ish)",
                    costs.back() <= costs.front() * 1.1);
  return bench::ExitCode();
}

#include "bench_util.h"

#include <iostream>
#include <map>
#include <set>

#include "common/string_util.h"
#include "common/table_printer.h"

namespace oscar::bench {

namespace {
bool g_all_checks_passed = true;
}  // namespace

void PrintHeader(const std::string& figure, const std::string& summary,
                 const ExperimentScale& scale) {
  std::cout << "###############################################\n"
            << "# " << figure << "\n"
            << "# " << summary << "\n"
            << "# scale: target_size=" << scale.target_size
            << " queries=" << scale.queries << " seed=" << scale.seed
            << " (OSCAR_BENCH_SCALE=small|paper)\n"
            << "###############################################\n";
}

void ShapeCheck(const std::string& claim, bool holds) {
  if (!holds) g_all_checks_passed = false;
  std::cout << "# shape-check: " << claim << " ... "
            << (holds ? "OK" : "VIOLATED") << "\n";
}

int ExitCode() { return g_all_checks_passed ? 0 : 1; }

void PrintSearchCostTable(const std::string& title,
                          const std::vector<SearchCostRow>& rows) {
  // Collect axes: x = network size, one column per (series, churn),
  // columns in first-seen order with their labels built in the same
  // pass so headers and data can never desynchronize.
  std::set<size_t> sizes;
  std::vector<std::pair<std::string, double>> column_keys;
  std::vector<std::string> columns;  // Parallel to column_keys.
  std::map<std::pair<std::string, double>, std::map<size_t, double>> data;
  for (const SearchCostRow& row : rows) {
    sizes.insert(row.network_size);
    const auto key = std::make_pair(row.series, row.churn_fraction);
    if (data.find(key) == data.end()) {
      std::string label = row.series;
      if (row.churn_fraction > 0.0) {
        label += StrCat("@", FormatDouble(row.churn_fraction * 100, 0),
                        "%crash");
      }
      column_keys.push_back(key);
      columns.push_back(std::move(label));
    }
    data[key][row.network_size] = row.avg_cost;
  }
  TablePrinter table(title);
  std::vector<std::string> header = {"network_size"};
  for (const std::string& label : columns) header.push_back(label);
  table.SetHeader(std::move(header));
  for (size_t size : sizes) {
    std::vector<std::string> out_row = {StrCat(size)};
    for (const auto& key : column_keys) {
      const auto& series = data[key];
      const auto it = series.find(size);
      out_row.push_back(it == series.end()
                            ? "-"
                            : FormatDouble(it->second, 2));
    }
    table.AddRow(std::move(out_row));
  }
  table.Print(std::cout);
}

}  // namespace oscar::bench

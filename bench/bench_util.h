// Shared plumbing for the figure-reproduction harnesses.
//
// Every harness follows the same output contract:
//
//   1. `PrintHeader` emits a `#`-prefixed banner naming the figure, a
//      one-line summary, and the resolved ExperimentScale (so a saved
//      log is self-describing and reproducible: size, queries, seed).
//   2. The harness prints its tables, then verifies each qualitative
//      claim of the paper programmatically via `ShapeCheck`.
//   3. Each check emits exactly one trailer line of the form
//          # shape-check: <claim> ... OK|VIOLATED
//      so a regression is visible in plain bench output and greppable
//      by CI (`grep "shape-check.*VIOLATED"`).
//   4. `main` returns `ExitCode()`: 0 iff every ShapeCheck in the
//      process passed, 1 otherwise. Harnesses reserve exit code 2 for
//      infrastructure failures (an experiment returning an error
//      Status), distinct from a clean run with violated claims.
//
// Environment knobs (one naming convention, `OSCAR_BENCH_*`, shared by
// every harness AND the `tools/oscar_sim` scenario runner — all of them
// resolve scale through `ScaleFromEnv`):
//
//   OSCAR_BENCH_SCALE    "small" (default; seconds per harness) or
//                        "paper" (the paper's 10k-peer runs).
//   OSCAR_BENCH_SIZE     overrides the target network size; checkpoints
//                        become size/4, size/2, size.
//   OSCAR_BENCH_QUERIES  overrides queries per evaluation point (for
//                        oscar_sim: lookups per scenario).
//   OSCAR_BENCH_SEED     overrides the deterministic seed (default 42).
//
// Unparsable values fall back to the defaults silently (by design —
// a CI environment with a stray variable should still produce a run).
// Two runs with identical knobs print byte-identical output.
//
// This header is self-contained on top of core/experiments.h — it pulls
// in the ExperimentScale/row types the signatures below need.

#ifndef OSCAR_BENCH_BENCH_UTIL_H_
#define OSCAR_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/experiments.h"

namespace oscar::bench {

/// Prints the standard experiment banner (figure id, scale, seed).
void PrintHeader(const std::string& figure, const std::string& summary,
                 const ExperimentScale& scale);

/// Prints one `# shape-check:` trailer line. Every harness verifies its
/// qualitative claims programmatically so a regression is visible in
/// plain bench output (and greppable by CI). A failed check latches the
/// process-wide state consumed by `ExitCode`.
void ShapeCheck(const std::string& claim, bool holds);

/// Exit code helper: 0 when all shape checks passed so far, 1 otherwise.
int ExitCode();

/// Arrange SearchCostRow series into a size-by-series table and print.
void PrintSearchCostTable(const std::string& title,
                          const std::vector<SearchCostRow>& rows);

}  // namespace oscar::bench

#endif  // OSCAR_BENCH_BENCH_UTIL_H_

// Shared plumbing for the figure-reproduction harnesses.

#ifndef OSCAR_BENCH_BENCH_UTIL_H_
#define OSCAR_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/experiments.h"

namespace oscar::bench {

/// Prints the standard experiment banner (figure id, scale, seed).
void PrintHeader(const std::string& figure, const std::string& summary,
                 const ExperimentScale& scale);

/// Prints one `# shape-check:` trailer line. Every harness verifies its
/// qualitative claims programmatically so a regression is visible in
/// plain bench output (and greppable by CI).
void ShapeCheck(const std::string& claim, bool holds);

/// Exit code helper: 0 when all shape checks passed so far, 1 otherwise.
int ExitCode();

/// Arrange SearchCostRow series into a size-by-series table and print.
void PrintSearchCostTable(const std::string& title,
                          const std::vector<SearchCostRow>& rows);

}  // namespace oscar::bench

#endif  // OSCAR_BENCH_BENCH_UTIL_H_

// Extension table X5: link geometry (harmonic-octave analysis).
//
// Kleinberg navigability requires link probability ~1/rank, i.e. a
// FLAT histogram of links over rank octaves [2^i, 2^{i+1}). This
// harness prints that histogram for each overlay on uniform vs skewed
// keys, making the paper's central argument directly visible: Oscar's
// sampled-median construction stays flat on any key distribution;
// Mercury's and Chord's geometry warps exactly where their key-space
// assumptions break.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/simulation.h"
#include "metrics/topology_metrics.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 4000);
  bench::PrintHeader("X5 (extension)",
                     "long-link rank-octave histograms per overlay "
                     "(flat == navigable small world)",
                     scale);

  auto degrees = MakePaperDegreeDistribution("constant");
  if (!degrees.ok()) {
    std::cerr << degrees.status() << "\n";
    return 2;
  }

  struct Cell {
    std::string overlay;
    std::string keys;
    LinkGeometryReport report;
  };
  std::vector<Cell> cells;
  const std::vector<std::pair<std::string, OverlayFactory>> overlays = {
      {"oscar", OscarFactory()},
      {"mercury", MercuryFactory()},
      {"chord", ChordFactory()},
      {"kleinberg-oracle", KleinbergFactory()},
  };
  for (const auto& [name, factory] : overlays) {
    for (const char* key_name : {"uniform", "gnutella"}) {
      auto keys = MakeKeyDistribution(key_name);
      if (!keys.ok()) {
        std::cerr << keys.status() << "\n";
        return 2;
      }
      GrowthConfig config;
      config.target_size = scale.target_size;
      config.queries_per_checkpoint = 1;  // Geometry only.
      config.seed = scale.seed;
      config.key_distribution = keys.value();
      config.degree_distribution = degrees.value();
      config.overlay = factory();
      Simulation sim(std::move(config));
      auto run = sim.Run();
      if (!run.ok()) {
        std::cerr << "growth failed: " << run.status() << "\n";
        return 2;
      }
      cells.push_back(
          Cell{name, key_name, ComputeLinkGeometry(sim.network())});
    }
  }

  TablePrinter table("share of long links per rank octave (%)");
  std::vector<std::string> header = {"overlay/keys"};
  const size_t octaves = cells.front().report.octave_counts.size();
  for (size_t i = 0; i < octaves; ++i) {
    header.push_back(StrCat("2^", i));
  }
  header.push_back("imbal");
  table.SetHeader(std::move(header));
  for (const Cell& cell : cells) {
    std::vector<std::string> row = {cell.overlay + "/" + cell.keys};
    for (uint64_t c : cell.report.octave_counts) {
      row.push_back(FormatDouble(
          100.0 * static_cast<double>(c) /
              static_cast<double>(cell.report.total_links),
          1));
    }
    row.push_back(FormatDouble(cell.report.octave_imbalance, 1));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  auto imbalance = [&](const std::string& overlay,
                       const std::string& keys) {
    for (const Cell& cell : cells) {
      if (cell.overlay == overlay && cell.keys == keys) {
        return cell.report.octave_imbalance;
      }
    }
    return -1.0;
  };
  bench::ShapeCheck("Oscar flat on gnutella keys (imbalance < 2.5)",
                    imbalance("oscar", "gnutella") < 2.5);
  bench::ShapeCheck(
      "Oscar as flat as the oracle construction (within 1.8x)",
      imbalance("oscar", "gnutella") <
          1.8 * imbalance("kleinberg-oracle", "gnutella"));
  bench::ShapeCheck(
      "Mercury warps on gnutella keys (worse than Oscar)",
      imbalance("mercury", "gnutella") > imbalance("oscar", "gnutella"));
  bench::ShapeCheck(
      "Chord warps on gnutella keys (worse than Oscar)",
      imbalance("chord", "gnutella") > imbalance("oscar", "gnutella"));
  return bench::ExitCode();
}

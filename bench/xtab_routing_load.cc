// Extension table X7: routing-load balance under skewed access.
//
// The paper's bandwidth story, measured end to end: skewed queries are
// routed over the grown overlay and every forwarded message is charged
// to the forwarding peer. Oscar's claim translates to (a) no hotspots
// (peak/mean bounded) and (b) traffic proportional to declared capacity
// under heterogeneous budgets (strong peers carry more — by choice).

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/simulation.h"
#include "metrics/routing_load_metrics.h"
#include "routing/greedy_router.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 4000);
  bench::PrintHeader("X7 (extension)",
                     "routing-load balance under skewed queries "
                     "(Gnutella keys)",
                     scale);

  auto keys = MakeKeyDistribution("gnutella");
  if (!keys.ok()) {
    std::cerr << keys.status() << "\n";
    return 2;
  }

  TablePrinter table("per-peer routing load over " +
                     StrCat(4 * scale.queries) + " skewed queries");
  table.SetHeader({"overlay", "degree-dist", "mean msgs", "peak/mean",
                   "budget-gini", "load~capacity corr"});
  double oscar_peak = 0, mercury_peak = 0, realistic_corr = 0;
  const std::vector<std::pair<std::string, OverlayFactory>> variants = {
      {"oscar", OscarFactory()},
      {"mercury", MercuryFactory()},
  };
  for (const auto& [name, factory] : variants) {
    for (const char* degrees : {"constant", "realistic"}) {
      auto degree_dist = MakePaperDegreeDistribution(degrees);
      if (!degree_dist.ok()) {
        std::cerr << degree_dist.status() << "\n";
        return 2;
      }
      GrowthConfig config;
      config.target_size = scale.target_size;
      config.queries_per_checkpoint = 1;  // Load measured separately.
      config.seed = scale.seed;
      config.key_distribution = keys.value();
      config.degree_distribution = degree_dist.value();
      config.overlay = factory();
      Simulation sim(std::move(config));
      auto run = sim.Run();
      if (!run.ok()) {
        std::cerr << "growth failed: " << run.status() << "\n";
        return 2;
      }
      RoutingLoadOptions options;
      options.num_queries = 4 * scale.queries;
      options.query_distribution = keys.value().get();
      Rng rng(scale.seed + 99);
      const RoutingLoadReport report = EvaluateRoutingLoad(
          sim.network(), GreedyRouter(), options, &rng);
      table.AddRow({name, degrees, FormatDouble(report.mean_load, 1),
                    FormatDouble(report.peak_to_mean, 1),
                    FormatDouble(report.budget_relative_gini, 3),
                    FormatDouble(report.load_capacity_correlation, 3)});
      if (name == "oscar" && std::string(degrees) == "constant") {
        oscar_peak = report.peak_to_mean;
      }
      if (name == "mercury" && std::string(degrees) == "constant") {
        mercury_peak = report.peak_to_mean;
      }
      if (name == "oscar" && std::string(degrees) == "realistic") {
        realistic_corr = report.load_capacity_correlation;
      }
    }
  }
  table.Print(std::cout);

  bench::ShapeCheck("Oscar avoids hotspots better than Mercury",
                    oscar_peak < mercury_peak);
  bench::ShapeCheck(
      "under heterogeneous budgets, Oscar's traffic is capacity-"
      "proportional (corr > 0.3)",
      realistic_corr > 0.3);
  return bench::ExitCode();
}

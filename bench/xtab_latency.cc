// Extension table X10: wall-clock latency.
//
// Hop counts priced in milliseconds: per-peer lognormal delays (median
// 25ms, heavy tail) and 500ms probe timeouts for dead links. Shows (a)
// Oscar's latency advantage over Mercury tracks its hop advantage, and
// (b) under churn the wasted-probe timeouts dominate the wall-clock
// penalty — motivating the maintenance loop of X8.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "churn/churn.h"
#include "core/simulation.h"
#include "routing/backtracking_router.h"
#include "routing/greedy_router.h"
#include "sim/latency_model.h"

int main() {
  using namespace oscar;
  ExperimentScale scale = ScaleFromEnv();
  scale.target_size = std::min<size_t>(scale.target_size, 3000);
  scale.checkpoints.clear();
  bench::PrintHeader("X10 (extension)",
                     "query latency (ms): lognormal peer delays, 500ms "
                     "probe timeouts",
                     scale);

  auto keys = MakeKeyDistribution("gnutella");
  auto degrees = MakePaperDegreeDistribution("constant");
  if (!keys.ok() || !degrees.ok()) {
    std::cerr << "factory failure\n";
    return 2;
  }

  TablePrinter table("query latency");
  table.SetHeader({"overlay", "churn", "mean ms", "p50 ms", "p95 ms"});
  double oscar_mean = 0, mercury_mean = 0;
  double oscar_p95_healthy = 0, oscar_p95_churn = 0;
  for (const auto& [name, factory] :
       std::vector<std::pair<std::string, OverlayFactory>>{
           {"oscar", OscarFactory()}, {"mercury", MercuryFactory()}}) {
    GrowthConfig config;
    config.target_size = scale.target_size;
    config.queries_per_checkpoint = 1;
    config.seed = scale.seed;
    config.key_distribution = keys.value();
    config.degree_distribution = degrees.value();
    config.overlay = factory();
    Simulation sim(std::move(config));
    if (auto grown = sim.Run(); !grown.ok()) {
      std::cerr << "growth failed: " << grown.status() << "\n";
      return 2;
    }
    for (const double churn : {0.0, 0.33}) {
      Network net = sim.network();
      Rng rng(scale.seed + 21);
      if (churn > 0.0) {
        auto crashed = CrashFraction(&net, churn, &rng);
        if (!crashed.ok()) {
          std::cerr << crashed.status() << "\n";
          return 2;
        }
      }
      LatencyModel model(net, LatencyOptions{}, &rng);
      const LatencyEvaluation eval =
          churn > 0.0
              ? EvaluateLatency(net, BacktrackingRouter(), model,
                                scale.queries, &rng)
              : EvaluateLatency(net, GreedyRouter(), model, scale.queries,
                                &rng);
      table.AddRow({name, FormatPercent(churn, 0),
                    FormatDouble(eval.mean_ms, 0),
                    FormatDouble(eval.p50_ms, 0),
                    FormatDouble(eval.p95_ms, 0)});
      if (name == "oscar" && churn == 0.0) {
        oscar_mean = eval.mean_ms;
        oscar_p95_healthy = eval.p95_ms;
      }
      if (name == "oscar" && churn > 0.0) oscar_p95_churn = eval.p95_ms;
      if (name == "mercury" && churn == 0.0) mercury_mean = eval.mean_ms;
    }
  }
  table.Print(std::cout);

  bench::ShapeCheck("Oscar faster than Mercury in wall-clock too",
                    oscar_mean < mercury_mean);
  bench::ShapeCheck(
      "churn tail dominated by probe timeouts (p95 inflated >= 1.5x)",
      oscar_p95_churn > 1.5 * oscar_p95_healthy);
  return bench::ExitCode();
}

#!/usr/bin/env python3
"""Diff two run_benches perf artifacts and flag wall-time regressions.

    scripts/compare_benches.py BASELINE.json CURRENT.json [--threshold 0.10]

Compares per-harness wall time (and micro_core benchmark times when
both artifacts carry them) between two `oscar-bench-v1` JSON files
written by scripts/run_benches.sh. A harness is flagged when its wall
time grew by more than the threshold (default +10%). Exit codes:

    0  no regressions over the threshold
    1  at least one regression flagged
    2  unusable input (missing file, wrong schema)

With --serve-gate, the exit code reflects ONLY the serve firehose's
route_lookups_per_s: exit 1 when it dropped by more than the threshold
(default 10%), 0 otherwise — wall-time rows are still printed but
never fatal. The route phase is pure in-memory CSR arithmetic over a
shared worker pool, far less runner-noisy than harness walls, so CI
runs the gate FATALLY while keeping the full diff as the usual
non-fatal report step. Locally it is a quick before/after probe:

    OSCAR_BENCH_OUT=BENCH_before.json scripts/run_benches.sh build
    ... make changes, rebuild ...
    OSCAR_BENCH_OUT=BENCH_after.json scripts/run_benches.sh build
    scripts/compare_benches.py build/BENCH_before.json build/BENCH_after.json
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"compare_benches: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "oscar-bench-v1":
        print(f"compare_benches: {path}: unexpected schema "
              f"{doc.get('schema')!r} (want 'oscar-bench-v1')",
              file=sys.stderr)
        sys.exit(2)
    return doc


def build_stamp(doc):
    """The artifact's build-flavor stamp: (sanitizer, build_type), or
    None for pre-PR9 artifacts that never carried one."""
    build = doc.get("build")
    if not isinstance(build, dict):
        return None
    return (build.get("sanitizer", "none"), build.get("build_type", ""))


def flavors_comparable(base, curr):
    """Wall times are only like-for-like when both artifacts came from
    the same build flavor. A missing stamp (older artifact) is treated
    as comparable — the seed baselines predate the stamp — but any
    explicit mismatch (sanitizer vs plain, Debug vs Release) is not:
    instrumented builds are 2-20x slower BY DESIGN, so flagging their
    deltas as regressions would poison the perf trajectory."""
    base_stamp, curr_stamp = build_stamp(base), build_stamp(curr)
    if base_stamp is None or curr_stamp is None:
        return True
    return base_stamp == curr_stamp


def index_harnesses(doc):
    return {row["name"]: row for row in doc.get("harnesses", [])}


def index_micro(doc):
    return {row["benchmark"]: row for row in doc.get("micro_core", [])}


def index_growth(doc):
    # Keyed by worker-thread count; absent in pre-PR5 artifacts.
    return {row["threads"]: row for row in doc.get("growth_probe", [])}


def serve_section(doc):
    # One object or null/absent (pre-PR6 artifacts, or a failed run).
    serve = doc.get("serve")
    return serve if isinstance(serve, dict) else None


def trace_section(doc):
    # One object or null/absent (pre-PR7 artifacts, or a failed probe).
    trace = doc.get("trace")
    return trace if isinstance(trace, dict) else None


def index_recovery(doc):
    # Keyed by (scenario, fault label); absent in pre-PR10 artifacts.
    return {(row.get("scenario"), row.get("fault")): row
            for row in doc.get("recovery", [])
            if isinstance(row, dict)}


def main():
    parser = argparse.ArgumentParser(
        description="Diff two run_benches perf artifacts.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="flag growth above this fraction "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--serve-gate", action="store_true",
                        help="exit code reflects only a serve "
                             "route_lookups_per_s drop over the "
                             "threshold (CI's fatal check)")
    args = parser.parse_args()

    base = load(args.baseline)
    curr = load(args.current)
    comparable = flavors_comparable(base, curr)
    if not comparable:
        print(f"compare_benches: WARNING: build flavors differ — "
              f"baseline {build_stamp(base)} vs current "
              f"{build_stamp(curr)}. Wall-time deltas are reported "
              f"below but NOT treated as regressions (non-fatal).",
              file=sys.stderr)
    if base.get("scale") != curr.get("scale") or \
       base.get("seed") != curr.get("seed"):
        print(f"compare_benches: note: comparing scale/seed "
              f"{base.get('scale')}/{base.get('seed')} vs "
              f"{curr.get('scale')}/{curr.get('seed')} — wall times may "
              f"not be like for like")

    regressions = []
    print(f"{'harness':<28} {'base_s':>8} {'curr_s':>8} {'delta':>8}")
    base_h, curr_h = index_harnesses(base), index_harnesses(curr)
    for name, curr_row in curr_h.items():
        base_row = base_h.get(name)
        if base_row is None:
            print(f"{name:<28} {'--':>8} {curr_row['wall_s']:>8.3f} "
                  f"{'new':>8}")
            continue
        b, c = base_row["wall_s"], curr_row["wall_s"]
        delta = (c - b) / b if b > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, b, c, delta))
        print(f"{name:<28} {b:>8.3f} {c:>8.3f} {delta:>+7.1%}{marker}")
    for name in sorted(set(base_h) - set(curr_h)):
        print(f"{name:<28} {base_h[name]['wall_s']:>8.3f} {'--':>8} "
              f"{'gone':>8}")

    base_m, curr_m = index_micro(base), index_micro(curr)
    shared = sorted(set(base_m) & set(curr_m))
    if shared:
        print(f"\n{'micro_core benchmark':<34} {'base':>10} {'curr':>10} "
              f"{'delta':>8}")
        for name in shared:
            if base_m[name].get("unit") != curr_m[name].get("unit"):
                continue  # stub vs real google-benchmark: not comparable
            b, c = base_m[name]["time"], curr_m[name]["time"]
            delta = (c - b) / b if b > 0 else 0.0
            marker = ""
            if delta > args.threshold:
                marker = "  << REGRESSION"
                regressions.append((name, b, c, delta))
            print(f"{name:<34} {b:>10.1f} {c:>10.1f} {delta:>+7.1%}"
                  f"{marker}")

    base_g, curr_g = index_growth(base), index_growth(curr)
    if curr_g:
        print(f"\n{'growth probe (rewire ms/checkpoint)':<34} {'base':>10} "
              f"{'curr':>10} {'delta':>8}")
        for threads in sorted(curr_g):
            c = curr_g[threads]["rewire_ms_per_checkpoint"]
            base_row = base_g.get(threads)
            if base_row is None:
                print(f"{'threads=' + str(threads):<34} {'--':>10} "
                      f"{c:>10.1f} {'new':>8}")
                continue
            b = base_row["rewire_ms_per_checkpoint"]
            delta = (c - b) / b if b > 0 else 0.0
            marker = ""
            if delta > args.threshold:
                marker = "  << REGRESSION"
                regressions.append(
                    (f"growth_probe[threads={threads}]", b, c, delta))
            print(f"{'threads=' + str(threads):<34} {b:>10.1f} {c:>10.1f} "
                  f"{delta:>+7.1%}{marker}")
        # Peak RSS rides along informationally: growth at the probe
        # scale is dominated by allocator behavior, so a >25% jump is
        # worth a look (SoA slab sizing, snapshot copies) but NEVER
        # fatal — memory is not wall time and runner images differ.
        print(f"\n{'growth probe (peak_rss_kb)':<34} {'base':>10} "
              f"{'curr':>10} {'delta':>8}")
        for threads in sorted(curr_g):
            c = curr_g[threads].get("peak_rss_kb", 0)
            base_row = base_g.get(threads)
            b = 0 if base_row is None else base_row.get("peak_rss_kb", 0)
            if not b:
                print(f"{'threads=' + str(threads):<34} {'--':>10} "
                      f"{c:>10} {'new':>8}")
                continue
            delta = (c - b) / b
            marker = "  << RSS +25% (non-fatal)" if delta > 0.25 else ""
            print(f"{'threads=' + str(threads):<34} {b:>10} {c:>10} "
                  f"{delta:>+7.1%}{marker}")

    # Batched-join A/B and the huge-tier row (pr8+ artifacts): purely
    # informational — the A/B is a within-artifact comparison already,
    # and huge rows come from dedicated big-memory runs.
    curr_ab = curr.get("join_ab")
    if isinstance(curr_ab, dict):
        s = curr_ab.get("seq_growth_ms_min", 0.0)
        b = curr_ab.get("batch_growth_ms_min", 0.0)
        speedup = s / b if b > 0 else 0.0
        print(f"\njoin A/B (N={curr_ab.get('size')}, min of "
              f"{curr_ab.get('rounds')}): seq {s:.1f}ms vs "
              f"k={curr_ab.get('join_batch')} {b:.1f}ms "
              f"({speedup:.2f}x)")
    curr_huge = curr.get("growth_huge")
    if isinstance(curr_huge, dict):
        print(f"huge tier: N={curr_huge.get('size')} grew in "
              f"{curr_huge.get('growth_ms_total', 0.0):.0f}ms, "
              f"peak_rss_kb={curr_huge.get('peak_rss_kb')}")

    serve_regressions = []
    base_s, curr_s = serve_section(base), serve_section(curr)
    if curr_s:
        print(f"\n{'serve firehose':<34} {'base':>10} {'curr':>10} "
              f"{'delta':>8}")
        c = curr_s.get("route_lookups_per_s", 0.0)
        if base_s is None:
            print(f"{'route_lookups_per_s':<34} {'--':>10} {c:>10.0f} "
                  f"{'new':>8}")
        else:
            b = base_s.get("route_lookups_per_s", 0.0)
            # Throughput regresses by DECREASING (unlike the wall-time
            # rows above), so the threshold applies to the drop.
            delta = (c - b) / b if b > 0 else 0.0
            marker = ""
            if delta < -args.threshold:
                marker = "  << REGRESSION"
                regressions.append(("serve.route_lookups_per_s",
                                    b, c, delta))
                serve_regressions.append(("serve.route_lookups_per_s",
                                          b, c, delta))
            print(f"{'route_lookups_per_s':<34} {b:>10.0f} {c:>10.0f} "
                  f"{delta:>+7.1%}{marker}")
        base_cells = {} if base_s is None else {
            (row.get("offered_per_s"), row.get("policy")): row
            for row in base_s.get("cells", [])}
        for cell in curr_s.get("cells", []):
            key = (cell.get("offered_per_s"), cell.get("policy"))
            label = f"p99[{cell.get('policy')}@{cell.get('offered_per_s'):g}]"
            base_cell = base_cells.get(key)
            if base_cell is None:
                print(f"{label:<34} {'--':>10} {cell.get('p99_ms'):>10.2f} "
                      f"{'new':>8}")
                continue
            b, c = base_cell.get("p99_ms", 0.0), cell.get("p99_ms", 0.0)
            delta = (c - b) / b if b > 0 else 0.0
            # Virtual-time tails are deterministic per knob set; report
            # the diff but never flag it — a changed service model is a
            # code change to review, not a runner-noise regression.
            print(f"{label:<34} {b:>10.2f} {c:>10.2f} {delta:>+7.1%}")

    base_r, curr_r = index_recovery(base), index_recovery(curr)
    if curr_r:
        # Recovery numbers are virtual-time and deterministic per seed:
        # a changed time-to-recover is a code change to review (routing,
        # maintenance, fault tuning), not runner noise — reported but
        # never fatal.
        print(f"\n{'recovery (ttr_ms, virtual)':<40} {'base':>8} "
              f"{'curr':>8} {'dip%':>6}")
        for key in sorted(curr_r):
            row = curr_r[key]
            label = f"{key[0]}[{key[1]}]"
            c = row.get("ttr_ms", 0.0)
            base_row = base_r.get(key)
            if base_row is None:
                print(f"{label:<40} {'--':>8} {c:>8.1f} "
                      f"{row.get('dip', 0.0):>6.1f}")
                continue
            b = base_row.get("ttr_ms", 0.0)
            print(f"{label:<40} {b:>8.1f} {c:>8.1f} "
                  f"{row.get('dip', 0.0):>6.1f}")
        for key in sorted(set(base_r) - set(curr_r)):
            print(f"{key[0] + '[' + key[1] + ']':<40} "
                  f"{base_r[key].get('ttr_ms', 0.0):>8.1f} {'--':>8}")

    base_t, curr_t = trace_section(base), trace_section(curr)
    if curr_t:
        # Informational only: attached-sink overhead is a price the user
        # opts into with --trace-file, not a regression to gate on.
        print(f"\n{'trace probe (' + curr_t.get('probe', '?') + ')':<40}")
        d, a = curr_t.get("detached_run_s", 0.0), curr_t.get(
            "otrace_run_s", 0.0)
        overhead = (a - d) / d if d > 0 else 0.0
        print(f"{'  detached_run_s':<34} {d:>10.3f}")
        print(f"{'  otrace_run_s':<34} {a:>10.3f} ({overhead:+.1%} attached)")
        print(f"{'  otrace_bytes':<34} {curr_t.get('otrace_bytes', 0):>10}")
        if base_t:
            bd = base_t.get("detached_run_s", 0.0)
            delta = (d - bd) / bd if bd > 0 else 0.0
            print(f"{'  detached vs baseline':<34} {bd:>10.3f} "
                  f"{d:>10.3f} {delta:>+7.1%}")

    if not comparable:
        # Mismatched build flavors: every timing delta above is
        # apples-to-oranges, so nothing is fatal — not even the serve
        # gate (instrumentation throttles route throughput too).
        print("\ncompare_benches: flavor mismatch — wall-time diff is "
              "informational only (exit 0)")
        return 0

    if args.serve_gate:
        if serve_regressions:
            print(f"\ncompare_benches: serve gate FAILED "
                  f"(route_lookups_per_s drop over {args.threshold:.0%}):",
                  file=sys.stderr)
            for name, b, c, delta in serve_regressions:
                print(f"  {name}: {b:.0f} -> {c:.0f} ({delta:+.1%})",
                      file=sys.stderr)
            return 1
        if curr_s is None or base_s is None:
            print("\ncompare_benches: serve gate: no serve section to "
                  "compare (pass)")
        else:
            print(f"\ncompare_benches: serve gate OK "
                  f"(route throughput within -{args.threshold:.0%})")
        return 0

    if regressions:
        print(f"\ncompare_benches: {len(regressions)} regression(s) over "
              f"+{args.threshold:.0%}:", file=sys.stderr)
        for name, b, c, delta in regressions:
            print(f"  {name}: {b:.3f} -> {c:.3f} ({delta:+.1%})",
                  file=sys.stderr)
        return 1
    print("\ncompare_benches: no wall-time regressions over "
          f"+{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Runs every runnable figure/xtab harness at smoke scale and fails on
# any nonzero exit or `# shape-check: ... VIOLATED` line. micro_core is
# excluded: it is a wall-clock microbenchmark with no shape checks.
#
#   scripts/run_benches.sh [build_dir]     (default: build)
#
# Also reachable as `cmake --build build --target run_benches`. Scale
# knobs (OSCAR_BENCH_SCALE/SIZE/QUERIES/SEED) pass through to the
# harnesses.

set -u

build_dir="${1:-build}"

harnesses=(
  fig1a_degree_pdf
  fig1b_degree_load
  fig1c_search_cost
  fig2_churn
  xtab_latency
  xtab_link_geometry
  xtab_maintenance
  xtab_outdegree_ablation
  xtab_overlay_comparison
  xtab_p2c_ablation
  xtab_replication
  xtab_routing_load
  xtab_sampling_ablation
  xtab_size_estimator
)

fail=0
for harness in "${harnesses[@]}"; do
  bin="${build_dir}/${harness}"
  if [[ ! -x "${bin}" ]]; then
    echo "run_benches: MISSING ${harness} (build it first)" >&2
    fail=1
    continue
  fi
  log="${build_dir}/${harness}.run_benches.log"
  "${bin}" > "${log}" 2>&1
  status=$?
  if [[ "${status}" -ne 0 ]]; then
    echo "run_benches: FAIL(exit=${status}) ${harness} — see ${log}" >&2
    fail=1
  fi
  if grep -q "shape-check:.*VIOLATED" "${log}"; then
    echo "run_benches: FAIL(shape-check) ${harness}:" >&2
    grep "shape-check:.*VIOLATED" "${log}" >&2
    fail=1
  fi
done

if [[ "${fail}" -eq 0 ]]; then
  echo "run_benches: all ${#harnesses[@]} harnesses passed"
fi
exit "${fail}"

#!/usr/bin/env bash
# Runs every runnable figure/xtab harness at smoke scale and fails on
# any nonzero exit or `# shape-check: ... VIOLATED` line. micro_core is
# excluded from the gate (it is a wall-clock microbenchmark with no
# shape checks) but its numbers are captured for the perf artifact.
#
#   scripts/run_benches.sh [build_dir]     (default: build)
#
# Also reachable as `cmake --build build --target run_benches`. Scale
# knobs (OSCAR_BENCH_SCALE/SIZE/QUERIES/SEED) pass through to the
# harnesses.
#
# Side effect: writes ${build_dir}/${OSCAR_BENCH_OUT} (default
# BENCH_pr10.json) — per-harness wall time, micro_core benchmark
# numbers, the growth_probe checkpoint-rewiring wall times (plus peak
# RSS) at 1 and OSCAR_PROBE_THREADS (default 4) worker threads, the
# batched-join A/B (sequential vs join_batch growth walls, interleaved
# min-of-k), an optional huge-tier growth row (OSCAR_BENCH_HUGE=1;
# OSCAR_BENCH_SIZE can shrink it for CI), the oscar_serve firehose
# sweep (route-phase lookups/s + the rate x policy cells), the
# trace-overhead probe (detached vs columnar-attached scenario walls),
# and the hostile-scenario recovery rows (per-fault dip and
# time-to-recover in virtual ms, deterministic per seed) — the
# perf-trajectory artifact CI uploads per run — and copies
# it to the repo root so the trajectory is comparable across commits
# (scripts/compare_benches.py diffs two of them). The JSON is
# informational; the gate is still the exit codes and VIOLATED grep.

set -u

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

# Artifact name is parameterized so a PR can snapshot its own baseline
# (e.g. OSCAR_BENCH_OUT=BENCH_mybranch.json) without clobbering the
# committed one. A malformed name is an error, not a silent fallback —
# falling back to the default would overwrite the committed baseline
# and corrupt the A/B flow documented in compare_benches.py.
artifact="${OSCAR_BENCH_OUT:-BENCH_pr10.json}"
if [[ ! "${artifact}" =~ ^[A-Za-z0-9._-]+$ ]]; then
  echo "run_benches: invalid OSCAR_BENCH_OUT '${artifact}'" \
       "(want a bare file name, [A-Za-z0-9._-]+)" >&2
  exit 1
fi

harnesses=(
  fig1a_degree_pdf
  fig1b_degree_load
  fig1c_search_cost
  fig2_churn
  xtab_latency
  xtab_link_geometry
  xtab_maintenance
  xtab_outdegree_ablation
  xtab_overlay_comparison
  xtab_p2c_ablation
  xtab_replication
  xtab_routing_load
  xtab_sampling_ablation
  xtab_size_estimator
)

json="${build_dir}/${artifact}"
json_rows=()

fail=0
for harness in "${harnesses[@]}"; do
  bin="${build_dir}/${harness}"
  if [[ ! -x "${bin}" ]]; then
    echo "run_benches: MISSING ${harness} (build it first)" >&2
    fail=1
    continue
  fi
  log="${build_dir}/${harness}.run_benches.log"
  start_ns=$(date +%s%N)
  "${bin}" > "${log}" 2>&1
  status=$?
  end_ns=$(date +%s%N)
  wall_s=$(awk -v a="${start_ns}" -v b="${end_ns}" \
           'BEGIN { printf "%.3f", (b - a) / 1e9 }')
  json_rows+=("    {\"name\": \"${harness}\", \"wall_s\": ${wall_s}, \"exit\": ${status}}")
  if [[ "${status}" -ne 0 ]]; then
    echo "run_benches: FAIL(exit=${status}) ${harness} — see ${log}" >&2
    fail=1
  fi
  if grep -q "shape-check:.*VIOLATED" "${log}"; then
    echo "run_benches: FAIL(shape-check) ${harness}:" >&2
    grep "shape-check:.*VIOLATED" "${log}" >&2
    fail=1
  fi
done

# micro_core numbers. Real google-benchmark lines look like
# `BM_GreedyRoute/1000   3075 ns   3075 ns   22830`; the bundled stub
# prints `BM_GreedyRoute/1000   3075.0 ns/iter (stub, N iters)`.
micro_rows=()
if [[ -x "${build_dir}/micro_core" ]]; then
  while IFS= read -r line; do
    micro_rows+=("${line}")
  done < <("${build_dir}/micro_core" --benchmark_min_time=0.05 2>/dev/null |
    awk '/^BM_/ { unit = $3; sub(/\/iter.*/, "", unit);
                  printf "    {\"benchmark\": \"%s\", \"time\": %s, \"unit\": \"%s\"},\n", $1, $2, unit }')
  # Strip the trailing comma of the last row.
  if [[ "${#micro_rows[@]}" -gt 0 ]]; then
    last=$(( ${#micro_rows[@]} - 1 ))
    micro_rows[${last}]="${micro_rows[${last}]%,}"
  fi
fi

# Growth micro-probe: checkpoint-rewiring wall ms at N=3000 (the
# post-PR4 growth bottleneck), once single-threaded and once on the
# worker pool, so the trajectory captures both the algorithmic win and
# the threading win. Probe scale is fixed — it must stay comparable
# across runs regardless of the harness-scale knobs above.
growth_rows=()
probe_threads="${OSCAR_PROBE_THREADS:-4}"
[[ "${probe_threads}" =~ ^[0-9]+$ ]] || probe_threads=4
if [[ -x "${build_dir}/growth_probe" ]]; then
  probe_runs=(1)
  [[ "${probe_threads}" -ne 1 ]] && probe_runs+=("${probe_threads}")
  for threads in "${probe_runs[@]}"; do
    # Seed pinned too: the probe must measure the same workload no
    # matter what seed the harness gate above swept.
    row=$(OSCAR_BENCH_SIZE=3000 OSCAR_BENCH_SEED=42 \
          OSCAR_THREADS="${threads}" \
          "${build_dir}/growth_probe" 2>/dev/null)
    if [[ "${row}" == {* ]]; then
      growth_rows+=("    ${row},")
    else
      echo "run_benches: growth_probe failed at OSCAR_THREADS=${threads}" >&2
    fi
  done
  if [[ "${#growth_rows[@]}" -gt 0 ]]; then
    last=$(( ${#growth_rows[@]} - 1 ))
    growth_rows[${last}]="${growth_rows[${last}]%,}"
  fi
fi

# Batched-join A/B at the pinned probe scale: grow the same N=3000 /
# seed-42 network once per arm per round, arms interleaved (seq, batch,
# seq, batch, ...) so drift hits both equally, and keep the min wall
# per arm — the same min-of-k methodology as PRs 5-7. join_batch only
# changes HOW joins are planned (epoch snapshots + parallel planning),
# never the grown topology's byte identity vs k=1 batches, so the delta
# is pure construction cost.
join_ab_row="null"
ab_rounds="${OSCAR_JOIN_AB_ROUNDS:-3}"
[[ "${ab_rounds}" =~ ^[0-9]+$ ]] || ab_rounds=3
join_ab_batch="${OSCAR_JOIN_AB_BATCH:-64}"
[[ "${join_ab_batch}" =~ ^[0-9]+$ ]] || join_ab_batch=64
if [[ -x "${build_dir}/growth_probe" && "${ab_rounds}" -gt 0 ]]; then
  growth_ms() {  # join_batch -> growth_ms_total or ""
    OSCAR_BENCH_SIZE=3000 OSCAR_BENCH_SEED=42 OSCAR_THREADS=1 \
      OSCAR_JOIN_BATCH="$1" "${build_dir}/growth_probe" 2>/dev/null |
      sed -n 's/.*"growth_ms_total": \([0-9.]*\).*/\1/p'
  }
  seq_min="" batch_min=""
  for (( round = 0; round < ab_rounds; ++round )); do
    s=$(growth_ms 0)
    b=$(growth_ms "${join_ab_batch}")
    if [[ -z "${s}" || -z "${b}" ]]; then
      echo "run_benches: batched-join A/B probe failed" >&2
      seq_min="" batch_min=""
      break
    fi
    seq_min=$(awk -v a="${seq_min:-${s}}" -v b="${s}" \
              'BEGIN { print (a < b) ? a : b }')
    batch_min=$(awk -v a="${batch_min:-${b}}" -v b="${b}" \
                'BEGIN { print (a < b) ? a : b }')
  done
  if [[ -n "${seq_min}" && -n "${batch_min}" ]]; then
    join_ab_row="{\"size\": 3000, \"rounds\": ${ab_rounds}, \
\"join_batch\": ${join_ab_batch}, \
\"seq_growth_ms_min\": ${seq_min}, \
\"batch_growth_ms_min\": ${batch_min}}"
  fi
fi

# Huge-tier growth row (opt-in: OSCAR_BENCH_HUGE=1): one oracle-sampled
# batched growth under OSCAR_BENCH_SCALE=huge. The full tier is 10^6
# peers; CI's smoke job shrinks it with OSCAR_BENCH_SIZE=100000 to fit
# the runner. Wall + peak RSS land in the artifact either way.
huge_row="null"
if [[ "${OSCAR_BENCH_HUGE:-0}" == "1" && -x "${build_dir}/growth_probe" ]]; then
  row=$(OSCAR_BENCH_SCALE=huge OSCAR_BENCH_SEED=42 \
        OSCAR_JOIN_BATCH="${OSCAR_JOIN_BATCH:-1024}" \
        "${build_dir}/growth_probe" 2>/dev/null)
  if [[ "${row}" == {* ]]; then
    huge_row="${row}"
  else
    echo "run_benches: huge-tier growth_probe failed" >&2
    fail=1
  fi
fi

# Serving firehose: the default rate x policy sweep over the same
# frozen N=3000 / seed-42 snapshot the growth probe measures, on the
# full worker pool. --bench-json prints one JSON object (route-phase
# lookups/s plus per-cell achieved rate and tail latencies) that embeds
# verbatim. A missing binary or failed run degrades to "serve": null —
# the artifact stays parseable either way.
serve_row="null"
if [[ -x "${build_dir}/oscar_serve" ]]; then
  row=$(OSCAR_BENCH_SIZE=3000 OSCAR_BENCH_SEED=42 \
        OSCAR_THREADS="${probe_threads}" \
        "${build_dir}/oscar_serve" --bench-json 2>/dev/null)
  if [[ "${row}" == {* ]]; then
    serve_row="${row}"
  else
    echo "run_benches: oscar_serve --bench-json failed" >&2
  fi
fi

# Trace-overhead probe: the same message-level workload once with no
# sink (the detached path is one branch per would-be event) and once
# streaming a columnar `.otrace`. Both walls are the CLI's own
# scenario-run time (growth excluded, parsed from the stderr timing
# line), so the delta isolates the emission path. Informational — the
# compare script prints it but never flags it.
trace_row="null"
if [[ -x "${build_dir}/oscar_sim" ]]; then
  probe_run_s() {  # extra args... -> scenario-run seconds or ""
    OSCAR_BENCH_SIZE=1000 OSCAR_BENCH_QUERIES=20000 OSCAR_BENCH_SEED=42 \
      "${build_dir}/oscar_sim" baseline flash-crowd "$@" 2>&1 >/dev/null |
      sed -n 's/.* run=\([0-9.]*\)s$/\1/p'
  }
  trace_otrace="${build_dir}/trace_probe.otrace"
  detached_s=$(probe_run_s)
  attached_s=$(probe_run_s --trace-file "${trace_otrace}")
  if [[ -n "${detached_s}" && -n "${attached_s}" && -s "${trace_otrace}" ]]; then
    otrace_bytes=$(wc -c < "${trace_otrace}")
    trace_row="{\"probe\": \"baseline+flash-crowd n=1000 q=20000\", \
\"detached_run_s\": ${detached_s}, \"otrace_run_s\": ${attached_s}, \
\"otrace_bytes\": ${otrace_bytes}}"
  else
    echo "run_benches: trace-overhead probe failed" >&2
  fi
  rm -f "${trace_otrace}"
fi

# Hostile-scenario recovery rows: one pinned-scale run over the four
# fault-injection scenarios, with the per-fault recovery table parsed
# into JSON. Every number is virtual-time and deterministic per seed,
# so the compare script can diff time-to-recover across commits
# without runner noise (informational — never fatal). heal_ms "-"
# (permanent faults) and ttr_ms "never" (no re-cross) map to -1.
recovery_rows=()
if [[ -x "${build_dir}/oscar_sim" ]]; then
  while IFS= read -r line; do
    recovery_rows+=("${line}")
  done < <(OSCAR_BENCH_SIZE=300 OSCAR_BENCH_QUERIES=240 OSCAR_BENCH_SEED=42 \
           "${build_dir}/oscar_sim" partition-heal repair-vs-churn \
             adversarial-hotkeys cascade-slowdown 2>/dev/null |
    awk -F'|' '/-- recovery/ { t = 1; next } !NF { t = 0 }
      t && /@/ {
        for (i = 2; i <= 12; ++i) gsub(/^ +| +$/, "", $i)
        heal = ($5 == "-") ? -1 : $5
        ttr = ($10 == "never") ? -1 : $10
        printf "    {\"scenario\": \"%s\", \"fault\": \"%s\", \
\"at_ms\": %s, \"heal_ms\": %s, \"crashed\": %s, \"ok_before\": %s, \
\"dip\": %s, \"ok_after\": %s, \"ttr_ms\": %s},\n", \
          $2, $3, $4, heal, $6, $7, $8, $9, ttr
      }')
  if [[ "${#recovery_rows[@]}" -gt 0 ]]; then
    last=$(( ${#recovery_rows[@]} - 1 ))
    recovery_rows[${last}]="${recovery_rows[${last}]%,}"
  else
    echo "run_benches: recovery probe produced no rows" >&2
  fi
fi

# Build-flavor stamp for the artifact's top level (growth_probe
# --flavor prints the compile-time CMake definitions as one JSON
# object). compare_benches.py reads it and refuses to treat wall-time
# deltas across mismatched flavors as regressions — a sanitizer tree is
# 2-20x slower by design and must never pollute the perf trajectory.
build_row="null"
if [[ -x "${build_dir}/growth_probe" ]]; then
  row=$("${build_dir}/growth_probe" --flavor 2>/dev/null)
  [[ "${row}" == {* ]] && build_row="${row}"
fi

# Mirror the harnesses' EnvOrDefault semantics: a non-integer seed
# falls back to the default instead of corrupting the JSON.
seed="${OSCAR_BENCH_SEED:-42}"
[[ "${seed}" =~ ^[0-9]+$ ]] || seed=42
scale="${OSCAR_BENCH_SCALE:-small}"
[[ "${scale}" =~ ^[A-Za-z0-9_-]+$ ]] || scale=small

{
  echo "{"
  echo "  \"schema\": \"oscar-bench-v1\","
  echo "  \"scale\": \"${scale}\","
  echo "  \"seed\": ${seed},"
  echo "  \"build\": ${build_row},"
  echo "  \"nproc\": $(nproc 2>/dev/null || echo 0),"
  echo "  \"harnesses\": ["
  if [[ "${#json_rows[@]}" -gt 0 ]]; then
    for i in "${!json_rows[@]}"; do
      if [[ "${i}" -lt $(( ${#json_rows[@]} - 1 )) ]]; then
        echo "${json_rows[${i}]},"
      else
        echo "${json_rows[${i}]}"
      fi
    done
  fi
  echo "  ],"
  echo "  \"micro_core\": ["
  for row in "${micro_rows[@]+"${micro_rows[@]}"}"; do
    echo "${row}"
  done
  echo "  ],"
  echo "  \"growth_probe\": ["
  for row in "${growth_rows[@]+"${growth_rows[@]}"}"; do
    echo "${row}"
  done
  echo "  ],"
  echo "  \"join_ab\": ${join_ab_row},"
  echo "  \"growth_huge\": ${huge_row},"
  echo "  \"serve\": ${serve_row},"
  echo "  \"trace\": ${trace_row},"
  echo "  \"recovery\": ["
  for row in "${recovery_rows[@]+"${recovery_rows[@]}"}"; do
    echo "${row}"
  done
  echo "  ]"
  echo "}"
} > "${json}"

# Mirror the artifact at the repo root (skip when the build dir IS the
# root) so the perf trajectory lives next to the code it measures.
if [[ "$(cd "${build_dir}" 2>/dev/null && pwd)" != "${repo_root}" ]]; then
  cp "${json}" "${repo_root}/${artifact}"
fi

if [[ "${fail}" -eq 0 ]]; then
  echo "run_benches: all ${#harnesses[@]} harnesses passed (perf: ${json})"
fi
exit "${fail}"

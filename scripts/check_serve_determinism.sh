#!/usr/bin/env bash
# Thread-invariance smoke for the serving firehose, run under ctest:
# the oscar_serve summary (stdout) must be byte-identical at
# OSCAR_THREADS=1 vs 4 for seeds 42-45 — the whole sweep, rate limiting
# off included (rate 0) and on (a paced rate), uniform and Zipf-hot
# keys. Only stderr may carry wall-clock numbers, so stdout diffing is
# the exact contract the CLI documents.
#
#   scripts/check_serve_determinism.sh path/to/oscar_serve
#
# The script pins OSCAR_THREADS itself (ctest may run with either
# ambient value; both runs happen here regardless).

set -euo pipefail

serve="${1:?usage: check_serve_determinism.sh path/to/oscar_serve}"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

export OSCAR_BENCH_SIZE=300
unset OSCAR_BENCH_SCALE 2>/dev/null || true

args=(--lookups=20000 --rates=0,4000 --hot-keys=8)

fail=0
for seed in 42 43 44 45; do
  for threads in 1 4; do
    out="${workdir}/seed${seed}_t${threads}.out"
    if ! OSCAR_BENCH_SEED="${seed}" OSCAR_THREADS="${threads}" \
         "${serve}" "${args[@]}" > "${out}" 2>/dev/null; then
      echo "FAIL seed=${seed} threads=${threads}: nonzero exit" >&2
      fail=1
    fi
  done
  if ! cmp -s "${workdir}/seed${seed}_t1.out" \
              "${workdir}/seed${seed}_t4.out"; then
    echo "FAIL seed=${seed}: summary differs between OSCAR_THREADS=1 and 4" >&2
    # diff exits 1 on difference by design; don't let errexit/pipefail
    # turn the diagnostic itself into the failure.
    diff "${workdir}/seed${seed}_t1.out" "${workdir}/seed${seed}_t4.out" |
      head -20 >&2 || true
    fail=1
  fi
done

# Different seeds must NOT collide (a trivially constant summary would
# pass the diff above while measuring nothing).
if cmp -s "${workdir}/seed42_t1.out" "${workdir}/seed43_t1.out"; then
  echo "FAIL: seeds 42 and 43 produced identical summaries" >&2
  fail=1
fi

if [[ "${fail}" -eq 0 ]]; then
  echo "check_serve_determinism: byte-identical at 1 vs 4 threads, seeds 42-45"
fi
exit "${fail}"

#!/usr/bin/env bash
# Flag-parsing contract test for the oscar_serve CLI, run under ctest
# (the PR 4 standard: every malformed invocation exits 2 AND prints the
# usage text on stderr; the accepted corners keep their documented
# behavior).
#
#   scripts/check_serve_cli.sh path/to/oscar_serve
#
# The rejections short-circuit before any growth, and the one accepted
# full run is pinned to a tiny scale, so the whole probe stays cheap.

set -euo pipefail

serve="${1:?usage: check_serve_cli.sh path/to/oscar_serve}"
export OSCAR_BENCH_SIZE=48 OSCAR_BENCH_SEED=42
unset OSCAR_BENCH_SCALE 2>/dev/null || true

fail=0

# expect_reject <label> <args...>: exit must be 2, stderr must carry the
# usage text. (The || capture keeps the expected-nonzero probe from
# tripping errexit.)
expect_reject() {
  local label="$1"
  shift
  local err status=0
  err=$("${serve}" "$@" 2>&1 >/dev/null) || status=$?
  if [[ "${status}" -ne 2 ]]; then
    echo "FAIL ${label}: exit=${status}, want 2 (args: $*)" >&2
    fail=1
  fi
  if ! grep -q "^usage: oscar_serve" <<< "${err}"; then
    echo "FAIL ${label}: no usage line on stderr (args: $*)" >&2
    fail=1
  fi
}

# expect_ok <label> <args...>: exit must be 0.
expect_ok() {
  local label="$1"
  shift
  if ! "${serve}" "$@" >/dev/null 2>&1; then
    echo "FAIL ${label}: nonzero exit (args: $*)" >&2
    fail=1
  fi
}

expect_reject "unknown flag"              --frobnicate
expect_reject "positional argument"       firehose
expect_reject "bare --rates"              --rates
expect_reject "empty --rates= value"      --rates=
expect_reject "comma-only --rates"        --rates=,,
expect_reject "non-numeric rate"          --rates=12,abc
expect_reject "negative rate"             --rates=-5
expect_reject "bare --lookups"            --lookups
expect_reject "zero --lookups"            --lookups=0
expect_reject "non-numeric --lookups"     --lookups=many
expect_reject "negative --lookups"        --lookups=-3
expect_reject "empty --policies= value"   --policies=
expect_reject "unknown policy"            --policies=none,bogus
expect_reject "zero --concurrency"        --concurrency=0
expect_reject "non-numeric --hop-ms"      --hop-ms=fast
expect_reject "negative --timeout-ms"     --timeout-ms=-1
expect_reject "zero --queue-cap"          --queue-cap=0
expect_reject "zero --peer-cap"           --peer-cap=0
expect_reject "non-numeric --hot-keys"    --hot-keys=lots
expect_reject "negative --zipf"           --zipf=-1.1
expect_reject "empty --trace-file= value" --trace-file=
expect_reject "duplicate --trace-file"    --trace-file=a.csv --trace-file=b.csv
expect_reject "bogus --trace-format"      --trace-file=a --trace-format=xml
expect_reject "--trace-format alone"      --trace-format=csv
expect_reject "negative --queue-cadence-ms" --queue-cadence-ms=-1

expect_ok "--help exits 0"           --help
expect_ok "--list-policies exits 0"  --list-policies
# One real (tiny) run: sweep parsing end to end, including rate 0.
expect_ok "tiny sweep runs"  --lookups=400 --rates=0,2000 --policies=none,drop-tail

if [[ "${fail}" -eq 0 ]]; then
  echo "check_serve_cli: all flag-parsing corners OK"
fi
exit "${fail}"

#!/usr/bin/env bash
# Thread-invariance smoke for the hostile scenario runner, run under
# ctest: the oscar_sim summary (stdout) — scenario table, recovery
# table, maintenance table — must be byte-identical at OSCAR_THREADS=1
# vs 4 and across repeated runs for seeds 42-45. The hostile scenarios
# exercise every fault path (partitions, slowdowns, region crashes,
# virtual-time maintenance rounds), so this pins the whole
# fault-injection pipeline to the determinism contract. Only stderr
# carries wall-clock timing.
#
#   scripts/check_sim_determinism.sh path/to/oscar_sim
#
# The script pins OSCAR_THREADS itself (ctest may run with either
# ambient value; both runs happen here regardless).

set -euo pipefail

sim="${1:?usage: check_sim_determinism.sh path/to/oscar_sim}"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

export OSCAR_BENCH_SIZE=150 OSCAR_BENCH_QUERIES=80
unset OSCAR_BENCH_SCALE 2>/dev/null || true

scenarios=(partition-heal repair-vs-churn adversarial-hotkeys cascade-slowdown)

fail=0
for seed in 42 43 44 45; do
  for threads in 1 4; do
    out="${workdir}/seed${seed}_t${threads}.out"
    if ! OSCAR_BENCH_SEED="${seed}" OSCAR_THREADS="${threads}" \
         "${sim}" "${scenarios[@]}" > "${out}" 2>/dev/null; then
      echo "FAIL seed=${seed} threads=${threads}: nonzero exit" >&2
      fail=1
    fi
  done
  if ! cmp -s "${workdir}/seed${seed}_t1.out" \
              "${workdir}/seed${seed}_t4.out"; then
    echo "FAIL seed=${seed}: summary differs between OSCAR_THREADS=1 and 4" >&2
    diff "${workdir}/seed${seed}_t1.out" "${workdir}/seed${seed}_t4.out" |
      head -20 >&2 || true
    fail=1
  fi
  # Rerun at 1 thread: same seed, same bytes (no hidden global state).
  rerun="${workdir}/seed${seed}_rerun.out"
  OSCAR_BENCH_SEED="${seed}" OSCAR_THREADS=1 \
    "${sim}" "${scenarios[@]}" > "${rerun}" 2>/dev/null || true
  if ! cmp -s "${workdir}/seed${seed}_t1.out" "${rerun}"; then
    echo "FAIL seed=${seed}: repeated run differs from the first" >&2
    fail=1
  fi
done

# Different seeds must NOT collide (a trivially constant summary would
# pass the diffs above while measuring nothing).
if cmp -s "${workdir}/seed42_t1.out" "${workdir}/seed43_t1.out"; then
  echo "FAIL: seeds 42 and 43 produced identical summaries" >&2
  fail=1
fi

# The fault pipeline actually ran: every hostile scenario must report
# at least one recovery row (the table only prints when non-empty).
if ! grep -q "recovery (per injected fault)" "${workdir}/seed42_t1.out"; then
  echo "FAIL: no recovery table in the seed-42 summary" >&2
  fail=1
fi
for scenario in "${scenarios[@]}"; do
  if ! grep -q "^| ${scenario}" "${workdir}/seed42_t1.out"; then
    echo "FAIL: scenario ${scenario} missing from the seed-42 summary" >&2
    fail=1
  fi
done

if [[ "${fail}" -eq 0 ]]; then
  echo "check_sim_determinism: byte-identical at 1 vs 4 threads, seeds 42-45"
fi
exit "${fail}"

#!/usr/bin/env bash
# Flag-parsing contract test for the oscar_sim CLI, run under ctest.
#
#   scripts/check_sim_cli.sh path/to/oscar_sim
#
# Every malformed invocation must exit 2 AND print the usage line on
# stderr; the accepted corners (repeated --scenarios, --help) must keep
# their documented behavior. Keeps the binary cheap to probe by pinning
# a tiny scale (the rejections short-circuit before any growth anyway).

set -euo pipefail

sim="${1:?usage: check_sim_cli.sh path/to/oscar_sim}"
export OSCAR_BENCH_SIZE=32 OSCAR_BENCH_QUERIES=8

fail=0

# expect_reject <label> <args...>: exit must be 2, stderr must carry a
# usage line. (The || capture keeps the expected-nonzero probe from
# tripping errexit.)
expect_reject() {
  local label="$1"
  shift
  local err status=0
  err=$("${sim}" "$@" 2>&1 >/dev/null) || status=$?
  if [[ "${status}" -ne 2 ]]; then
    echo "FAIL ${label}: exit=${status}, want 2 (args: $*)" >&2
    fail=1
  fi
  if ! grep -q "^usage: oscar_sim" <<< "${err}"; then
    echo "FAIL ${label}: no usage line on stderr (args: $*)" >&2
    fail=1
  fi
}

# expect_ok <label> <args...>: exit must be 0.
expect_ok() {
  local label="$1"
  shift
  if ! "${sim}" "$@" >/dev/null 2>&1; then
    echo "FAIL ${label}: nonzero exit (args: $*)" >&2
    fail=1
  fi
}

expect_reject "empty --scenarios= value"        --scenarios=
expect_reject "missing --scenarios value"       --scenarios
expect_reject "comma-only --scenarios"          --scenarios=,,
expect_reject "empty --trace-file= value"       --trace-file=
expect_reject "missing --trace-file value"      --trace-file
expect_reject "duplicate --trace-file"          --trace-file=a.csv --trace-file=b.csv
expect_reject "bogus --trace-format"            --trace-file=a --trace-format=xml
expect_reject "missing --trace-format value"    --trace-file=a --trace-format
expect_reject "--trace-format without file"     --trace-format=otrace
expect_reject "negative --queue-cadence-ms"     --queue-cadence-ms=-1
expect_reject "non-numeric --queue-cadence-ms"  --queue-cadence-ms=soon
expect_reject "negative --maintenance-cadence-ms"    --maintenance-cadence-ms=-5
expect_reject "non-numeric --maintenance-cadence-ms" --maintenance-cadence-ms=often
expect_reject "empty --maintenance-cadence-ms value" --maintenance-cadence-ms=
expect_reject "missing --maintenance-cadence-ms value" --maintenance-cadence-ms
expect_reject "empty --fault-plan value"        --fault-plan=
expect_reject "missing --fault-plan value"      --fault-plan
expect_reject "unknown fault kind"              --fault-plan=meteor@10:0.2,0.1
expect_reject "fault plan missing @"            --fault-plan=crash10:0.2,0.1
expect_reject "crash cannot heal"               --fault-plan=crash@10+5:0.2,0.1
expect_reject "partition loss out of range"     --fault-plan=partition@10+5:0.0,0.2,0.5,0.2,1.5
expect_reject "slow multiplier below 1"         --fault-plan=slow@10+5:0.2,0.1,0.5
expect_reject "trailing fault separator"        --fault-plan='crash@10:0.2,0.1;'
expect_reject "unknown flag"                    --frobnicate
expect_reject "unknown scenario"                no-such-scenario
expect_reject "unknown scenario after valid"    baseline no-such-scenario
expect_reject "unknown name in --scenarios"     --scenarios=baseline,no-such-scenario

expect_ok "--help exits 0"  --help
expect_ok "--list exits 0"  --list
# Repeated --scenarios accumulate (documented behavior, like bare names).
expect_ok "repeated --scenarios accumulate"  --scenarios=baseline --scenarios=message-loss
# Fault injection knobs: a valid plan plus an explicit cadence runs, and
# repeated --fault-plan flags accumulate like --scenarios.
expect_ok "valid fault plan with cadence" \
  --maintenance-cadence-ms=25 \
  --fault-plan='crash@5:0.2,0.1;slow@2+4:0.5,0.2' baseline
expect_ok "repeated --fault-plan accumulate" \
  --fault-plan='crash@5:0.2,0.1' --fault-plan='partition@2+4:0.0,0.2,0.5,0.2' \
  baseline
expect_ok "cadence zero disables maintenance"  --maintenance-cadence-ms=0 repair-vs-churn

if [[ "${fail}" -eq 0 ]]; then
  echo "check_sim_cli: all flag-parsing corners OK"
fi
exit "${fail}"

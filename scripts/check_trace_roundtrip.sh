#!/usr/bin/env bash
# Binary-trace contract test, run under ctest:
#
#  1. `.otrace` bytes from both CLIs are identical at OSCAR_THREADS=1
#     vs 4 and across repeated runs, for seeds 42-45 (the trace rides
#     the same virtual-time determinism the summaries already promise).
#  2. `oscar_trace --csv` on a binary trace reproduces the direct CSV
#     sink's bytes exactly — the columnar encoding loses nothing.
#  3. The CSV carries `scenario` as a proper column: exactly one header
#     line, no `# scenario=` comment interleaving.
#  4. A truncated `.otrace` is rejected (exit 2), and the default
#     summary/heatmap mode succeeds on a good file.
#
#   scripts/check_trace_roundtrip.sh oscar_sim oscar_trace oscar_serve
#
# Everything runs at smoke scale; the script pins its own env.

set -euo pipefail

sim="${1:?usage: check_trace_roundtrip.sh oscar_sim oscar_trace oscar_serve}"
tracer="${2:?missing oscar_trace path}"
serve="${3:?missing oscar_serve path}"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

export OSCAR_BENCH_SIZE=200 OSCAR_BENCH_QUERIES=120
unset OSCAR_BENCH_SCALE 2>/dev/null || true

scenarios=(baseline rolling-churn)
fail=0

run_sim() {  # seed threads outfile extra-args...
  local seed="$1" threads="$2" out="$3"
  shift 3
  if ! OSCAR_BENCH_SEED="${seed}" OSCAR_THREADS="${threads}" \
       "${sim}" "${scenarios[@]}" --trace-file "${out}" "$@" \
       >/dev/null 2>&1; then
    echo "FAIL oscar_sim seed=${seed} threads=${threads}: nonzero exit" >&2
    fail=1
  fi
}

# --- 1. thread- and run-invariance of the binary trace (sim) ---------
for seed in 42 43 44 45; do
  run_sim "${seed}" 1 "${workdir}/s${seed}_t1.otrace"
  run_sim "${seed}" 4 "${workdir}/s${seed}_t4.otrace"
  if ! cmp -s "${workdir}/s${seed}_t1.otrace" "${workdir}/s${seed}_t4.otrace"; then
    echo "FAIL seed=${seed}: .otrace differs between OSCAR_THREADS=1 and 4" >&2
    fail=1
  fi
done
run_sim 42 1 "${workdir}/s42_repeat.otrace"
if ! cmp -s "${workdir}/s42_t1.otrace" "${workdir}/s42_repeat.otrace"; then
  echo "FAIL: repeated seed=42 runs produced different .otrace bytes" >&2
  fail=1
fi
# Different seeds must diverge or the checks above measure nothing.
if cmp -s "${workdir}/s42_t1.otrace" "${workdir}/s43_t1.otrace"; then
  echo "FAIL: seeds 42 and 43 produced identical .otrace bytes" >&2
  fail=1
fi

# --- 2. binary -> CSV replay == direct CSV sink (sim) ----------------
run_sim 42 1 "${workdir}/direct.csv"
if ! "${tracer}" "${workdir}/s42_t1.otrace" --csv > "${workdir}/replay.csv" \
     2>/dev/null; then
  echo "FAIL: oscar_trace --csv exited nonzero" >&2
  fail=1
fi
if ! cmp -s "${workdir}/direct.csv" "${workdir}/replay.csv"; then
  echo "FAIL: oscar_trace --csv differs from the direct CSV sink" >&2
  # diff exits 1 on difference by design; keep the diagnostic from
  # tripping errexit/pipefail.
  diff "${workdir}/direct.csv" "${workdir}/replay.csv" | head -10 >&2 || true
  fail=1
fi

# --- 3. scenario is a column; header exactly once; no comments -------
header='t_ms,scenario,event,lookup,peer,to,info'
if [[ "$(head -1 "${workdir}/direct.csv")" != "${header}" ]]; then
  echo "FAIL: CSV does not start with the ${header} header" >&2
  fail=1
fi
if [[ "$(grep -cFx "${header}" "${workdir}/direct.csv")" -ne 1 ]]; then
  echo "FAIL: CSV header appears more than once" >&2
  fail=1
fi
if grep -q '^#' "${workdir}/direct.csv"; then
  echo "FAIL: CSV still interleaves # comment lines" >&2
  fail=1
fi
for scenario in "${scenarios[@]}"; do
  if ! grep -q ",${scenario}," "${workdir}/direct.csv"; then
    echo "FAIL: no rows tagged with scenario '${scenario}'" >&2
    fail=1
  fi
done

# --- 4. serve traces: same invariants over the sweep timelines -------
serve_args=(--lookups=4000 --rates=0,4000)
for threads in 1 4; do
  if ! OSCAR_BENCH_SEED=42 OSCAR_THREADS="${threads}" \
       "${serve}" "${serve_args[@]}" \
       "--trace-file=${workdir}/serve_t${threads}.otrace" \
       >/dev/null 2>&1; then
    echo "FAIL oscar_serve threads=${threads}: nonzero exit" >&2
    fail=1
  fi
done
if ! cmp -s "${workdir}/serve_t1.otrace" "${workdir}/serve_t4.otrace"; then
  echo "FAIL: serve .otrace differs between OSCAR_THREADS=1 and 4" >&2
  fail=1
fi
if ! OSCAR_BENCH_SEED=42 OSCAR_THREADS=1 \
     "${serve}" "${serve_args[@]}" \
     "--trace-file=${workdir}/serve_direct.csv" >/dev/null 2>&1; then
  echo "FAIL oscar_serve csv trace: nonzero exit" >&2
  fail=1
fi
"${tracer}" "${workdir}/serve_t1.otrace" --csv > "${workdir}/serve_replay.csv" \
  2>/dev/null || { echo "FAIL: oscar_trace --csv (serve) nonzero exit" >&2; fail=1; }
if ! cmp -s "${workdir}/serve_direct.csv" "${workdir}/serve_replay.csv"; then
  echo "FAIL: serve CSV replay differs from the direct CSV sink" >&2
  fail=1
fi

# --- 5. analyzer smoke + corruption rejection ------------------------
if ! "${tracer}" "${workdir}/s42_t1.otrace" > "${workdir}/summary.txt" 2>&1; then
  echo "FAIL: oscar_trace summary mode exited nonzero" >&2
  fail=1
fi
if ! grep -q '^heatmap:' "${workdir}/summary.txt"; then
  echo "FAIL: summary output has no heatmap" >&2
  fail=1
fi
head -c 64 "${workdir}/s42_t1.otrace" > "${workdir}/truncated.otrace"
# Exit 2 is the EXPECTED outcome; capture it without tripping errexit.
truncated_status=0
"${tracer}" "${workdir}/truncated.otrace" >/dev/null 2>&1 || truncated_status=$?
if [[ "${truncated_status}" -ne 2 ]]; then
  echo "FAIL: truncated .otrace not rejected with exit 2" >&2
  fail=1
fi

if [[ "${fail}" -eq 0 ]]; then
  echo "check_trace_roundtrip: byte-stable across threads/runs, CSV round trip exact"
fi
exit "${fail}"

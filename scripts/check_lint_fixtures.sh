#!/usr/bin/env bash
# Pins tools/lint_determinism.py's behavior against the fixture corpus
# in tests/lint_fixtures/: every rule must fire exactly where the
# fixtures say it does, and nowhere else.
#
# Expectations live IN the fixtures as comment markers:
#   // lint-expect: <rule>[, <rule>]       findings on this line
#   // lint-expect-next: <rule>[, <rule>]  findings on the next line
#     (for lines that cannot carry a marker, e.g. a malformed
#      oscar-lint suppression whose trailing text would become its
#      reason)
# Valid `// oscar-lint: allow(rule) reason` suppressions must land in
# the report's "suppressed" list with their reasons intact — never in
# "findings".
#
# Usage: check_lint_fixtures.sh [repo_root]
set -euo pipefail

repo_root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
lint="${repo_root}/tools/lint_determinism.py"
fixtures="${repo_root}/tests/lint_fixtures"

if [[ ! -f "${lint}" || ! -d "${fixtures}" ]]; then
  echo "check_lint_fixtures: missing ${lint} or ${fixtures}" >&2
  exit 2
fi

report="$(mktemp)"
trap 'rm -f "${report}"' EXIT

# The lint must exit 1 here: the trip_* fixtures exist to trigger it.
lint_status=0
python3 "${lint}" --json "${report}" "${fixtures}" >/dev/null ||
  lint_status=$?
if [[ "${lint_status}" -ne 1 ]]; then
  echo "check_lint_fixtures: VIOLATED — lint exited ${lint_status} on" \
       "the fixture corpus (want 1: fixtures must trigger findings)" >&2
  exit 1
fi

python3 - "${report}" "${fixtures}" <<'PYEOF'
import json
import os
import re
import sys

report_path, fixtures_dir = sys.argv[1], sys.argv[2]
with open(report_path, encoding="utf-8") as f:
    report = json.load(f)

MARKER = re.compile(r"//\s*lint-expect(-next)?:\s*([\w\-, ]+)$")

expected = set()  # (basename, line, rule)
for name in sorted(os.listdir(fixtures_dir)):
    if not name.endswith((".cc", ".h")):
        continue
    with open(os.path.join(fixtures_dir, name), encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            m = MARKER.search(line.rstrip())
            if not m:
                continue
            target = line_no + 1 if m.group(1) else line_no
            for rule in m.group(2).split(","):
                expected.add((name, target, rule.strip()))

actual = {(os.path.basename(e["file"]), e["line"], e["rule"])
          for e in report["findings"]}

problems = []
for missing in sorted(expected - actual):
    problems.append("expected finding never fired: %s:%d [%s]" % missing)
for extra in sorted(actual - expected):
    problems.append("unexpected finding: %s:%d [%s]" % extra)

suppressed = [e for e in report["suppressed"]
              if os.path.basename(e["file"]) == "suppressed_ok.cc"]
if len(suppressed) != 2:
    problems.append("want exactly 2 suppressed entries in "
                    "suppressed_ok.cc, got %d" % len(suppressed))
for entry in suppressed:
    if not entry.get("reason", "").strip():
        problems.append("suppressed entry without a reason: %s:%d" %
                        (entry["file"], entry["line"]))

if problems:
    print("check_lint_fixtures: VIOLATED")
    for problem in problems:
        print("  " + problem)
    sys.exit(1)

print("check_lint_fixtures: OK — %d expected findings, %d suppressions "
      "with reasons" % (len(expected), len(suppressed)))
PYEOF

#include <chrono>
#include <cstdio>

#include "benchmark/benchmark.h"

namespace benchmark {
namespace internal {

std::vector<Registration>& Registry() {
  static std::vector<Registration> registry;
  return registry;
}

Handle* Handle::Arg(int64_t value) {
  Registry()[index_].args.push_back(value);
  return this;
}

Handle* Handle::Unit(TimeUnit unit) {
  Registry()[index_].unit = unit;
  return this;
}

Handle* Register(const std::string& name, std::function<void(State&)> fn) {
  Registry().push_back(Registration{name, std::move(fn), {}, kNanosecond});
  // Handles live forever: BENCHMARK() stores the pointer in a static.
  return new Handle(Registry().size() - 1);
}

}  // namespace internal

namespace {

void RunOne(const internal::Registration& reg,
            const std::vector<int64_t>& args) {
  constexpr size_t kIterations = 64;
  State state(args, kIterations);
  const auto start = std::chrono::steady_clock::now();
  reg.fn(state);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns_per_iter =
      std::chrono::duration<double, std::nano>(elapsed).count() /
      static_cast<double>(kIterations);
  std::string label = reg.name;
  for (int64_t arg : args) label += "/" + std::to_string(arg);
  double value = ns_per_iter;
  const char* unit = "ns";
  switch (reg.unit) {
    case kMicrosecond:
      value = ns_per_iter / 1e3;
      unit = "us";
      break;
    case kMillisecond:
      value = ns_per_iter / 1e6;
      unit = "ms";
      break;
    case kSecond:
      value = ns_per_iter / 1e9;
      unit = "s";
      break;
    case kNanosecond:
      break;
  }
  std::printf("%-48s %14.1f %s/iter (stub, %zu iters)\n", label.c_str(),
              value, unit, kIterations);
}

}  // namespace

int RunAllStubBenchmarks() {
  std::printf("[benchmark stub: google-benchmark unavailable; fixed %s]\n",
              "iteration budget, coarse wall-clock timing only");
  for (const internal::Registration& reg : internal::Registry()) {
    if (reg.args.empty()) {
      RunOne(reg, {});
    } else {
      for (int64_t arg : reg.args) RunOne(reg, {arg});
    }
  }
  return 0;
}

}  // namespace benchmark

int main() { return benchmark::RunAllStubBenchmarks(); }

// Minimal drop-in subset of the google-benchmark API, used only when
// the real library is unavailable (see OSCAR_FORCE_BENCHMARK_STUB in
// the root CMakeLists). Runs every registered benchmark for a fixed
// iteration budget and reports wall-clock per iteration — enough to
// keep bench/micro_core.cc building and producing comparable numbers,
// not a statistical replacement for the real thing.

#ifndef OSCAR_THIRD_PARTY_BENCHMARK_STUB_BENCHMARK_H_
#define OSCAR_THIRD_PARTY_BENCHMARK_STUB_BENCHMARK_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

class State {
 public:
  State(std::vector<int64_t> args, size_t iterations)
      : args_(std::move(args)), iterations_(iterations) {}

  // Marked maybe_unused so `for (auto _ : state)` does not trip
  // -Wunused-variable (same trick as the real google-benchmark).
  struct [[maybe_unused]] IterationToken {};
  struct Iterator {
    size_t remaining;
    bool operator!=(const Iterator& other) const {
      return remaining != other.remaining;
    }
    Iterator& operator++() {
      --remaining;
      return *this;
    }
    IterationToken operator*() const { return IterationToken(); }
  };
  Iterator begin() { return Iterator{iterations_}; }
  Iterator end() { return Iterator{0}; }

  int64_t range(size_t index = 0) const {
    return index < args_.size() ? args_[index] : 0;
  }

  /// Timing annotations; the stub charges paused time too (documented
  /// inaccuracy — setup-heavy benchmarks read high here).
  void PauseTiming() {}
  void ResumeTiming() {}

  size_t iterations() const { return iterations_; }

 private:
  std::vector<int64_t> args_;
  size_t iterations_;
};

template <typename T>
inline void DoNotOptimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  (void)value;
#endif
}

namespace internal {

struct Registration {
  std::string name;
  std::function<void(State&)> fn;
  std::vector<int64_t> args;  // One run per entry; one argless run if empty.
  TimeUnit unit = kNanosecond;
};

std::vector<Registration>& Registry();

class Handle {
 public:
  explicit Handle(size_t index) : index_(index) {}
  Handle* Arg(int64_t value);
  Handle* Unit(TimeUnit unit);

 private:
  size_t index_;
};

Handle* Register(const std::string& name, std::function<void(State&)> fn);

}  // namespace internal

/// Runs all registered benchmarks; returns 0.
int RunAllStubBenchmarks();

}  // namespace benchmark

#define BENCHMARK_STUB_CONCAT_IMPL(a, b) a##b
#define BENCHMARK_STUB_CONCAT(a, b) BENCHMARK_STUB_CONCAT_IMPL(a, b)
#define BENCHMARK(fn)                                             \
  static ::benchmark::internal::Handle* BENCHMARK_STUB_CONCAT(    \
      benchmark_stub_reg_, __LINE__) =                            \
      ::benchmark::internal::Register(#fn, fn)

#endif  // OSCAR_THIRD_PARTY_BENCHMARK_STUB_BENCHMARK_H_

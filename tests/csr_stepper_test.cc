// CSR stepper vs generic NetworkView stepper: the snapshot-specialized
// fast path must replay the generic algorithms move for move — same
// step kinds, same hops, same dead probes, same final routes — across
// seeds 42-45, intact and crashed. This is the per-query guard that
// lets Router::Route swap steppers by backend without moving a harness
// byte.

#include <gtest/gtest.h>

#include "churn/churn.h"
#include "core/network_view.h"
#include "core/topology_snapshot.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "routing/backtracking_router.h"
#include "routing/csr_stepper.h"
#include "routing/greedy_router.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

/// Drives both steppers over the same frozen snapshot one Step at a
/// time and requires every observable of every step to agree.
void ExpectLockstepEqual(RouteStepper& csr, RouteStepper& generic,
                         const TopologySnapshot& snap, PeerId source,
                         KeyId target, const char* label) {
  const NetworkView view(snap);
  csr.Start(view, source, target);
  generic.Start(view, source, target);
  ASSERT_EQ(csr.done(), generic.done()) << label;
  // Generous bound: both algorithms terminate well before it.
  for (size_t i = 0; i < 8 * snap.alive_count() + 64 && !csr.done(); ++i) {
    ASSERT_FALSE(generic.done()) << label << " step " << i;
    const RouteStep a = csr.Step(view);
    const RouteStep b = generic.Step(view);
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind))
        << label << " step " << i;
    ASSERT_EQ(a.from, b.from) << label << " step " << i;
    ASSERT_EQ(a.to, b.to) << label << " step " << i;
    ASSERT_EQ(a.dead_probes, b.dead_probes) << label << " step " << i;
    ASSERT_EQ(csr.current(), generic.current()) << label << " step " << i;
    ASSERT_EQ(csr.done(), generic.done()) << label << " step " << i;
  }
  ASSERT_TRUE(csr.done() && generic.done()) << label;
  const RouteResult& ra = csr.result();
  const RouteResult& rb = generic.result();
  EXPECT_EQ(ra.success, rb.success) << label;
  EXPECT_EQ(ra.hops, rb.hops) << label;
  EXPECT_EQ(ra.wasted, rb.wasted) << label;
  EXPECT_EQ(ra.terminal, rb.terminal) << label;
  EXPECT_EQ(ra.path, rb.path) << label;
}

TEST(CsrStepperTest, LockstepEqualityAcrossSeedsAndCrashLevels) {
  for (uint64_t seed = 42; seed <= 45; ++seed) {
    for (const double crash : {0.0, 0.2}) {
      Network net = LinkedNetwork(250, seed);
      if (crash > 0.0) {
        Rng crash_rng(seed ^ 0xfeedULL);
        ASSERT_TRUE(CrashFraction(&net, crash, &crash_rng).ok());
      }
      const TopologySnapshot snap(net);
      const std::vector<PeerId> alive = net.AlivePeers();
      Rng query_rng(seed * 777);
      for (int q = 0; q < 120; ++q) {
        const PeerId source =
            alive[static_cast<size_t>(query_rng.UniformInt(alive.size()))];
        const KeyId target = KeyId::FromUnit(query_rng.NextDouble());
        CsrGreedyStepper csr_greedy;
        GreedyStepper greedy;
        ExpectLockstepEqual(csr_greedy, greedy, snap, source, target,
                            "greedy");
        CsrBacktrackingStepper csr_dfs;
        BacktrackingStepper dfs;
        ExpectLockstepEqual(csr_dfs, dfs, snap, source, target,
                            "backtracking");
      }
    }
  }
}

TEST(CsrStepperTest, RouterDispatchMatchesGenericPathPerQuery) {
  // Router::Route over a snapshot (CSR path) vs over the live network
  // (generic path): whole-route equality, the harness-facing contract.
  const GreedyRouter greedy;
  const BacktrackingRouter backtracking;
  for (uint64_t seed = 42; seed <= 45; ++seed) {
    Network net = LinkedNetwork(250, seed);
    Rng crash_rng(seed ^ 0xbeefULL);
    ASSERT_TRUE(CrashFraction(&net, 0.15, &crash_rng).ok());
    const TopologySnapshot snap(net);
    const std::vector<PeerId> alive = net.AlivePeers();
    Rng query_rng(seed * 1009);
    for (int q = 0; q < 150; ++q) {
      const PeerId source =
          alive[static_cast<size_t>(query_rng.UniformInt(alive.size()))];
      const KeyId target = KeyId::FromUnit(query_rng.NextDouble());
      for (const Router* router :
           {static_cast<const Router*>(&greedy),
            static_cast<const Router*>(&backtracking)}) {
        const RouteResult live = router->Route(net, source, target);
        const RouteResult frozen = router->Route(snap, source, target);
        ASSERT_EQ(live.success, frozen.success)
            << router->name() << " seed " << seed << " query " << q;
        ASSERT_EQ(live.hops, frozen.hops)
            << router->name() << " seed " << seed << " query " << q;
        ASSERT_EQ(live.wasted, frozen.wasted)
            << router->name() << " seed " << seed << " query " << q;
        ASSERT_EQ(live.path, frozen.path)
            << router->name() << " seed " << seed << " query " << q;
      }
    }
  }
}

}  // namespace
}  // namespace oscar

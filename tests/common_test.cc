#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace oscar {
namespace {

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
  std::ostringstream os;
  os << err;
  EXPECT_EQ(os.str(), "boom");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 7;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  Result<int> bad = Status::Error("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(ResultTest, RvalueValueMoves) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StringUtilTest, StrCatAndFormats) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.0), "a1b2");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.0, 1), "0.0");
  EXPECT_EQ(FormatPercent(0.853), "85.3%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
}

TEST(StatsTest, RunningStats) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 6.0}) stats.Push(x);
  EXPECT_EQ(stats.Count(), 3u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 6.0);
  EXPECT_NEAR(stats.StdDev(), 2.0, 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 75), 4.0);
}

TEST(StatsTest, GiniExtremes) {
  EXPECT_DOUBLE_EQ(Gini({1, 1, 1, 1}), 0.0);
  // All mass on one of n: gini -> (n-1)/n.
  EXPECT_NEAR(Gini({0, 0, 0, 10}), 0.75, 1e-12);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(TablePrinterTest, AlignsColumnsAndPrintsTitle) {
  TablePrinter table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddNumericRow("curve", {0.5, 1.25}, 2);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
}

}  // namespace
}  // namespace oscar

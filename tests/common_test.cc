#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace oscar {
namespace {

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
  std::ostringstream os;
  os << err;
  EXPECT_EQ(os.str(), "boom");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 7;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  Result<int> bad = Status::Error("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(ResultTest, RvalueValueMoves) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StringUtilTest, StrCatAndFormats) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.0), "a1b2");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.0, 1), "0.0");
  EXPECT_EQ(FormatPercent(0.853), "85.3%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
}

TEST(StatsTest, RunningStats) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 6.0}) stats.Push(x);
  EXPECT_EQ(stats.Count(), 3u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 6.0);
  EXPECT_NEAR(stats.StdDev(), 2.0, 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 75), 4.0);
}

TEST(StatsTest, GiniExtremes) {
  EXPECT_DOUBLE_EQ(Gini({1, 1, 1, 1}), 0.0);
  // All mass on one of n: gini -> (n-1)/n.
  EXPECT_NEAR(Gini({0, 0, 0, 10}), 0.75, 1e-12);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(LogHistogramTest, ExactMomentsApproximatePercentiles) {
  LogHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  EXPECT_EQ(hist.Count(), 1000u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 500.5);  // Sum is exact, not bucketed.
  EXPECT_DOUBLE_EQ(hist.Min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.Max(), 1000.0);
  // Buckets are ~2.2% wide; percentiles must land inside one bucket.
  EXPECT_NEAR(hist.Percentile(50), 500.0, 500.0 * 0.03);
  EXPECT_NEAR(hist.Percentile(90), 900.0, 900.0 * 0.03);
  EXPECT_NEAR(hist.Percentile(99), 990.0, 990.0 * 0.03);
  // The extremes are exact: clamped to the recorded min/max.
  EXPECT_DOUBLE_EQ(hist.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(100), 1000.0);
}

TEST(LogHistogramTest, EmptyHistogramIsAllZero) {
  LogHistogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(50), 0.0);
}

TEST(LogHistogramTest, OutOfRangeValuesClampButCount) {
  LogHistogram hist;
  hist.Record(0.0);                          // Below kMinValue.
  hist.Record(LogHistogram::kMaxValue * 8);  // Above kMaxValue.
  EXPECT_EQ(hist.Count(), 2u);
  EXPECT_DOUBLE_EQ(hist.Min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(100), LogHistogram::kMaxValue * 8);
}

TEST(LogHistogramTest, MergeIsOrderIndependentAndLossless) {
  LogHistogram a, b, whole;
  for (int i = 1; i <= 500; ++i) {
    a.Record(static_cast<double>(i));
    whole.Record(static_cast<double>(i));
  }
  for (int i = 501; i <= 1000; ++i) {
    b.Record(static_cast<double>(i));
    whole.Record(static_cast<double>(i));
  }
  LogHistogram ab = a, ba = b;
  ab.Merge(b);
  ba.Merge(a);
  for (LogHistogram* merged : {&ab, &ba}) {
    EXPECT_EQ(merged->Count(), whole.Count());
    EXPECT_DOUBLE_EQ(merged->Mean(), whole.Mean());
    EXPECT_DOUBLE_EQ(merged->Percentile(50), whole.Percentile(50));
    EXPECT_DOUBLE_EQ(merged->Percentile(99), whole.Percentile(99));
    EXPECT_DOUBLE_EQ(merged->Max(), whole.Max());
  }
}

TEST(ThreadPoolTest, ParallelForWorkersCoversEveryIndexOnce) {
  const size_t count = 10000;
  std::vector<std::atomic<uint32_t>> hits(count);
  std::vector<std::atomic<uint64_t>> per_worker_sum(4);
  PoolGauge gauge;
  ParallelForWorkers(
      4, count,
      [&](uint32_t worker, size_t i) {
        ASSERT_LT(worker, 4u);
        hits[i].fetch_add(1, std::memory_order_relaxed);
        per_worker_sum[worker].fetch_add(i, std::memory_order_relaxed);
      },
      &gauge);
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
  // Worker-sharded accumulators merge to the full reduction: the
  // pattern serve/latency_recorder keys on.
  uint64_t total = 0;
  for (auto& sum : per_worker_sum) total += sum.load();
  EXPECT_EQ(total, static_cast<uint64_t>(count) * (count - 1) / 2);
}

TEST(ThreadPoolTest, PoolGaugeDrainsToZero) {
  PoolGauge gauge;
  ParallelForWorkers(3, 257, [](uint32_t, size_t) {}, &gauge);
  EXPECT_EQ(gauge.total(), 257u);
  EXPECT_EQ(gauge.Dispatched(), 257u);
  EXPECT_EQ(gauge.Completed(), 257u);
  EXPECT_EQ(gauge.InFlight(), 0u);
  EXPECT_EQ(gauge.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, PoolGaugeResetBetweenBatches) {
  PoolGauge gauge;
  ParallelForWorkers(2, 100, [](uint32_t, size_t) {}, &gauge);
  ParallelForWorkers(2, 40, [](uint32_t, size_t) {}, &gauge);
  EXPECT_EQ(gauge.total(), 40u);
  EXPECT_EQ(gauge.Completed(), 40u);
  EXPECT_EQ(gauge.QueueDepth(), 0u);
}

TEST(TablePrinterTest, AlignsColumnsAndPrintsTitle) {
  TablePrinter table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddNumericRow("curve", {0.5, 1.25}, 2);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
}

}  // namespace
}  // namespace oscar

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiments.h"

namespace oscar {
namespace {

class ScaleFromEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("OSCAR_BENCH_SCALE");
    unsetenv("OSCAR_BENCH_SIZE");
    unsetenv("OSCAR_BENCH_QUERIES");
    unsetenv("OSCAR_BENCH_SEED");
  }
};

TEST_F(ScaleFromEnvTest, DefaultsToSmall) {
  const ExperimentScale scale = ScaleFromEnv();
  EXPECT_EQ(scale.target_size, 600u);
  EXPECT_EQ(scale.seed, 42u);
  ASSERT_FALSE(scale.checkpoints.empty());
  EXPECT_EQ(scale.checkpoints.back(), scale.target_size);
}

TEST_F(ScaleFromEnvTest, PaperScale) {
  setenv("OSCAR_BENCH_SCALE", "paper", 1);
  const ExperimentScale scale = ScaleFromEnv();
  EXPECT_EQ(scale.target_size, 10000u);
  EXPECT_EQ(scale.checkpoints.size(), 5u);
}

TEST_F(ScaleFromEnvTest, EnvOverrides) {
  setenv("OSCAR_BENCH_SIZE", "240", 1);
  setenv("OSCAR_BENCH_QUERIES", "33", 1);
  setenv("OSCAR_BENCH_SEED", "7", 1);
  const ExperimentScale scale = ScaleFromEnv();
  EXPECT_EQ(scale.target_size, 240u);
  EXPECT_EQ(scale.queries, 33u);
  EXPECT_EQ(scale.seed, 7u);
  EXPECT_EQ(scale.checkpoints.back(), 240u);
}

ExperimentScale TinyScale() {
  ExperimentScale scale;
  scale.target_size = 150;
  scale.queries = 40;
  scale.seed = 42;
  scale.checkpoints = {150};
  return scale;
}

TEST(RunnersTest, SearchCostRowsCoverTheGrid) {
  auto rows = RunSearchCostVsSize(TinyScale(), {"constant", "realistic"},
                                  {0.0, 0.10}, OscarFactory());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.value().size(), 4u);  // 2 series x 1 checkpoint x 2 churn.
  for (const SearchCostRow& row : rows.value()) {
    EXPECT_EQ(row.network_size, 150u);
    EXPECT_GT(row.avg_cost, 0.0);
    EXPECT_DOUBLE_EQ(row.success_rate, 1.0);
  }
}

TEST(RunnersTest, OverlayComparisonProducesEveryCell) {
  auto rows = RunOverlayComparison(
      TinyScale(),
      {{"oscar", OscarFactory()}, {"chord", ChordFactory()}},
      {"uniform", "gnutella"});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.value().size(), 4u);
  for (const ComparisonRow& row : rows.value()) {
    EXPECT_GT(row.avg_cost, 0.0);
    EXPECT_GT(row.utilization, 0.0);
  }
}

TEST(RunnersTest, DegreeLoadReportsCurves) {
  auto rows =
      RunDegreeLoad(TinyScale(), {"constant"}, OscarFactory(), "oscar");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.value().size(), 1u);
  const DegreeLoadRow& row = rows.value().front();
  EXPECT_EQ(row.overlay_name, "oscar");
  EXPECT_EQ(row.report.sorted_relative_load.size(), 150u);
  EXPECT_GT(row.report.utilization, 0.0);
}

TEST(RunnersTest, UnknownDegreeNamePropagatesError) {
  auto rows = RunSearchCostVsSize(TinyScale(), {"bogus"}, {0.0},
                                  OscarFactory());
  EXPECT_FALSE(rows.ok());
}

}  // namespace
}  // namespace oscar

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.h"
#include "degree/constant_degree.h"
#include "degree/spiky_degree.h"
#include "degree/stepped_degree.h"
#include "keyspace/gnutella_distribution.h"
#include "keyspace/key_distribution.h"

namespace oscar {
namespace {

TEST(SpikyDegreeTest, MeanIsExactly27) {
  const auto dist = SpikyDegreeDistribution::Paper();
  double mean = 0.0, total = 0.0;
  for (const auto& [degree, p] : dist.Pmf()) {
    mean += p * degree;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(mean, 27.0, 1e-9);
}

TEST(SpikyDegreeTest, SpikeAt27DominatesAndTailIsHeavy) {
  const auto dist = SpikyDegreeDistribution::Paper();
  double p26 = 0, p27 = 0, p28 = 0, tail = 0;
  for (const auto& [degree, p] : dist.Pmf()) {
    if (degree == 26) p26 = p;
    if (degree == 27) p27 = p;
    if (degree == 28) p28 = p;
    if (degree > 64) tail += p;
  }
  EXPECT_GT(p27, 3 * p26);
  EXPECT_GT(p27, 3 * p28);
  EXPECT_GT(tail, 1e-3);
}

TEST(SpikyDegreeTest, SamplesStayInSupport) {
  const auto dist = SpikyDegreeDistribution::Paper();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const DegreeCaps caps = dist.Sample(&rng);
    EXPECT_GE(caps.max_in, 1u);
    EXPECT_LE(caps.max_in, 128u);
    EXPECT_EQ(caps.max_in, caps.max_out);
  }
}

TEST(SteppedDegreeTest, MeanIs27) {
  SteppedDegreeDistribution dist;
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += dist.Sample(&rng).max_in;
  EXPECT_NEAR(sum / n, 27.0, 0.2);
}

TEST(ConstantDegreeTest, RejectsZeroCaps) {
  EXPECT_FALSE(ConstantDegreeDistribution::Make(0, 5).ok());
  EXPECT_FALSE(ConstantDegreeDistribution::Make(5, 0).ok());
  ASSERT_TRUE(ConstantDegreeDistribution::Make(3, 4).ok());
}

TEST(GnutellaKeysTest, SkewConcentratesMass) {
  auto dist = GnutellaKeyDistribution::Make();
  ASSERT_TRUE(dist.ok());
  Rng rng(11);
  // Measure mass landing in the densest 10% of the ring via histogram.
  std::vector<int> bins(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = dist.value().Sample(&rng).unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    ++bins[static_cast<size_t>(u * 100)];
  }
  std::sort(bins.begin(), bins.end());
  int top10 = 0;
  for (size_t i = 90; i < 100; ++i) top10 += bins[i];
  // Uniform would put ~10% in the top decile; Gnutella-like skew puts
  // several times that.
  EXPECT_GT(static_cast<double>(top10) / n, 0.35);
}

TEST(MakeKeyDistributionTest, KnownAndUnknownNames) {
  for (const char* name : {"uniform", "gnutella", "clustered"}) {
    auto dist = MakeKeyDistribution(name);
    ASSERT_TRUE(dist.ok()) << name;
    EXPECT_EQ(dist.value()->name(), name);
  }
  EXPECT_FALSE(MakeKeyDistribution("zipf").ok());
}

TEST(MakePaperDegreeDistributionTest, KnownAndUnknownNames) {
  for (const char* name : {"constant", "realistic", "stepped"}) {
    auto dist = MakePaperDegreeDistribution(name);
    ASSERT_TRUE(dist.ok()) << name;
    EXPECT_EQ(dist.value()->name(), name);
  }
  EXPECT_FALSE(MakePaperDegreeDistribution("powerlaw").ok());
}

}  // namespace
}  // namespace oscar

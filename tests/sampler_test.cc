#include <gtest/gtest.h>

#include "overlay/kleinberg/kleinberg_overlay.h"
#include "sampling/oracle_sampler.h"
#include "sampling/random_walk_sampler.h"
#include "sampling/size_estimator.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

TEST(OracleSamplerTest, SamplesInsideSegment) {
  Network net = LinkedNetwork(200, 1);
  OracleSegmentSampler sampler;
  Rng rng(2);
  const KeyId from = KeyId::FromUnit(0.2), to = KeyId::FromUnit(0.6);
  for (int i = 0; i < 100; ++i) {
    auto sample = sampler.SampleInSegment(net, 0, from, to, &rng);
    ASSERT_TRUE(sample.ok());
    EXPECT_TRUE(
        InClockwiseSegment(net.key(sample.value().peer), from, to));
  }
}

TEST(OracleSamplerTest, EmptySegmentFails) {
  Network net = LinkedNetwork(10, 3);
  OracleSegmentSampler sampler;
  Rng rng(4);
  const KeyId point = KeyId::FromUnit(0.5);
  EXPECT_FALSE(sampler.SampleInSegment(net, 0, point, point, &rng).ok());
}

TEST(RandomWalkSamplerTest, SamplesInsideSegmentIncludingSeam) {
  Network net = LinkedNetwork(300, 5);
  RandomWalkSegmentSampler sampler;
  Rng rng(6);
  const PeerId origin = net.AlivePeers().front();
  // A seam-wrapping segment.
  const KeyId from = KeyId::FromUnit(0.9), to = KeyId::FromUnit(0.2);
  for (int i = 0; i < 50; ++i) {
    auto sample = sampler.SampleInSegment(net, origin, from, to, &rng);
    ASSERT_TRUE(sample.ok());
    EXPECT_TRUE(
        InClockwiseSegment(net.key(sample.value().peer), from, to));
    EXPECT_GT(sample.value().steps, 0u);
  }
}

TEST(RandomWalkSamplerTest, TinySegmentFallsBackToRouting) {
  Network net = LinkedNetwork(300, 7);
  RandomWalkSegmentSampler sampler;
  Rng rng(8);
  const PeerId origin = net.AlivePeers().front();
  // Segment holding exactly one peer: the successor region of some peer.
  const Ring& ring = net.ring();
  const KeyId from = KeyId::FromRaw(ring.at(42).key_raw);
  const KeyId to = KeyId::FromRaw(ring.at(43).key_raw);
  ASSERT_EQ(ring.CountInSegment(from, to), 1u);
  auto sample = sampler.SampleInSegment(net, origin, from, to, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().peer, ring.at(42).id);
}

TEST(SizeEstimatorTest, OracleIsExact) {
  Network net = LinkedNetwork(128, 9);
  Rng rng(10);
  OracleSizeEstimator oracle;
  EXPECT_DOUBLE_EQ(oracle.Estimate(net, 0, &rng), 128.0);
}

TEST(SizeEstimatorTest, GapEstimatorIsRightOrderOfMagnitudeOnUniform) {
  Network net = LinkedNetwork(1000, 11);
  Rng rng(12);
  GapSizeEstimator gap(16);
  // Average over peers: individually noisy, collectively near N.
  double sum = 0.0;
  const std::vector<PeerId> peers = net.AlivePeers();
  for (size_t i = 0; i < peers.size(); i += 10) {
    sum += gap.Estimate(net, peers[i], &rng);
  }
  const double mean = sum / (static_cast<double>(peers.size()) / 10.0);
  EXPECT_GT(mean, 250.0);
  EXPECT_LT(mean, 4000.0);
}

TEST(SizeEstimatorTest, NamesIdentifyVariants) {
  EXPECT_EQ(OracleSizeEstimator().name(), "oracle");
  EXPECT_EQ(GapSizeEstimator(8).name(), "gap(w=8)");
}

}  // namespace
}  // namespace oscar

#include <gtest/gtest.h>

#include "churn/churn.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "routing/backtracking_router.h"
#include "routing/greedy_router.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

TEST(GreedyRouterTest, AlwaysReachesOwnerOnHealthyNetwork) {
  Network net = LinkedNetwork(200, 1);
  GreedyRouter router;
  Rng rng(2);
  const std::vector<PeerId> peers = net.AlivePeers();
  for (int q = 0; q < 200; ++q) {
    const KeyId key = KeyId::FromUnit(rng.NextDouble());
    const PeerId source =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    const RouteResult route = router.Route(net, source, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.terminal, *net.OwnerOf(key));
    EXPECT_EQ(route.wasted, 0u);  // Nothing is dead.
    EXPECT_EQ(route.path.front(), source);
    EXPECT_EQ(route.path.back(), route.terminal);
    EXPECT_EQ(route.path.size(), static_cast<size_t>(route.hops) + 1);
  }
}

TEST(GreedyRouterTest, RouteToOwnKeyIsFree) {
  Network net = LinkedNetwork(50, 3);
  GreedyRouter router;
  const PeerId source = net.AlivePeers().front();
  const RouteResult route = router.Route(net, source, net.key(source));
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.hops, 0u);
}

TEST(BacktrackingRouterTest, SurvivesHeavyCrashes) {
  Network net = LinkedNetwork(300, 4);
  Rng churn_rng(5);
  ASSERT_TRUE(CrashFraction(&net, 0.33, &churn_rng).ok());
  BacktrackingRouter router;
  Rng rng(6);
  const std::vector<PeerId> peers = net.AlivePeers();
  for (int q = 0; q < 200; ++q) {
    const KeyId key = KeyId::FromUnit(rng.NextDouble());
    const PeerId source =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    const RouteResult route = router.Route(net, source, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.terminal, *net.OwnerOf(key));
  }
}

TEST(BacktrackingRouterTest, ChargesWastedTrafficUnderChurn) {
  Network net = LinkedNetwork(300, 7);
  Rng churn_rng(8);
  ASSERT_TRUE(CrashFraction(&net, 0.33, &churn_rng).ok());
  BacktrackingRouter router;
  Rng rng(9);
  const std::vector<PeerId> peers = net.AlivePeers();
  uint64_t wasted = 0;
  for (int q = 0; q < 100; ++q) {
    const PeerId source =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    wasted += router.Route(net, source, KeyId::FromUnit(rng.NextDouble()))
                  .wasted;
  }
  // A third of all long links dangle; some queries must probe them.
  EXPECT_GT(wasted, 0u);
}

}  // namespace
}  // namespace oscar

// TopologySnapshot / NetworkView equivalence: a frozen snapshot must
// answer every read query exactly like the live Network it froze, a
// Restore() must be structurally indistinguishable from the original,
// and whole routes driven over a snapshot view must match routes over
// the live network hop for hop (seeds 42-45) — the contract that lets
// churn experiments and scenario replays swap deep copies for
// snapshot restores without moving a single harness byte.

#include <gtest/gtest.h>

#include "churn/churn.h"
#include "core/network_view.h"
#include "core/topology_snapshot.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "routing/backtracking_router.h"
#include "routing/greedy_router.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

std::vector<PeerId> ToVector(PeerSpan span) {
  return std::vector<PeerId>(span.begin(), span.end());
}

/// Every read the view exposes, compared between the two backends.
void ExpectViewsAgree(const Network& net, const TopologySnapshot& snap) {
  const NetworkView live(net);
  const NetworkView frozen(snap);
  ASSERT_EQ(live.size(), frozen.size());
  ASSERT_EQ(live.alive_count(), frozen.alive_count());
  EXPECT_EQ(live.AlivePeers(), frozen.AlivePeers());
  for (PeerId id = 0; id < net.size(); ++id) {
    EXPECT_EQ(live.key(id), frozen.key(id)) << "peer " << id;
    EXPECT_EQ(live.alive(id), frozen.alive(id)) << "peer " << id;
    EXPECT_EQ(live.caps(id).max_in, frozen.caps(id).max_in) << "peer " << id;
    EXPECT_EQ(live.caps(id).max_out, frozen.caps(id).max_out)
        << "peer " << id;
    EXPECT_EQ(live.SuccessorOf(id), frozen.SuccessorOf(id)) << "peer " << id;
    EXPECT_EQ(live.PredecessorOf(id), frozen.PredecessorOf(id))
        << "peer " << id;
    EXPECT_EQ(ToVector(live.OutLinks(id)), ToVector(frozen.OutLinks(id)))
        << "peer " << id;
    EXPECT_EQ(ToVector(live.InLinks(id)), ToVector(frozen.InLinks(id)))
        << "peer " << id;
    std::vector<PeerId> live_neighbors, frozen_neighbors;
    live.AppendNeighbors(id, &live_neighbors);
    frozen.AppendNeighbors(id, &frozen_neighbors);
    EXPECT_EQ(live_neighbors, frozen_neighbors) << "peer " << id;
    std::vector<PeerId> live_walk, frozen_walk;
    live.AppendWalkNeighbors(id, &live_walk);
    frozen.AppendWalkNeighbors(id, &frozen_walk);
    EXPECT_EQ(live_walk, frozen_walk) << "peer " << id;
  }
  // Ring queries: ownership and clockwise order statistics.
  for (int i = 0; i < 64; ++i) {
    const KeyId probe = KeyId::FromUnit(i / 64.0);
    const KeyId to = KeyId::FromUnit(i / 64.0 + 0.3);
    EXPECT_EQ(live.OwnerOf(probe), frozen.OwnerOf(probe));
    EXPECT_EQ(live.ring().CountInSegment(probe, to),
              frozen.ring().CountInSegment(probe, to));
    EXPECT_EQ(live.ring().NthInSegment(probe, to, 3),
              frozen.ring().NthInSegment(probe, to, 3));
    EXPECT_EQ(live.ring().SuccessorOfKey(probe),
              frozen.ring().SuccessorOfKey(probe));
  }
}

TEST(TopologySnapshotTest, ViewOverSnapshotMatchesIntactNetwork) {
  const Network net = LinkedNetwork(300, 42);
  ExpectViewsAgree(net, TopologySnapshot(net));
}

TEST(TopologySnapshotTest, ViewOverSnapshotMatchesCrashedNetwork) {
  Network net = LinkedNetwork(300, 42);
  // Crashes leave dangling out-links to dead peers; the snapshot must
  // preserve them (routers discover them as dead probes).
  Rng rng(7);
  ASSERT_TRUE(CrashFraction(&net, 0.25, &rng).ok());
  ExpectViewsAgree(net, TopologySnapshot(net));
}

/// Peer-table + ring structural equality, field by field.
void ExpectStructurallyEqual(const Network& net, const Network& restored) {
  ASSERT_EQ(net.size(), restored.size());
  ASSERT_EQ(net.alive_count(), restored.alive_count());
  const auto to_vec = [](PeerSpan span) {
    return std::vector<PeerId>(span.begin(), span.end());
  };
  for (PeerId id = 0; id < net.size(); ++id) {
    EXPECT_EQ(net.key(id), restored.key(id)) << "peer " << id;
    EXPECT_EQ(net.caps(id).max_in, restored.caps(id).max_in)
        << "peer " << id;
    EXPECT_EQ(net.caps(id).max_out, restored.caps(id).max_out)
        << "peer " << id;
    EXPECT_EQ(net.alive(id), restored.alive(id)) << "peer " << id;
    EXPECT_EQ(to_vec(net.OutLinks(id)), to_vec(restored.OutLinks(id)))
        << "peer " << id;
    EXPECT_EQ(to_vec(net.InLinks(id)), to_vec(restored.InLinks(id)))
        << "peer " << id;
    EXPECT_EQ(net.in_degree(id), restored.in_degree(id)) << "peer " << id;
  }
  for (size_t pos = 0; pos < net.ring().size(); ++pos) {
    EXPECT_EQ(net.ring().at(pos).id, restored.ring().at(pos).id)
        << "ring position " << pos;
    EXPECT_EQ(net.ring().at(pos).key_raw, restored.ring().at(pos).key_raw)
        << "ring position " << pos;
  }
}

TEST(TopologySnapshotTest, RestoreIsStructurallyIdentical) {
  Network net = LinkedNetwork(250, 43);
  Rng rng(9);
  ASSERT_TRUE(CrashFraction(&net, 0.1, &rng).ok());
  const TopologySnapshot snap(net);
  Network restored = snap.Restore();
  ExpectStructurallyEqual(net, restored);
  // The restored network mutates independently of the frozen source:
  // crashing it must not disturb the snapshot or a second restore.
  const PeerId victim = restored.AlivePeers().front();
  restored.Crash(victim);
  EXPECT_TRUE(snap.alive(victim));
  EXPECT_TRUE(snap.Restore().alive(victim));
}

TEST(TopologySnapshotTest, DeltaRestoreMatchesFullRestoreAfterCrashes) {
  // snapshot + crash set, restored through the journaled delta path,
  // must be structurally identical to a fresh full Restore() — the
  // contract fig2's per-crash-level scratch recycling rides on.
  Network net = LinkedNetwork(250, 44);
  const TopologySnapshot snap(net);
  Network scratch;
  snap.RestoreInto(&scratch);  // First restore: full rebuild, arms journal.
  ExpectStructurallyEqual(net, scratch);
  // Crash an escalating fraction per round; each RestoreInto must heal
  // the scratch back to the frozen state via the journal alone.
  for (const double crash : {0.1, 0.33, 0.05}) {
    Rng rng(static_cast<uint64_t>(crash * 1000) + 17);
    ASSERT_TRUE(CrashFraction(&scratch, crash, &rng).ok());
    snap.RestoreInto(&scratch);
    ExpectStructurallyEqual(net, scratch);
  }
}

TEST(TopologySnapshotTest, DeltaRestoreHealsJoinsAndRewiredLinks) {
  // Scenario-style mutation: crashes AND joins with freshly built
  // links (which append in-links to old peers). The delta restore must
  // drop the joined peers and repair every old peer their links
  // touched.
  Network net = LinkedNetwork(200, 45);
  const TopologySnapshot snap(net);
  Network scratch;
  snap.RestoreInto(&scratch);
  Rng rng(99);
  ASSERT_TRUE(CrashFraction(&scratch, 0.2, &rng).ok());
  KleinbergOverlay overlay;
  for (int j = 0; j < 20; ++j) {
    const PeerId id =
        scratch.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
    ASSERT_TRUE(overlay.BuildLinks(&scratch, id, &rng).ok());
  }
  snap.RestoreInto(&scratch);
  ExpectStructurallyEqual(net, scratch);
}

TEST(TopologySnapshotTest, DeltaRestoreHealsBatchRewire) {
  // The checkpoint-rewiring batch mutators must journal exactly the
  // rows they change: a global ClearAllLongLinks + ApplyLinkPlan cycle
  // on a journaled scratch, followed by RestoreInto, must heal back to
  // the frozen state. A forgotten Touch in either mutator corrupts this
  // silently — the delta path would skip the dirty row.
  Network net = LinkedNetwork(250, 48);
  const TopologySnapshot snap(net);
  Network scratch;
  snap.RestoreInto(&scratch);
  ExpectStructurallyEqual(net, scratch);
  Rng rng(123);
  for (int round = 0; round < 3; ++round) {
    // A full batch rewire, the shape Simulation::RewireAllPeers drives:
    // clear every long link, then apply fresh plans in ring order.
    const std::vector<PeerId> alive = scratch.AlivePeers();
    scratch.ClearAllLongLinks();
    for (PeerId id : alive) {
      std::vector<LinkCandidate> candidates;
      for (int c = 0; c < 6; ++c) {
        LinkCandidate candidate;
        candidate.primary = alive[static_cast<size_t>(
            rng.UniformInt(alive.size()))];
        candidate.alternate = alive[static_cast<size_t>(
            rng.UniformInt(alive.size()))];
        candidates.push_back(candidate);
      }
      scratch.ApplyLinkPlan(id, candidates, /*budget=*/4);
    }
    snap.RestoreInto(&scratch);
    ExpectStructurallyEqual(net, scratch);
  }
}

TEST(TopologySnapshotTest, ClearAllLongLinksMatchesPerPeerClear) {
  // The batched clear must leave the network exactly where per-peer
  // ClearLongLinks calls would — including dangling links to dead
  // peers, which only the owners' rows record.
  Network a = LinkedNetwork(200, 49);
  Rng rng(7);
  ASSERT_TRUE(CrashFraction(&a, 0.2, &rng).ok());
  Network b = TopologySnapshot(a).Restore();
  for (PeerId id : a.AlivePeers()) a.ClearLongLinks(id);
  b.ClearAllLongLinks();
  ExpectStructurallyEqual(a, b);
}

TEST(TopologySnapshotTest, DeltaRestoreFallsBackAcrossSnapshots) {
  // A scratch restored from snapshot A must be fully rebuilt when
  // restored from snapshot B — the journal only speaks for A.
  Network a = LinkedNetwork(150, 46);
  Network b = LinkedNetwork(180, 47);
  const TopologySnapshot snap_a(a);
  const TopologySnapshot snap_b(b);
  Network scratch;
  snap_a.RestoreInto(&scratch);
  ExpectStructurallyEqual(a, scratch);
  snap_b.RestoreInto(&scratch);
  ExpectStructurallyEqual(b, scratch);
  snap_a.RestoreInto(&scratch);
  ExpectStructurallyEqual(a, scratch);
}

TEST(TopologySnapshotTest, RouteOverSnapshotMatchesLiveNetwork) {
  const GreedyRouter greedy;
  const BacktrackingRouter backtracking;
  for (uint64_t seed = 42; seed <= 45; ++seed) {
    Network net = LinkedNetwork(300, seed);
    Rng crash_rng(seed ^ 0xabcdef12345ULL);
    ASSERT_TRUE(CrashFraction(&net, 0.15, &crash_rng).ok());
    const TopologySnapshot snap(net);
    Rng query_rng(seed * 1000003);
    const std::vector<PeerId> alive = net.AlivePeers();
    for (int q = 0; q < 200; ++q) {
      const PeerId source =
          alive[static_cast<size_t>(query_rng.UniformInt(alive.size()))];
      const KeyId target = KeyId::FromUnit(query_rng.NextDouble());
      for (const Router* router :
           {static_cast<const Router*>(&greedy),
            static_cast<const Router*>(&backtracking)}) {
        const RouteResult live = router->Route(net, source, target);
        const RouteResult frozen = router->Route(snap, source, target);
        ASSERT_EQ(live.success, frozen.success)
            << router->name() << " seed " << seed << " query " << q;
        ASSERT_EQ(live.hops, frozen.hops)
            << router->name() << " seed " << seed << " query " << q;
        ASSERT_EQ(live.wasted, frozen.wasted)
            << router->name() << " seed " << seed << " query " << q;
        ASSERT_EQ(live.path, frozen.path)
            << router->name() << " seed " << seed << " query " << q;
      }
    }
  }
}

TEST(TopologySnapshotTest, WideOffsetsRoundTripAndMatchNarrow) {
  // The 64-bit CSR path can't be exercised by materializing >4 billion
  // edges, so lower the promotion threshold until this network's edge
  // total crosses it — the synthetic stand-in for a near-overflow edge
  // count. Everything observable (reads, routes, restores) must be
  // identical between a wide and a narrow snapshot of the same network.
  Network net = LinkedNetwork(300, 44);
  Rng rng(21);
  ASSERT_TRUE(CrashFraction(&net, 0.1, &rng).ok());
  size_t total_edges = 0;
  for (PeerId id = 0; id < net.size(); ++id) {
    total_edges += net.OutLinks(id).size();
  }
  ASSERT_GT(total_edges, 64u);

  const TopologySnapshot narrow(net);
  ASSERT_FALSE(narrow.wide_offsets());
  const uint64_t prev = TopologySnapshot::SetWideOffsetThresholdForTest(64);
  const TopologySnapshot wide(net);
  TopologySnapshot::SetWideOffsetThresholdForTest(prev);
  ASSERT_TRUE(wide.wide_offsets());

  // Same CSR content through the dual-width offset view.
  ExpectViewsAgree(net, wide);
  for (PeerId id = 0; id < net.size(); ++id) {
    EXPECT_EQ(ToVector(narrow.OutLinks(id)), ToVector(wide.OutLinks(id)))
        << "peer " << id;
    EXPECT_EQ(ToVector(narrow.InLinks(id)), ToVector(wide.InLinks(id)))
        << "peer " << id;
  }

  // Full restore, then a delta restore after mutations, off the wide
  // snapshot — both must reproduce the original network exactly.
  Network restored = wide.Restore();
  ExpectStructurallyEqual(net, restored);
  Rng churn_rng(22);
  ASSERT_TRUE(CrashFraction(&restored, 0.2, &churn_rng).ok());
  restored.Join(KeyId::FromUnit(0.123), DegreeCaps{4, 4});
  wide.RestoreInto(&restored);
  ExpectStructurallyEqual(net, restored);
}

}  // namespace
}  // namespace oscar

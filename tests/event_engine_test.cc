#include "sim/event_engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace oscar {
namespace {

TEST(EventEngineTest, DispatchesInTimeOrder) {
  EventEngine engine;
  std::vector<int> order;
  engine.ScheduleAt(30.0, [&order] { order.push_back(3); });
  engine.ScheduleAt(10.0, [&order] { order.push_back(1); });
  engine.ScheduleAt(20.0, [&order] { order.push_back(2); });
  EXPECT_EQ(engine.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 30.0);
}

TEST(EventEngineTest, TiesBreakInScheduleOrder) {
  EventEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    engine.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventEngineTest, ClockIsMonotonicAndClampsThePast) {
  EventEngine engine;
  double seen = -1.0;
  engine.ScheduleAt(50.0, [&engine, &seen] {
    // Scheduling behind the clock fires immediately, never rewinds.
    engine.ScheduleAt(10.0, [&engine, &seen] { seen = engine.now(); });
  });
  engine.Run();
  EXPECT_DOUBLE_EQ(seen, 50.0);
}

TEST(EventEngineTest, HandlersScheduleFollowUps) {
  EventEngine engine;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 5) engine.ScheduleAfter(1.0, tick);
  };
  engine.ScheduleAfter(1.0, tick);
  EXPECT_EQ(engine.Run(), 5u);
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(EventEngineTest, CancelPreventsDispatch) {
  EventEngine engine;
  int fired = 0;
  const EventId id = engine.ScheduleAt(1.0, [&fired] { ++fired; });
  engine.ScheduleAt(2.0, [&fired] { ++fired; });
  EXPECT_TRUE(engine.Cancel(id));
  EXPECT_FALSE(engine.Cancel(id));  // Already cancelled.
  EXPECT_EQ(engine.Run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventEngineTest, RunHonorsMaxEvents) {
  EventEngine engine;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    engine.ScheduleAt(static_cast<double>(i), [&fired] { ++fired; });
  }
  EXPECT_EQ(engine.Run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(engine.pending(), 6u);
  EXPECT_EQ(engine.Run(), 6u);
}

TEST(EventEngineTest, RunUntilStopsAtTheFence) {
  EventEngine engine;
  std::vector<double> seen;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    engine.ScheduleAt(t, [&engine, &seen] { seen.push_back(engine.now()); });
  }
  EXPECT_EQ(engine.RunUntil(2.5), 2u);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);  // Clock advances to the fence.
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(engine.Run(), 2u);
}

TEST(EventEngineTest, RunUntilSkipsCancelledHead) {
  EventEngine engine;
  int fired = 0;
  const EventId head = engine.ScheduleAt(1.0, [&fired] { ++fired; });
  engine.ScheduleAt(2.0, [&fired] { ++fired; });
  engine.Cancel(head);
  EXPECT_EQ(engine.RunUntil(3.0), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventEngineTest, NegativeDelayClampsToNow) {
  EventEngine engine;
  engine.ScheduleAt(7.0, [] {});
  engine.Run();
  double fired_at = -1.0;
  engine.ScheduleAfter(-5.0, [&engine, &fired_at] { fired_at = engine.now(); });
  engine.Run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

}  // namespace
}  // namespace oscar

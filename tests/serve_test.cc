#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/latency_recorder.h"
#include "serve/load_generator.h"
#include "serve/token_bucket.h"
#include "sim/scenario.h"

namespace oscar {
namespace {

// ---- TokenBucket ---------------------------------------------------------

TEST(TokenBucketTest, UnlimitedBucketNeverDelays) {
  TokenBucket bucket(0.0, 64.0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_DOUBLE_EQ(bucket.AcquireAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(bucket.AcquireAt(17.5), 17.5);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
}

TEST(TokenBucketTest, DrainedBucketPushesArrivalsToRefill) {
  // 1000/s = 1 token per ms, burst 1: back-to-back demand at t=0 is
  // released at exactly 0, 1, 2, ... ms.
  TokenBucket bucket(1000.0, 1.0);
  EXPECT_FALSE(bucket.unlimited());
  EXPECT_DOUBLE_EQ(bucket.AcquireAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(bucket.AcquireAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(bucket.AcquireAt(0.0), 2.0);
}

TEST(TokenBucketTest, BurstPassesThroughIntact) {
  TokenBucket bucket(1000.0, 4.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(bucket.AcquireAt(0.0), 0.0) << "burst token " << i;
  }
  EXPECT_GT(bucket.AcquireAt(0.0), 0.0);
}

TEST(TokenBucketTest, TryAcquireRespectsRefill) {
  TokenBucket bucket(1000.0, 1.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.5));  // Only half a token banked.
  EXPECT_TRUE(bucket.TryAcquire(1.5));
}

TEST(TokenBucketTest, ArrivalsSortedAndRateBounded) {
  const size_t count = 5000;
  const double rate = 8000.0, burst = 64.0;
  const std::vector<double> arrivals =
      GenerateArrivalsMs(count, rate, burst, 42);
  ASSERT_EQ(arrivals.size(), count);
  EXPECT_GE(arrivals.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  // The bucket caps issuance at burst + rate * t tokens by time t, so
  // the last arrival cannot land earlier than the sustained-rate bound.
  const double rate_per_ms = rate / 1000.0;
  const double min_last_ms =
      (static_cast<double>(count) - burst) / rate_per_ms;
  EXPECT_GE(arrivals.back(), min_last_ms);
}

TEST(TokenBucketTest, ArrivalsDeterministicPerSeed) {
  const std::vector<double> a = GenerateArrivalsMs(1000, 4000.0, 32.0, 7);
  const std::vector<double> b = GenerateArrivalsMs(1000, 4000.0, 32.0, 7);
  const std::vector<double> c = GenerateArrivalsMs(1000, 4000.0, 32.0, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TokenBucketTest, RateZeroMeansFirehose) {
  const std::vector<double> arrivals = GenerateArrivalsMs(100, 0.0, 64.0, 42);
  ASSERT_EQ(arrivals.size(), 100u);
  for (double t : arrivals) EXPECT_DOUBLE_EQ(t, 0.0);
}

// ---- Admission policies --------------------------------------------------

TEST(AdmissionTest, CatalogBuildsEveryPolicy) {
  AdmissionOptions options;
  for (const std::string& name : AdmissionCatalog()) {
    auto policy = MakeAdmissionPolicy(name, options);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ(policy.value()->name(), name);
  }
}

TEST(AdmissionTest, UnknownPolicyNamesCatalog) {
  auto policy = MakeAdmissionPolicy("bogus", AdmissionOptions{});
  ASSERT_FALSE(policy.ok());
  EXPECT_NE(policy.status().message().find("drop-tail"), std::string::npos);
}

TEST(AdmissionTest, NoneAdmitsEverythingForever) {
  auto policy = MakeAdmissionPolicy("none", AdmissionOptions{}).value();
  EXPECT_TRUE(policy->Admit(1u << 20, 1u << 20));
  EXPECT_TRUE(std::isinf(policy->QueueTimeoutMs()));
}

TEST(AdmissionTest, DropTailBoundsTheQueue) {
  AdmissionOptions options;
  options.queue_capacity = 8;
  auto policy = MakeAdmissionPolicy("drop-tail", options).value();
  EXPECT_TRUE(policy->Admit(7, 0));
  EXPECT_FALSE(policy->Admit(8, 0));
  EXPECT_TRUE(std::isinf(policy->QueueTimeoutMs()));
}

TEST(AdmissionTest, TimeoutShedsByDeadlineOnly) {
  AdmissionOptions options;
  options.timeout_ms = 12.5;
  auto policy = MakeAdmissionPolicy("timeout", options).value();
  EXPECT_TRUE(policy->Admit(1u << 20, 1u << 20));
  EXPECT_DOUBLE_EQ(policy->QueueTimeoutMs(), 12.5);
}

TEST(AdmissionTest, PeerCapBoundsPerOwnerInFlight) {
  AdmissionOptions options;
  options.per_peer_cap = 4;
  auto policy = MakeAdmissionPolicy("peer-cap", options).value();
  EXPECT_TRUE(policy->Admit(1u << 20, 3));
  EXPECT_FALSE(policy->Admit(0, 4));
}

// ---- LatencyRecorder -----------------------------------------------------

TEST(LatencyRecorderTest, MergeMatchesSingleShard) {
  LatencyRecorder sharded(4);
  LatencyRecorder single(1);
  for (int i = 1; i <= 1000; ++i) {
    const double v = static_cast<double>(i);
    sharded.shard(i % 4).Record(v);
    single.shard(0).Record(v);
  }
  const LatencyReport a = sharded.Report();
  const LatencyReport b = single.Report();
  EXPECT_EQ(a.count, 1000u);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.p50_ms, b.p50_ms);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_DOUBLE_EQ(a.max_ms, b.max_ms);
  // Log buckets are ~2.2% wide; the digest must land inside that.
  EXPECT_NEAR(a.p50_ms, 500.0, 500.0 * 0.03);
  EXPECT_NEAR(a.p99_ms, 990.0, 990.0 * 0.03);
  EXPECT_DOUBLE_EQ(a.max_ms, 1000.0);
}

// ---- LoadGenerator -------------------------------------------------------

GrownTopology GrowSmall(uint64_t seed) {
  ScenarioOptions base;
  base.network_size = 200;
  base.seed = seed;
  auto grown = GrowScenarioTopology(base);
  EXPECT_TRUE(grown.ok()) << grown.status().message();
  return std::move(grown).value();
}

ServeOptions SmallServeOptions(uint32_t threads) {
  ServeOptions options;
  options.lookups = 2000;
  options.seed = 42;
  options.threads = threads;
  options.offered_rates_per_s = {0.0, 4000.0};
  options.policies = {"none", "drop-tail", "timeout", "peer-cap"};
  options.concurrency = 16;
  options.admission.queue_capacity = 64;
  options.admission.timeout_ms = 25.0;
  options.admission.per_peer_cap = 8;
  return options;
}

void ExpectCellInvariants(const ServeCellReport& cell) {
  EXPECT_EQ(cell.submitted, cell.admitted + cell.dropped) << cell.policy;
  EXPECT_EQ(cell.admitted, cell.completed + cell.shed) << cell.policy;
  EXPECT_LE(cell.succeeded, cell.completed) << cell.policy;
  EXPECT_EQ(cell.latency.count, cell.completed) << cell.policy;
}

TEST(LoadGeneratorTest, SweepInvariantsAndNoneLosesNothing) {
  const GrownTopology grown = GrowSmall(42);
  LoadGenerator generator(grown.snapshot, SmallServeOptions(1));
  auto report = generator.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  const ServeReport& r = report.value();

  EXPECT_EQ(r.routed, 2000u);
  EXPECT_GT(r.route_success_rate, 0.9);
  EXPECT_GT(r.mean_messages, 0.0);
  ASSERT_EQ(r.cells.size(), 8u);  // 2 rates x 4 policies.
  EXPECT_EQ(r.total_submitted, 8u * 2000u);

  for (const ServeCellReport& cell : r.cells) {
    ExpectCellInvariants(cell);
    EXPECT_EQ(cell.submitted, 2000u);
    if (cell.policy == "none") {
      EXPECT_EQ(cell.dropped, 0u);
      EXPECT_EQ(cell.shed, 0u);
      EXPECT_EQ(cell.completed, 2000u);
    }
  }

  // The t=0 firehose against a bounded queue must actually drop, and
  // deadline shedding must actually shed — otherwise the sweep is not
  // exercising the policies at all.
  const ServeCellReport& firehose_drop_tail = r.cells[1];
  EXPECT_EQ(firehose_drop_tail.policy, "drop-tail");
  EXPECT_DOUBLE_EQ(firehose_drop_tail.offered_per_s, 0.0);
  EXPECT_GT(firehose_drop_tail.dropped, 0u);
  const ServeCellReport& firehose_timeout = r.cells[2];
  EXPECT_EQ(firehose_timeout.policy, "timeout");
  EXPECT_GT(firehose_timeout.shed, 0u);
}

TEST(LoadGeneratorTest, ReportIdenticalAcrossThreadCounts) {
  const GrownTopology grown = GrowSmall(42);
  auto one = LoadGenerator(grown.snapshot, SmallServeOptions(1)).Run();
  auto four = LoadGenerator(grown.snapshot, SmallServeOptions(4)).Run();
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  const ServeReport& a = one.value();
  const ServeReport& b = four.value();

  EXPECT_EQ(a.routed, b.routed);
  EXPECT_DOUBLE_EQ(a.route_success_rate, b.route_success_rate);
  EXPECT_DOUBLE_EQ(a.mean_messages, b.mean_messages);
  EXPECT_DOUBLE_EQ(a.service.mean_ms, b.service.mean_ms);
  EXPECT_DOUBLE_EQ(a.service.p50_ms, b.service.p50_ms);
  EXPECT_DOUBLE_EQ(a.service.p999_ms, b.service.p999_ms);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    const ServeCellReport& x = a.cells[i];
    const ServeCellReport& y = b.cells[i];
    EXPECT_EQ(x.policy, y.policy);
    EXPECT_EQ(x.admitted, y.admitted);
    EXPECT_EQ(x.dropped, y.dropped);
    EXPECT_EQ(x.shed, y.shed);
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.succeeded, y.succeeded);
    EXPECT_DOUBLE_EQ(x.achieved_per_s, y.achieved_per_s);
    EXPECT_DOUBLE_EQ(x.queue_peak, y.queue_peak);
    EXPECT_DOUBLE_EQ(x.latency.p50_ms, y.latency.p50_ms);
    EXPECT_DOUBLE_EQ(x.latency.p99_ms, y.latency.p99_ms);
    EXPECT_DOUBLE_EQ(x.latency.p999_ms, y.latency.p999_ms);
    EXPECT_DOUBLE_EQ(x.latency.mean_ms, y.latency.mean_ms);
  }
}

TEST(LoadGeneratorTest, HotKeySkewConcentratesPeerCapDrops) {
  const GrownTopology grown = GrowSmall(42);
  ServeOptions options = SmallServeOptions(2);
  options.hot_keys = 4;
  options.offered_rates_per_s = {0.0};
  options.policies = {"none", "peer-cap"};
  auto report = LoadGenerator(grown.snapshot, options).Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  const ServeReport& r = report.value();
  ASSERT_EQ(r.cells.size(), 2u);
  for (const ServeCellReport& cell : r.cells) ExpectCellInvariants(cell);
  // 2000 lookups over 4 Zipf-hot owners at cap 8: the per-peer cap
  // must bite hard.
  EXPECT_GT(r.cells[1].dropped, r.cells[1].submitted / 2);
}

TEST(LoadGeneratorTest, RejectsEmptySweepAxes) {
  const GrownTopology grown = GrowSmall(42);
  ServeOptions no_rates = SmallServeOptions(1);
  no_rates.offered_rates_per_s.clear();
  EXPECT_FALSE(LoadGenerator(grown.snapshot, no_rates).Run().ok());

  ServeOptions no_policies = SmallServeOptions(1);
  no_policies.policies.clear();
  EXPECT_FALSE(LoadGenerator(grown.snapshot, no_policies).Run().ok());

  ServeOptions bad_policy = SmallServeOptions(1);
  bad_policy.policies = {"none", "bogus"};
  EXPECT_FALSE(LoadGenerator(grown.snapshot, bad_policy).Run().ok());
}

}  // namespace
}  // namespace oscar

// Equivalence guard for the step-wise routing interface: driving a
// stepper one hop at a time must reproduce Router::Route exactly —
// success, hops, wasted, terminal and the full visited path — on both
// intact and heavily crashed networks.

#include "routing/route_stepper.h"

#include <gtest/gtest.h>

#include "churn/churn.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "routing/backtracking_router.h"
#include "routing/greedy_router.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

/// Drives `stepper` exactly as the corresponding Router::Route does:
/// greedy bounds steps, backtracking bounds messages.
RouteResult Drive(RouteStepper* stepper, const Network& net, PeerId source,
                  KeyId target) {
  stepper->Start(net, source, target);
  if (stepper->name() == "greedy") {
    const size_t max_steps = 4 * net.alive_count() + 16;
    for (size_t step = 0; step < max_steps && !stepper->done(); ++step) {
      stepper->Step(net);
    }
  } else {
    const size_t max_messages = 8 * net.alive_count() + 64;
    while (!stepper->done() && stepper->result().hops +
                                       stepper->result().wasted <
                                   max_messages) {
      stepper->Step(net);
    }
  }
  if (!stepper->done()) stepper->Abandon(net);
  return stepper->result();
}

void ExpectSameRoute(const RouteResult& a, const RouteResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_EQ(a.wasted, b.wasted);
  EXPECT_EQ(a.terminal, b.terminal);
  EXPECT_EQ(a.path, b.path);
}

void CheckEquivalence(const Network& net, uint64_t query_seed) {
  GreedyRouter greedy;
  BacktrackingRouter backtracking;
  GreedyStepper greedy_stepper;
  BacktrackingStepper backtracking_stepper;
  Rng rng(query_seed);
  const std::vector<PeerId> peers = net.AlivePeers();
  for (int q = 0; q < 300; ++q) {
    const KeyId key = KeyId::FromUnit(rng.NextDouble());
    const PeerId source =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    ExpectSameRoute(Drive(&greedy_stepper, net, source, key),
                    greedy.Route(net, source, key));
    ExpectSameRoute(Drive(&backtracking_stepper, net, source, key),
                    backtracking.Route(net, source, key));
  }
}

TEST(RouteStepperTest, MatchesRouteOnIntactNetwork) {
  CheckEquivalence(LinkedNetwork(250, 11), 12);
}

TEST(RouteStepperTest, MatchesRouteUnderHeavyCrashes) {
  Network net = LinkedNetwork(300, 13);
  Rng churn_rng(14);
  ASSERT_TRUE(CrashFraction(&net, 0.33, &churn_rng).ok());
  CheckEquivalence(net, 15);
}

TEST(RouteStepperTest, StepperIsReusableAcrossRoutes) {
  Network net = LinkedNetwork(120, 16);
  BacktrackingStepper stepper;
  BacktrackingRouter router;
  Rng rng(17);
  const std::vector<PeerId> peers = net.AlivePeers();
  for (int q = 0; q < 50; ++q) {
    const KeyId key = KeyId::FromUnit(rng.NextDouble());
    const PeerId source =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    ExpectSameRoute(Drive(&stepper, net, source, key),
                    router.Route(net, source, key));
  }
}

TEST(RouteStepperTest, FailDeliveryRoutesAroundMidFlightCrash) {
  Network net = LinkedNetwork(200, 18);
  BacktrackingStepper stepper;
  Rng rng(19);
  const std::vector<PeerId> peers = net.AlivePeers();
  int exercised = 0;
  for (int q = 0; q < 100 && exercised < 20; ++q) {
    const KeyId key = KeyId::FromUnit(rng.NextDouble());
    const PeerId source =
        peers[static_cast<size_t>(rng.UniformInt(peers.size()))];
    // Work on a private copy: the crash below must not leak into later
    // iterations.
    Network copy = net;
    stepper.Start(copy, source, key);
    if (stepper.done()) continue;
    const RouteStep first = stepper.Step(copy);
    if (first.kind != StepKind::kForward) continue;
    // The chosen next hop dies while the message is in flight.
    copy.Crash(first.to);
    if (!copy.alive(source) || copy.alive_count() < 2) continue;
    const uint32_t hops_before = stepper.result().hops;
    const uint32_t wasted_before = stepper.result().wasted;
    ASSERT_TRUE(stepper.FailDelivery(copy));
    EXPECT_EQ(stepper.current(), source);  // Back at the sender.
    EXPECT_EQ(stepper.result().hops, hops_before - 1);  // Hop refunded...
    EXPECT_EQ(stepper.result().wasted, wasted_before + 1);  // ...as waste.
    // Routing continues around the corpse and still succeeds.
    const RouteResult finished = [&] {
      const size_t max_messages = 8 * copy.alive_count() + 64;
      while (!stepper.done() && stepper.result().hops +
                                        stepper.result().wasted <
                                    max_messages) {
        stepper.Step(copy);
      }
      if (!stepper.done()) stepper.Abandon(copy);
      return stepper.result();
    }();
    if (copy.OwnerOf(key).has_value()) {
      EXPECT_TRUE(finished.success);
      EXPECT_EQ(finished.terminal, *copy.OwnerOf(key));
    }
    ++exercised;
  }
  EXPECT_GE(exercised, 20);
}

TEST(RouteStepperTest, FailDeliveryAtOriginReportsNothingToRevert) {
  Network net = LinkedNetwork(50, 20);
  GreedyStepper stepper;
  const PeerId source = net.AlivePeers().front();
  stepper.Start(net, source, net.key(source));
  EXPECT_FALSE(stepper.FailDelivery(net));
}

TEST(RouteStepperTest, MakeRouteStepperResolvesNames) {
  EXPECT_TRUE(MakeRouteStepper("greedy").ok());
  EXPECT_TRUE(MakeRouteStepper("backtracking").ok());
  EXPECT_FALSE(MakeRouteStepper("dijkstra").ok());
}

}  // namespace
}  // namespace oscar

// Deterministic-replay guard: two simulations with the same seed must
// produce byte-identical search-cost rows; a different seed must not.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiments.h"

namespace oscar {
namespace {

ExperimentScale TinyScale(uint64_t seed) {
  ExperimentScale scale;
  scale.target_size = 120;
  scale.queries = 40;
  scale.seed = seed;
  scale.checkpoints = {60, 120};
  return scale;
}

std::string RowsAsBytes(const std::vector<SearchCostRow>& rows) {
  std::ostringstream os;
  for (const SearchCostRow& row : rows) {
    os << row.series << '|' << row.churn_fraction << '|' << row.network_size
       << '|' << row.avg_cost << '|' << row.avg_wasted << '|'
       << row.success_rate << '\n';
  }
  return os.str();
}

TEST(DeterminismTest, SameSeedSameBytes) {
  auto first = RunSearchCostVsSize(TinyScale(42), {"constant"},
                                   {0.0, 0.10}, OscarFactory());
  auto second = RunSearchCostVsSize(TinyScale(42), {"constant"},
                                    {0.0, 0.10}, OscarFactory());
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(RowsAsBytes(first.value()), RowsAsBytes(second.value()));
}

TEST(DeterminismTest, DifferentSeedDifferentRun) {
  auto first = RunSearchCostVsSize(TinyScale(42), {"constant"}, {0.0},
                                   OscarFactory());
  auto second = RunSearchCostVsSize(TinyScale(43), {"constant"}, {0.0},
                                    OscarFactory());
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(RowsAsBytes(first.value()), RowsAsBytes(second.value()));
}

}  // namespace
}  // namespace oscar

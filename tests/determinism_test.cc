// Deterministic-replay guard: two simulations with the same seed must
// produce byte-identical search-cost rows — and two message-level
// scenario runs with the same seed must produce byte-identical event
// traces. A different seed must not.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiments.h"
#include "sim/scenario.h"

namespace oscar {
namespace {

ExperimentScale TinyScale(uint64_t seed) {
  ExperimentScale scale;
  scale.target_size = 120;
  scale.queries = 40;
  scale.seed = seed;
  scale.checkpoints = {60, 120};
  return scale;
}

std::string RowsAsBytes(const std::vector<SearchCostRow>& rows) {
  std::ostringstream os;
  for (const SearchCostRow& row : rows) {
    os << row.series << '|' << row.churn_fraction << '|' << row.network_size
       << '|' << row.avg_cost << '|' << row.avg_wasted << '|'
       << row.success_rate << '\n';
  }
  return os.str();
}

TEST(DeterminismTest, SameSeedSameBytes) {
  auto first = RunSearchCostVsSize(TinyScale(42), {"constant"},
                                   {0.0, 0.10}, OscarFactory());
  auto second = RunSearchCostVsSize(TinyScale(42), {"constant"},
                                    {0.0, 0.10}, OscarFactory());
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(RowsAsBytes(first.value()), RowsAsBytes(second.value()));
}

TEST(DeterminismTest, DifferentSeedDifferentRun) {
  auto first = RunSearchCostVsSize(TinyScale(42), {"constant"}, {0.0},
                                   OscarFactory());
  auto second = RunSearchCostVsSize(TinyScale(43), {"constant"}, {0.0},
                                    OscarFactory());
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(RowsAsBytes(first.value()), RowsAsBytes(second.value()));
}

/// Runs the rolling-churn scenario (the busiest one: crashes, joins,
/// timeouts and reroutes all interleave) with the message trace on and
/// returns the full event trace plus the summary numbers as one string.
std::string ScenarioTraceBytes(uint64_t seed) {
  ScenarioOptions base;
  base.network_size = 140;
  base.lookups = 70;
  base.seed = seed;
  std::string trace;
  base.sim.trace = &trace;
  auto run = RunScenario("rolling-churn", base);
  EXPECT_TRUE(run.ok()) << run.status();
  if (!run.ok()) return "";
  const MessageSimReport& report = run.value().report;
  std::ostringstream os;
  os << trace << "completed=" << report.completed
     << " succeeded=" << report.succeeded
     << " messages=" << report.messages_sent
     << " timeouts=" << report.timeouts << " mean_ms=" << report.latency.mean_ms
     << " events=" << run.value().events_dispatched;
  return os.str();
}

TEST(DeterminismTest, SameSeedSameEventTrace) {
  const std::string first = ScenarioTraceBytes(42);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, ScenarioTraceBytes(42));
}

TEST(DeterminismTest, DifferentSeedDifferentEventTrace) {
  EXPECT_NE(ScenarioTraceBytes(42), ScenarioTraceBytes(43));
}

}  // namespace
}  // namespace oscar

#include "sim/message_sim.h"

#include <gtest/gtest.h>

#include "overlay/kleinberg/kleinberg_overlay.h"
#include "sim/scenario.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

MessageSimOptions FastOptions() {
  MessageSimOptions options;
  options.zero_latency = true;
  options.service_ms = 0.0;
  options.timeout_ms = 10.0;
  return options;
}

TEST(MessageSimTest, IntactNetworkCompletesEveryLookup) {
  Network net = LinkedNetwork(150, 21);
  EventEngine engine;
  Rng rng(22);
  MessageSim sim(&engine, &net, FastOptions(), &rng);
  Rng query_rng(23);
  const std::vector<PeerId> alive = net.AlivePeers();
  for (int q = 0; q < 60; ++q) {
    const PeerId source =
        alive[static_cast<size_t>(query_rng.UniformInt(alive.size()))];
    sim.SubmitLookupAt(0.0, source, KeyId::FromUnit(query_rng.NextDouble()));
  }
  engine.Run();
  const MessageSimReport report = sim.Report();
  EXPECT_EQ(report.completed, 60u);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_GT(report.messages_sent, 0u);
}

TEST(MessageSimTest, TotalLossExhaustsRetriesAndFailsTheLookup) {
  Network net = LinkedNetwork(100, 24);
  EventEngine engine;
  Rng rng(25);
  MessageSimOptions options = FastOptions();
  options.loss_rate = 1.0;
  options.max_retries = 2;
  MessageSim sim(&engine, &net, options, &rng);
  const std::vector<PeerId> alive = net.AlivePeers();
  const PeerId source = alive[0];
  // A key owned by someone else, so at least one transmission is needed.
  const KeyId target = net.key(alive[alive.size() / 2]);
  ASSERT_NE(*net.OwnerOf(target), source);
  sim.SubmitLookupAt(0.0, source, target);
  engine.Run();
  ASSERT_EQ(sim.outcomes().size(), 1u);
  const LookupOutcome& outcome = sim.outcomes()[0];
  EXPECT_TRUE(outcome.finished);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.retries, 2u);  // Initial send + 2 resends, all lost.
  const MessageSimReport report = sim.Report();
  EXPECT_EQ(report.messages_sent, 3u);
  EXPECT_EQ(report.lost_messages, 3u);
  EXPECT_EQ(report.timeouts, 3u);
  // Each lost transmission costs one ack timeout of virtual time.
  EXPECT_DOUBLE_EQ(outcome.latency_ms, 3 * options.timeout_ms);
}

TEST(MessageSimTest, ModerateLossRecoversThroughRetries) {
  Network net = LinkedNetwork(150, 26);
  EventEngine engine;
  Rng rng(27);
  MessageSimOptions options = FastOptions();
  options.loss_rate = 0.3;
  options.max_retries = 8;
  MessageSim sim(&engine, &net, options, &rng);
  Rng query_rng(28);
  const std::vector<PeerId> alive = net.AlivePeers();
  for (int q = 0; q < 60; ++q) {
    const PeerId source =
        alive[static_cast<size_t>(query_rng.UniformInt(alive.size()))];
    sim.SubmitLookupAt(0.0, source, KeyId::FromUnit(query_rng.NextDouble()));
  }
  engine.Run();
  const MessageSimReport report = sim.Report();
  EXPECT_EQ(report.completed, 60u);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
  EXPECT_GT(report.retries, 0u);
  EXPECT_EQ(report.timeouts, report.lost_messages);
}

TEST(MessageSimTest, AdmissionCapBoundsConcurrency) {
  Network net = LinkedNetwork(150, 29);
  EventEngine engine;
  Rng rng(30);
  MessageSimOptions options;  // Real latency: lookups overlap in time.
  options.max_in_flight = 4;
  MessageSim sim(&engine, &net, options, &rng);
  Rng query_rng(31);
  const std::vector<PeerId> alive = net.AlivePeers();
  for (int q = 0; q < 50; ++q) {
    const PeerId source =
        alive[static_cast<size_t>(query_rng.UniformInt(alive.size()))];
    sim.SubmitLookupAt(0.0, source, KeyId::FromUnit(query_rng.NextDouble()));
  }
  engine.Run();
  const MessageSimReport report = sim.Report();
  EXPECT_EQ(report.completed, 50u);
  EXPECT_LE(report.peak_in_flight, 4u);
  EXPECT_GT(report.peak_in_flight, 0u);
}

TEST(MessageSimTest, PerPeerServiceQueueSerializesASaturatedSource) {
  Network net = LinkedNetwork(100, 32);
  EventEngine engine;
  Rng rng(33);
  MessageSimOptions options = FastOptions();
  options.service_ms = 10.0;  // Decision time dominates; delays are zero.
  MessageSim sim(&engine, &net, options, &rng);
  Rng query_rng(34);
  const std::vector<PeerId> alive = net.AlivePeers();
  const PeerId hot_source = alive[0];
  for (int q = 0; q < 20; ++q) {
    sim.SubmitLookupAt(0.0, hot_source,
                       KeyId::FromUnit(query_rng.NextDouble()));
  }
  engine.Run();
  const MessageSimReport report = sim.Report();
  EXPECT_EQ(report.completed, 20u);
  // 20 queries share one service queue at the source: the last one
  // waits through at least the 19 services ahead of it.
  EXPECT_GE(report.latency.max_ms, 19 * options.service_ms);
  EXPECT_GT(report.mean_in_flight, 1.0);
}

TEST(MessageSimTest, LookupsSurviveCrashesRacingDelivery) {
  Network net = LinkedNetwork(250, 35);
  EventEngine engine;
  Rng rng(36);
  MessageSimOptions options;  // Real latency so crashes land mid-flight.
  options.timeout_ms = 50.0;
  options.max_in_flight = 256;
  MessageSim sim(&engine, &net, options, &rng);
  Rng query_rng(37);
  const std::vector<PeerId> alive = net.AlivePeers();
  for (int q = 0; q < 150; ++q) {
    const PeerId source =
        alive[static_cast<size_t>(query_rng.UniformInt(alive.size()))];
    sim.SubmitLookupAt(static_cast<double>(q), source,
                       KeyId::FromUnit(query_rng.NextDouble()));
  }
  // A third of the network dies in three waves while lookups fly.
  Rng churn_rng(38);
  for (double at : {40.0, 80.0, 120.0}) {
    engine.ScheduleAt(at, [&net, &churn_rng] {
      std::vector<PeerId> still = net.AlivePeers();
      for (int i = 0; i < 25; ++i) {
        const PeerId victim = still[static_cast<size_t>(
            churn_rng.UniformInt(still.size()))];
        if (net.alive(victim) && net.alive_count() > 1) {
          net.Crash(victim);
        }
      }
    });
  }
  engine.Run(4000000);
  const MessageSimReport report = sim.Report();
  // Every lookup terminates — crashes cost timeouts and reroutes, never
  // a hung query.
  EXPECT_EQ(report.completed, 150u);
  EXPECT_GT(report.success_rate, 0.7);
}

TEST(MessageSimTest, TraceIsSeedDeterministic) {
  MessageSimOptions options;
  options.loss_rate = 0.2;
  options.max_retries = 4;
  auto run_trace = [&options](uint64_t seed) {
    Network net = LinkedNetwork(120, 39);
    EventEngine engine;
    Rng rng(seed);
    std::string trace;
    MessageSimOptions traced = options;
    traced.trace = &trace;
    MessageSim sim(&engine, &net, traced, &rng);
    Rng query_rng(seed ^ 41);
    const std::vector<PeerId> alive = net.AlivePeers();
    for (int q = 0; q < 40; ++q) {
      const PeerId source =
          alive[static_cast<size_t>(query_rng.UniformInt(alive.size()))];
      sim.SubmitLookupAt(static_cast<double>(q), source,
                         KeyId::FromUnit(query_rng.NextDouble()));
    }
    engine.Run();
    return trace;
  };
  const std::string first = run_trace(40);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_trace(40));
  EXPECT_NE(first, run_trace(41));
}

}  // namespace
}  // namespace oscar

#include <gtest/gtest.h>

#include "churn/churn.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "routing/greedy_router.h"
#include "sim/latency_model.h"
#include "store/replicated_store.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

TEST(ReplicatedStoreTest, PlacesOwnerPlusSuccessors) {
  Network net = LinkedNetwork(50, 1);
  ReplicatedStore store(3);
  Rng rng(2);
  ASSERT_TRUE(store.Put(net, KeyId::FromUnit(0.37), "v").ok());
  const AvailabilityReport report = store.CheckAvailability(net);
  EXPECT_EQ(report.total_items, 1u);
  EXPECT_EQ(report.items_with_replica, 1u);
  EXPECT_EQ(report.items_at_owner, 1u);
  EXPECT_DOUBLE_EQ(report.availability(), 1.0);
  EXPECT_DOUBLE_EQ(report.owner_hit_rate(), 1.0);
}

TEST(ReplicatedStoreTest, SurvivesCrashesByRedundancyLaw) {
  Network net = LinkedNetwork(400, 3);
  ReplicatedStore r1(1);
  ReplicatedStore r3(3);
  Rng rng(4);
  for (int i = 0; i < 800; ++i) {
    const KeyId key = KeyId::FromUnit(rng.NextDouble());
    ASSERT_TRUE(r1.Put(net, key, "x").ok());
    ASSERT_TRUE(r3.Put(net, key, "x").ok());
  }
  ASSERT_TRUE(CrashFraction(&net, 0.33, &rng).ok());
  const double a1 = r1.CheckAvailability(net).availability();
  const double a3 = r3.CheckAvailability(net).availability();
  EXPECT_NEAR(a1, 0.67, 0.08);   // ~1 - f.
  EXPECT_GT(a3, 0.92);           // ~1 - f^3.
  EXPECT_GT(a3, a1 + 0.2);
}

TEST(ReplicatedStoreTest, ReReplicateRestoresOwnerHitsAndCountsLosses) {
  Network net = LinkedNetwork(300, 5);
  ReplicatedStore store(2);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Put(net, KeyId::FromUnit(rng.NextDouble()), "x").ok());
  }
  ASSERT_TRUE(CrashFraction(&net, 0.33, &rng).ok());
  const AvailabilityReport before = store.CheckAvailability(net);
  const size_t lost = store.ReReplicate(net);
  const AvailabilityReport after = store.CheckAvailability(net);
  // Lost items stay lost (availability unchanged) but every surviving
  // item is back at its current owner.
  EXPECT_EQ(after.items_with_replica, before.items_with_replica);
  EXPECT_EQ(after.items_at_owner, after.items_with_replica);
  EXPECT_EQ(lost, before.total_items - before.items_with_replica);
}

TEST(LatencyModelTest, PricesRoutesAndTimeouts) {
  Network healthy = LinkedNetwork(300, 7);
  Rng rng(8);
  LatencyModel model(healthy, LatencyOptions{}, &rng);
  const LatencyEvaluation eval =
      EvaluateLatency(healthy, GreedyRouter(), model, 200, &rng);
  EXPECT_GT(eval.mean_ms, 0.0);
  EXPECT_GE(eval.p95_ms, eval.p50_ms);
  EXPECT_DOUBLE_EQ(eval.success_rate, 1.0);
}

TEST(LatencyModelTest, DelaysAreDeterministicPerSeed) {
  Network net = LinkedNetwork(100, 9);
  Rng rng_a(10), rng_b(10);
  LatencyModel a(net, LatencyOptions{}, &rng_a);
  LatencyModel b(net, LatencyOptions{}, &rng_b);
  for (PeerId id : net.AlivePeers()) {
    EXPECT_DOUBLE_EQ(a.HopDelayMs(id), b.HopDelayMs(id));
  }
}

}  // namespace
}  // namespace oscar

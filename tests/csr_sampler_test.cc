// CSR walk sampler vs the generic NetworkView path: over the same
// topology — live Network for the generic path, frozen TopologySnapshot
// for the CSR one — the same rng stream must produce the same
// visited-peer sequence, the same returned sample and the same step
// charge, per walk, on seeds 42-45, intact and 15%-crashed. This is the
// sampler-side twin of csr_stepper_test: the guard that lets checkpoint
// rewiring plan over snapshots without moving a sampling byte. The gap
// size estimator's snapshot fast path is held to the same standard.

#include <gtest/gtest.h>

#include "churn/churn.h"
#include "core/network_view.h"
#include "core/topology_snapshot.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "sampling/random_walk_sampler.h"
#include "sampling/size_estimator.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

TEST(CsrSamplerTest, PerWalkLockstepAcrossSeedsAndCrashLevels) {
  // Small cutoff so wide segments actually exercise the rejection walk
  // (at test scale the tuned default would shunt everything onto the
  // successor-list path and test nothing).
  RandomWalkOptions generic_options;
  generic_options.successor_list_cutoff = 8;
  RandomWalkOptions csr_options = generic_options;
  std::vector<PeerId> generic_trace;
  std::vector<PeerId> csr_trace;
  generic_options.visit_trace = &generic_trace;
  csr_options.visit_trace = &csr_trace;
  const RandomWalkSegmentSampler generic_sampler(generic_options);
  const RandomWalkSegmentSampler csr_sampler(csr_options);

  for (uint64_t seed = 42; seed <= 45; ++seed) {
    for (const double crash : {0.0, 0.15}) {
      Network net = LinkedNetwork(300, seed);
      if (crash > 0.0) {
        Rng crash_rng(seed ^ 0xc0ffeeULL);
        ASSERT_TRUE(CrashFraction(&net, crash, &crash_rng).ok());
      }
      const TopologySnapshot snap(net);
      const std::vector<PeerId> alive = net.AlivePeers();
      // Twin rng streams: the draws must stay aligned through every
      // walk, which only holds if both paths consume identically.
      Rng generic_rng(seed * 31337);
      Rng csr_rng(seed * 31337);
      Rng segment_rng(seed * 101);  // Shared segment/origin chooser.
      size_t walks_taken = 0;
      for (int q = 0; q < 250; ++q) {
        const PeerId origin = alive[static_cast<size_t>(
            segment_rng.UniformInt(alive.size()))];
        const KeyId from = KeyId::FromUnit(segment_rng.NextDouble());
        // Sweep widths: slivers (successor list), mid, and near-full
        // ring (rejection walk hits its stride tests fast).
        const double width =
            0.02 + 0.9 * segment_rng.NextDouble();
        const KeyId to = from.OffsetBy(width);
        generic_trace.clear();
        csr_trace.clear();
        const auto a =
            generic_sampler.SampleInSegment(net, origin, from, to,
                                            &generic_rng);
        const auto b =
            csr_sampler.SampleInSegment(snap, origin, from, to, &csr_rng);
        ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed << " q " << q;
        if (!a.ok()) continue;
        ASSERT_EQ(a.value().peer, b.value().peer)
            << "seed " << seed << " q " << q;
        ASSERT_EQ(a.value().steps, b.value().steps)
            << "seed " << seed << " q " << q;
        ASSERT_EQ(generic_trace, csr_trace)
            << "visited sequences diverged, seed " << seed << " q " << q;
        if (!generic_trace.empty()) ++walks_taken;
      }
      // The sweep must actually exercise the walk path, not just the
      // shared successor-list branch.
      EXPECT_GT(walks_taken, 50u) << "seed " << seed << " crash " << crash;
    }
  }
}

TEST(CsrSamplerTest, GapEstimatorSnapshotPathMatchesGeneric) {
  for (uint64_t seed = 42; seed <= 45; ++seed) {
    Network net = LinkedNetwork(220, seed);
    Rng crash_rng(seed ^ 0xabcULL);
    ASSERT_TRUE(CrashFraction(&net, 0.15, &crash_rng).ok());
    const TopologySnapshot snap(net);
    Rng rng(seed);  // Unused by the gap estimator; signature only.
    for (const uint32_t window : {4u, 16u, 64u}) {
      const GapSizeEstimator estimator(window);
      for (PeerId id = 0; id < net.size(); ++id) {
        EXPECT_DOUBLE_EQ(estimator.Estimate(net, id, &rng),
                         estimator.Estimate(snap, id, &rng))
            << "window " << window << " peer " << id;
      }
    }
  }
}

}  // namespace
}  // namespace oscar

// Columnar trace pipeline: time quantization must reproduce the legacy
// FormatDouble bytes, `.otrace` files must round-trip through the
// reader exactly and reject corruption, the CSV replay of a decoded
// binary trace must match the direct CSV sink byte-for-byte (including
// through a full scenario run), and traces must be seed-deterministic.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "sim/scenario.h"
#include "trace/columnar_trace.h"
#include "trace/trace.h"
#include "trace/trace_reader.h"

namespace oscar {
namespace {

TEST(TraceTimeTest, QuantizationMatchesLegacyFormatting) {
  const double samples[] = {0.0,        0.0004,     0.0005,   0.1,
                            1.0 / 3.0,  2.0 / 3.0,  1.0,      12.3449,
                            12.345,     12.3456,    999.9995, 1234.5678,
                            86400000.0, 123456789.125};
  for (const double t_ms : samples) {
    EXPECT_EQ(TraceTimeMs(TraceTimeUs(t_ms)), FormatDouble(t_ms, 3))
        << "t_ms=" << t_ms;
  }
  // A dense sweep across a couple of milliseconds catches any rounding
  // disagreement between snprintf and the ostringstream path.
  for (int i = 0; i < 20000; ++i) {
    const double t_ms = static_cast<double>(i) * 0.000137;
    ASSERT_EQ(TraceTimeMs(TraceTimeUs(t_ms)), FormatDouble(t_ms, 3))
        << "t_ms=" << t_ms;
  }
  EXPECT_EQ(TraceTimeUs(-1.0), 0u);  // Guarded: never negative.
}

std::vector<TraceEvent> SyntheticEvents() {
  std::vector<TraceEvent> events;
  for (uint32_t i = 0; i < 10; ++i) {
    TraceEvent event;
    event.t_us = 1000 * i + i;
    event.kind = static_cast<TraceKind>(
        i % static_cast<uint32_t>(TraceKind::kCount));
    event.lookup = i % 3 == 0 ? kTraceNone : i;
    event.peer = i % 4 == 0 ? kTraceNone : 100 + i;
    event.to = i % 5 == 0 ? kTraceNone : 200 + i;
    event.info = i * 7;
    events.push_back(event);
  }
  return events;
}

TEST(ColumnarTraceTest, WriterReaderRoundTrip) {
  std::ostringstream out(std::ios::binary);
  // Capacity 3 forces mid-scope block flushes; the scope switch forces
  // another, so the file has several blocks.
  ColumnarTraceWriter writer(&out, 3);
  const std::vector<TraceEvent> events = SyntheticEvents();
  const uint32_t alpha = writer.Intern("alpha");
  const uint32_t beta = writer.Intern("beta scope");
  writer.SetScope(alpha);
  for (size_t i = 0; i < 7; ++i) writer.Append(events[i]);
  writer.SetScope(beta);
  for (size_t i = 7; i < events.size(); ++i) writer.Append(events[i]);
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.events_written(), events.size());

  std::istringstream in(out.str(), std::ios::binary);
  auto decoded = ReadTrace(in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const TraceContents& contents = decoded.value();
  ASSERT_EQ(contents.records.size(), events.size());
  EXPECT_GE(contents.blocks, 4u);  // ceil(7/3) + ceil(3/3) at least.
  ASSERT_EQ(contents.strings.size(), 3u);  // "" + two interned.
  EXPECT_EQ(contents.strings[alpha], "alpha");
  EXPECT_EQ(contents.strings[beta], "beta scope");
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(contents.records[i].event, events[i]) << "record " << i;
    EXPECT_EQ(contents.records[i].scope, i < 7 ? alpha : beta);
  }
}

TEST(ColumnarTraceTest, CloseIsIdempotentAndDoubleFlushSafe) {
  std::ostringstream out(std::ios::binary);
  ColumnarTraceWriter writer(&out, 4);
  writer.Append(TraceEvent{});
  ASSERT_TRUE(writer.Flush().ok());
  ASSERT_TRUE(writer.Flush().ok());
  ASSERT_TRUE(writer.Close().ok());
  const std::string once = out.str();
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(out.str(), once);
  std::istringstream in(once, std::ios::binary);
  auto decoded = ReadTrace(in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().records.size(), 1u);
}

std::string ValidTraceBytes() {
  std::ostringstream out(std::ios::binary);
  ColumnarTraceWriter writer(&out, 4);
  writer.SetScope(writer.Intern("scope"));
  for (const TraceEvent& event : SyntheticEvents()) writer.Append(event);
  EXPECT_TRUE(writer.Close().ok());
  return out.str();
}

Status DecodeStatus(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  auto decoded = ReadTrace(in);
  return decoded.ok() ? Status::Ok() : decoded.status();
}

TEST(ColumnarTraceTest, ReaderRejectsCorruption) {
  const std::string good = ValidTraceBytes();
  ASSERT_TRUE(DecodeStatus(good).ok());

  // Truncation anywhere after the header is an error (missing end
  // frame, chopped column, chopped string...), never silent data loss.
  for (size_t len : {good.size() - 1, good.size() - 9, size_t{12},
                     size_t{8}, size_t{5}}) {
    EXPECT_FALSE(DecodeStatus(good.substr(0, len)).ok()) << "len=" << len;
  }

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeStatus(bad_magic).ok());

  std::string bad_version = good;
  bad_version[4] = 99;
  EXPECT_FALSE(DecodeStatus(bad_version).ok());

  std::string bad_tag = good;
  bad_tag[8] = 'Z';  // First frame tag.
  EXPECT_FALSE(DecodeStatus(bad_tag).ok());

  std::string trailing = good;
  trailing.push_back('\0');  // Bytes after the end frame.
  EXPECT_FALSE(DecodeStatus(trailing).ok());

  EXPECT_FALSE(DecodeStatus("").ok());
}

/// Replays decoded records through a fresh CsvTraceSink, exactly like
/// `oscar_trace --csv` does.
std::string ReplayAsCsv(const std::string& otrace_bytes) {
  std::istringstream in(otrace_bytes, std::ios::binary);
  auto decoded = ReadTrace(in);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  if (!decoded.ok()) return "";
  std::ostringstream csv;
  CsvTraceSink sink(&csv);
  for (const TraceRecord& record : decoded.value().records) {
    sink.SetScope(sink.Intern(decoded.value().scope_text(record)));
    sink.Append(record.event);
  }
  return csv.str();
}

TEST(ColumnarTraceTest, CsvReplayMatchesDirectCsvSink) {
  std::ostringstream direct_csv;
  CsvTraceSink direct(&direct_csv);
  std::ostringstream binary(std::ios::binary);
  ColumnarTraceWriter writer(&binary, 3);
  direct.SetScope(direct.Intern("cell a"));
  writer.SetScope(writer.Intern("cell a"));
  const std::vector<TraceEvent> events = SyntheticEvents();
  for (size_t i = 0; i < 6; ++i) {
    direct.Append(events[i]);
    writer.Append(events[i]);
  }
  direct.SetScope(direct.Intern("cell b"));
  writer.SetScope(writer.Intern("cell b"));
  for (size_t i = 6; i < events.size(); ++i) {
    direct.Append(events[i]);
    writer.Append(events[i]);
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(ReplayAsCsv(binary.str()), direct_csv.str());
}

/// Runs the busiest scenario (churn, timeouts, reroutes) with the given
/// sink attached and timeline sampling on.
void RunTracedScenario(uint64_t seed, TraceSink* sink) {
  ScenarioOptions base;
  base.network_size = 140;
  base.lookups = 70;
  base.seed = seed;
  base.sim.sink = sink;
  base.sim.queue_depth_cadence_ms = 5.0;
  sink->SetScope(sink->Intern("rolling-churn"));
  auto run = RunScenario("rolling-churn", base);
  ASSERT_TRUE(run.ok()) << run.status();
}

std::string ScenarioOtraceBytes(uint64_t seed) {
  std::ostringstream out(std::ios::binary);
  ColumnarTraceWriter writer(&out, 256);
  RunTracedScenario(seed, &writer);
  EXPECT_TRUE(writer.Close().ok());
  return out.str();
}

TEST(TraceDeterminismTest, ScenarioOtraceIsSeedDeterministic) {
  const std::string first = ScenarioOtraceBytes(42);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, ScenarioOtraceBytes(42));
  EXPECT_NE(first, ScenarioOtraceBytes(43));
}

TEST(TraceDeterminismTest, ScenarioCsvReplayMatchesDirectSink) {
  const std::string otrace = ScenarioOtraceBytes(42);
  std::ostringstream direct_csv;
  CsvTraceSink direct(&direct_csv);
  RunTracedScenario(42, &direct);
  ASSERT_GT(direct_csv.str().size(), std::string(CsvTraceSink::Header()).size());
  EXPECT_EQ(ReplayAsCsv(otrace), direct_csv.str());
}

TEST(TraceDeterminismTest, LegacyStringAdapterStillDeterministic) {
  // The string adapter and a structured sink can ride the same run; the
  // adapter's bytes stay seed-stable (the determinism test's contract).
  auto trace_bytes = [](uint64_t seed) {
    ScenarioOptions base;
    base.network_size = 140;
    base.lookups = 70;
    base.seed = seed;
    std::string trace;
    base.sim.trace = &trace;
    auto run = RunScenario("rolling-churn", base);
    EXPECT_TRUE(run.ok()) << run.status();
    return trace;
  };
  const std::string first = trace_bytes(42);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, trace_bytes(42));
  EXPECT_NE(first, trace_bytes(43));
}

}  // namespace
}  // namespace oscar

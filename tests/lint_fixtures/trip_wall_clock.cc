// Lint fixture for the wall-clock rule: ambient randomness and wall
// time in library code. oscar::Rng and virtual time are the only
// sanctioned sources; steady_clock is allowed because it only feeds
// stderr/JSON timing, never results.
// Never compiled; behavior pinned by scripts/check_lint_fixtures.sh.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline unsigned AmbientSeedBad() {
  std::random_device device;  // lint-expect: wall-clock
  return device();
}

inline int LegacyRandBad() {
  srand(42);  // lint-expect: wall-clock
  return rand();  // lint-expect: wall-clock
}

inline long WallTimeBad() {
  return time(nullptr);  // lint-expect: wall-clock
}

inline long long EpochNowBad() {
  return std::chrono::system_clock::now()  // lint-expect: wall-clock
      .time_since_epoch()
      .count();
}

inline long CpuClockBad() {
  return clock();  // lint-expect: wall-clock
}

// steady_clock for timing-to-JSON is the sanctioned pattern — silent.
inline double ElapsedMsGood() {
  const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Identifiers that merely contain the tokens stay silent too.
inline int randomize_count(int my_time) { return my_time; }

}  // namespace fixture

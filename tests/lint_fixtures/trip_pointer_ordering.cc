// Lint fixture for the pointer-ordering rule: ordered associative
// containers keyed by pointer value, and pointer->integer casts, both
// tie results to allocation addresses that vary run to run.
// Never compiled; behavior pinned by scripts/check_lint_fixtures.sh.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Peer {
  int id;
};

struct Router {
  std::set<Peer*> frontier_;  // lint-expect: pointer-ordering
  std::map<Peer*, int> hops_;  // lint-expect: pointer-ordering

  uint64_t AddressAsKey(const Peer* peer) const {
    return reinterpret_cast<uintptr_t>(peer);  // lint-expect: pointer-ordering
  }

  // Value-keyed ordered containers are fine — no findings below.
  std::set<int> ids_;
  std::map<int, int> id_hops_;
};

}  // namespace fixture

// Lint fixture for the hash-order rule: any std::hash use ties derived
// ordering (bucket placement, hash-combined sort keys) to the standard
// library implementation, which the byte-identical contract forbids.
// Never compiled; behavior pinned by scripts/check_lint_fixtures.sh.

#include <cstddef>
#include <functional>
#include <string>

namespace fixture {

struct Record {
  std::string name;
};

inline size_t HashBad(const Record& record) {
  return std::hash<std::string>{}(record.name);  // lint-expect: hash-order
}

struct RecordHasher {
  std::hash<std::string> hasher;  // lint-expect: hash-order
  size_t operator()(const Record& record) const {
    return hasher(record.name);
  }
};

// A hand-rolled mixer with pinned constants is the sanctioned
// replacement — no finding.
inline size_t HashGood(const Record& record) {
  size_t h = 1469598103934665603ull;
  for (char c : record.name) h = (h ^ static_cast<size_t>(c)) * 1099511628211ull;
  return h;
}

}  // namespace fixture

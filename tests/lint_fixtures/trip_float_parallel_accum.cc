// Lint fixture for the float-parallel-accum rule: compound
// accumulation into a float/double declared OUTSIDE a
// ParallelFor/ParallelForWorkers body from INSIDE it. FP addition does
// not commute, so cross-thread accumulation order becomes the result.
// Never compiled; behavior pinned by scripts/check_lint_fixtures.sh.

#include <cstddef>
#include <vector>

namespace fixture {

template <typename Fn>
void ParallelFor(size_t begin, size_t end, unsigned threads, Fn fn);
template <typename Fn>
void ParallelForWorkers(size_t n, unsigned threads, Fn fn);

inline double SharedAccumulatorBad(const std::vector<double>& values) {
  double total = 0.0;
  ParallelFor(0, values.size(), 4, [&](size_t i) {
    total += values[i];  // lint-expect: float-parallel-accum
  });
  return total;
}

inline double WorkerVariantBad(const std::vector<double>& values) {
  double scale = 1.0;
  ParallelForWorkers(values.size(), 4, [&](size_t i) {
    scale *= values[i];  // lint-expect: float-parallel-accum
  });
  return scale;
}

// The sanctioned shape: per-index slots written disjointly, merged
// deterministically after the barrier — no findings inside the body.
inline double PerSlotReductionGood(const std::vector<double>& values) {
  std::vector<double> slots(values.size(), 0.0);
  ParallelFor(0, values.size(), 4, [&](size_t i) {
    double local = values[i];
    local += 1.0;  // Lambda-local: per-index, deterministic.
    slots[i] = local;
  });
  double total = 0.0;
  for (double slot : slots) total += slot;  // Outside the body: fine.
  return total;
}

}  // namespace fixture

// Lint fixture for the suppression contract: `// oscar-lint:
// allow(<rule>) <reason>` silences a finding on the same line, and a
// comment-only suppression line covers the next line. Both forms must
// land in the report's "suppressed" list (with reasons), never in
// "findings". A bare allow() without a reason is itself a finding.
// Never compiled; behavior pinned by scripts/check_lint_fixtures.sh.

#include <string>
#include <unordered_map>

namespace fixture {

struct DebugDump {
  std::unordered_map<int, std::string> labels_;

  size_t SameLineSuppressed() const {
    size_t n = 0;
    for (const auto& e : labels_) n += e.second.size();  // oscar-lint: allow(unordered-iteration) order-insensitive size sum for a debug counter
    return n;
  }

  bool PrecedingLineSuppressed() const {
    // oscar-lint: allow(unordered-iteration) membership probe via iterator in cold debug path
    return labels_.cbegin() == labels_.cbegin();
  }

  size_t MissingReasonIsItselfAFinding() const {
    size_t n = 0;
    // lint-expect-next: bad-suppression, unordered-iteration
    for (const auto& e : labels_) n += e.second.size();  // oscar-lint: allow(unordered-iteration)
    return n;
  }
};

}  // namespace fixture

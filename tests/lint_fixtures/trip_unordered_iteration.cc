// Lint fixture: every construct the unordered-iteration rule must
// flag, plus the membership-only uses it must stay silent on. Each
// line that must appear in the report carries a `lint-expect:` marker
// (scripts/check_lint_fixtures.sh builds the expected finding set from
// those markers and diffs it against the JSON report).
//
// This file is NEVER compiled — it exists to pin the lint's behavior.

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Registry {
  std::unordered_map<int, std::string> by_id_;
  std::unordered_set<int> members_;

  int SumKeysBad() const {
    int sum = 0;
    for (const auto& entry : by_id_) {  // lint-expect: unordered-iteration
      sum += entry.first;
    }
    return sum;
  }

  bool ExplicitIteratorBad() const {
    return members_.begin() != members_.end();  // lint-expect: unordered-iteration
  }

  // Membership-only calls are the sanctioned use — no findings here.
  bool Contains(int id) const { return members_.count(id) != 0; }
  void Add(int id) { members_.insert(id); }
  void Remove(int id) { members_.erase(id); }
  bool Lookup(int id) const { return by_id_.find(id) != by_id_.end(); }
};

}  // namespace fixture

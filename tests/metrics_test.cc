#include <gtest/gtest.h>

#include "metrics/degree_metrics.h"
#include "metrics/routing_load_metrics.h"
#include "metrics/topology_metrics.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "routing/greedy_router.h"

namespace oscar {
namespace {

Network LinkedNetwork(size_t n, uint64_t seed, uint32_t degree = 8) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{degree, degree});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

TEST(DegreeMetricsTest, UtilizationReflectsRealizedInDegree) {
  Network net = LinkedNetwork(200, 1);
  const DegreeLoadReport report = ComputeDegreeLoad(net);
  EXPECT_EQ(report.sorted_relative_load.size(), net.alive_count());
  EXPECT_GT(report.utilization, 0.3);
  EXPECT_LE(report.utilization, 1.0);
  EXPECT_TRUE(std::is_sorted(report.sorted_relative_load.begin(),
                             report.sorted_relative_load.end()));
  EXPECT_GE(report.load_gini, 0.0);
  EXPECT_LE(report.load_gini, 1.0);
}

TEST(DegreeMetricsTest, DownsampleCurveKeepsEndpoints) {
  const std::vector<double> curve = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<double> points = DownsampleCurve(curve, 5);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front(), 0.0);
  EXPECT_DOUBLE_EQ(points.back(), 10.0);
  EXPECT_TRUE(DownsampleCurve({}, 5).empty());
  EXPECT_EQ(DownsampleCurve(curve, 1).size(), 1u);
}

TEST(TopologyMetricsTest, HarmonicLinksAreNearlyFlat) {
  Network net = LinkedNetwork(1024, 2, 12);
  const LinkGeometryReport report = ComputeLinkGeometry(net);
  EXPECT_GT(report.total_links, 0u);
  ASSERT_GE(report.octave_counts.size(), 9u);
  // The oracle harmonic construction is the flatness gold standard.
  EXPECT_GE(report.octave_imbalance, 1.0);
  EXPECT_LT(report.octave_imbalance, 1.8);
}

TEST(TopologyMetricsTest, EmptyNetworkIsWellDefined) {
  Network net;
  const LinkGeometryReport report = ComputeLinkGeometry(net);
  EXPECT_EQ(report.total_links, 0u);
  EXPECT_EQ(report.octave_imbalance, 0.0);
}

TEST(RoutingLoadMetricsTest, ChargesForwardersNotTerminals) {
  Network net = LinkedNetwork(200, 3);
  RoutingLoadOptions options;
  options.num_queries = 300;
  Rng rng(4);
  const RoutingLoadReport report =
      EvaluateRoutingLoad(net, GreedyRouter(), options, &rng);
  EXPECT_GT(report.mean_load, 0.0);
  EXPECT_GT(report.peak_to_mean, 0.0);
  EXPECT_GE(report.budget_relative_gini, 0.0);
}

}  // namespace
}  // namespace oscar

#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace oscar {
namespace {

ScenarioOptions TinyScale() {
  ScenarioOptions base;
  base.network_size = 150;
  base.lookups = 80;
  base.seed = 42;
  return base;
}

TEST(ScenarioTest, EveryCatalogEntryRunsAndCompletes) {
  for (const std::string& name : ScenarioCatalog()) {
    auto run = RunScenario(name, TinyScale());
    ASSERT_TRUE(run.ok()) << name << ": " << run.status();
    const ScenarioResult& result = run.value();
    EXPECT_EQ(result.report.submitted, 80u) << name;
    EXPECT_EQ(result.report.completed, 80u) << name;
    EXPECT_GT(result.report.success_rate, 0.5) << name;
    EXPECT_GT(result.events_dispatched, 0u) << name;
  }
}

TEST(ScenarioTest, UnknownScenarioIsAnError) {
  EXPECT_FALSE(RunScenario("thundering-herd", TinyScale()).ok());
}

TEST(ScenarioTest, FlashCrowdConcentratesLoadOnHotOwners) {
  auto baseline = RunScenario("baseline", TinyScale());
  auto crowd = RunScenario("flash-crowd", TinyScale());
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_TRUE(crowd.ok()) << crowd.status();
  // A Zipf burst on 16 hot keys funnels traffic through far fewer
  // peers than the organically skewed baseline stream.
  EXPECT_GT(crowd.value().report.peer_load.gini,
            baseline.value().report.peer_load.gini);
  EXPECT_GT(crowd.value().report.peak_in_flight,
            baseline.value().report.peak_in_flight);
}

TEST(ScenarioTest, RollingChurnCrashesAndJoinsPeers) {
  auto run = RunScenario("rolling-churn", TinyScale());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run.value().crashed, 0u);
  EXPECT_GT(run.value().joined, 0u);
}

TEST(ScenarioTest, SlowPeersInflateTailLatency) {
  // The control gets the same uniform service_ms the slow-peers
  // scenario sets, but no slow cohort — so the assertions isolate the
  // heterogeneity itself, not the higher base service time.
  ScenarioOptions control = TinyScale();
  control.sim.service_ms = 2.0;
  auto baseline = RunScenario("baseline", control);
  auto slow = RunScenario("slow-peers", TinyScale());
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_TRUE(slow.ok()) << slow.status();
  ASSERT_EQ(slow.value().options.sim.service_ms, 2.0)
      << "control drifted from the scenario's base service time";
  // Shape check: a 10% population of 50x-slower peers inflates the
  // latency tail — lookups routed through a slow peer inherit its
  // service time — while routes themselves are unchanged.
  EXPECT_GT(slow.value().report.latency.p95_ms,
            baseline.value().report.latency.p95_ms * 1.05);
  EXPECT_GT(slow.value().report.latency.mean_ms,
            baseline.value().report.latency.mean_ms);
  EXPECT_EQ(slow.value().report.mean_hops,
            baseline.value().report.mean_hops);
}

TEST(ScenarioTest, SharedGrownTopologyReplaysLikeFreshGrowth) {
  const ScenarioOptions base = TinyScale();
  auto grown = GrowScenarioTopology(base);
  ASSERT_TRUE(grown.ok()) << grown.status();
  for (const std::string name : {"baseline", "rolling-churn"}) {
    auto fresh = RunScenario(name, base);
    auto replay = RunScenarioOn(name, base, grown.value());
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    ASSERT_TRUE(replay.ok()) << replay.status();
    // Restoring the shared snapshot must reproduce the regrown run
    // exactly, including the churn that mutates the restored copy.
    EXPECT_EQ(fresh.value().report.messages_sent,
              replay.value().report.messages_sent) << name;
    EXPECT_EQ(fresh.value().report.succeeded,
              replay.value().report.succeeded) << name;
    EXPECT_EQ(fresh.value().report.latency.p95_ms,
              replay.value().report.latency.p95_ms) << name;
    EXPECT_EQ(fresh.value().crashed, replay.value().crashed) << name;
    EXPECT_EQ(fresh.value().events_dispatched,
              replay.value().events_dispatched) << name;
  }
}

TEST(ScenarioTest, MessageLossTriggersRetries) {
  auto run = RunScenario("message-loss", TinyScale());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run.value().report.retries, 0u);
  EXPECT_GT(run.value().report.lost_messages, 0u);
}

TEST(ScenarioTest, HostileScenariosReportRecoveryForEveryFault) {
  const struct {
    const char* name;
    size_t faults;
  } hostile[] = {{"partition-heal", 1},
                 {"repair-vs-churn", 1},
                 {"adversarial-hotkeys", 1},
                 {"cascade-slowdown", 2}};
  for (const auto& expected : hostile) {
    auto run = RunScenario(expected.name, TinyScale());
    ASSERT_TRUE(run.ok()) << expected.name << ": " << run.status();
    const ScenarioResult& result = run.value();
    ASSERT_EQ(result.recovery.faults.size(), expected.faults)
        << expected.name;
    for (const FaultRecovery& fault : result.recovery.faults) {
      EXPECT_FALSE(fault.label.empty()) << expected.name;
      // Every injected fault produces a real dip and a measured
      // time-to-recover at the catalog seed (0 = never dipped,
      // -1 = never recovered; both would gut the scenario's point).
      EXPECT_GT(fault.ttr_ms, 0.0) << expected.name << " " << fault.label;
      EXPECT_LT(fault.dip, fault.ok_before)
          << expected.name << " " << fault.label;
    }
    // Repair actually ran and spent sampling bandwidth mid-scenario.
    EXPECT_FALSE(result.maintenance.empty()) << expected.name;
    EXPECT_GT(result.maintenance_sampling_steps, 0u) << expected.name;
  }
}

TEST(ScenarioTest, MaintenanceStrictlyImprovesRepairVsChurn) {
  for (uint64_t seed : {42u, 43u, 44u, 45u}) {
    ScenarioOptions with = TinyScale();
    with.seed = seed;
    ScenarioOptions without = with;
    without.maintenance_cadence_ms = 0.0;  // Force repair off.
    auto healed = RunScenario("repair-vs-churn", with);
    auto ailing = RunScenario("repair-vs-churn", without);
    ASSERT_TRUE(healed.ok()) << healed.status();
    ASSERT_TRUE(ailing.ok()) << ailing.status();
    // The maintenance rng stream is private, so the two runs share
    // every churn and workload draw — the only delta is repair.
    EXPECT_GT(healed.value().report.success_rate,
              ailing.value().report.success_rate)
        << "seed " << seed;
    EXPECT_TRUE(ailing.value().maintenance.empty());
    EXPECT_FALSE(healed.value().maintenance.empty());
  }
}

TEST(ScenarioTest, CrossCheckMatchesSynchronousEngine) {
  for (uint64_t seed : {42u, 43u}) {
    ScenarioOptions base = TinyScale();
    base.seed = seed;
    auto checked = CrossCheckMessageVsSync(base);
    ASSERT_TRUE(checked.ok()) << "seed " << seed << ": " << checked.status();
    EXPECT_EQ(checked.value(), 80u);
  }
}

}  // namespace
}  // namespace oscar

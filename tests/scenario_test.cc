#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace oscar {
namespace {

ScenarioOptions TinyScale() {
  ScenarioOptions base;
  base.network_size = 150;
  base.lookups = 80;
  base.seed = 42;
  return base;
}

TEST(ScenarioTest, EveryCatalogEntryRunsAndCompletes) {
  for (const std::string& name : ScenarioCatalog()) {
    auto run = RunScenario(name, TinyScale());
    ASSERT_TRUE(run.ok()) << name << ": " << run.status();
    const ScenarioResult& result = run.value();
    EXPECT_EQ(result.report.submitted, 80u) << name;
    EXPECT_EQ(result.report.completed, 80u) << name;
    EXPECT_GT(result.report.success_rate, 0.5) << name;
    EXPECT_GT(result.events_dispatched, 0u) << name;
  }
}

TEST(ScenarioTest, UnknownScenarioIsAnError) {
  EXPECT_FALSE(RunScenario("thundering-herd", TinyScale()).ok());
}

TEST(ScenarioTest, FlashCrowdConcentratesLoadOnHotOwners) {
  auto baseline = RunScenario("baseline", TinyScale());
  auto crowd = RunScenario("flash-crowd", TinyScale());
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_TRUE(crowd.ok()) << crowd.status();
  // A Zipf burst on 16 hot keys funnels traffic through far fewer
  // peers than the organically skewed baseline stream.
  EXPECT_GT(crowd.value().report.peer_load.gini,
            baseline.value().report.peer_load.gini);
  EXPECT_GT(crowd.value().report.peak_in_flight,
            baseline.value().report.peak_in_flight);
}

TEST(ScenarioTest, RollingChurnCrashesAndJoinsPeers) {
  auto run = RunScenario("rolling-churn", TinyScale());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run.value().crashed, 0u);
  EXPECT_GT(run.value().joined, 0u);
}

TEST(ScenarioTest, MessageLossTriggersRetries) {
  auto run = RunScenario("message-loss", TinyScale());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run.value().report.retries, 0u);
  EXPECT_GT(run.value().report.lost_messages, 0u);
}

TEST(ScenarioTest, CrossCheckMatchesSynchronousEngine) {
  for (uint64_t seed : {42u, 43u}) {
    ScenarioOptions base = TinyScale();
    base.seed = seed;
    auto checked = CrossCheckMessageVsSync(base);
    ASSERT_TRUE(checked.ok()) << "seed " << seed << ": " << checked.status();
    EXPECT_EQ(checked.value(), 80u);
  }
}

}  // namespace
}  // namespace oscar

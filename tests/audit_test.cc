// Runtime invariant auditor (common/audit.h + Network::CheckInvariants
// + TopologySnapshot::Validate/CheckRestoreIdentity): healthy networks
// and snapshots must pass at every lifecycle stage — grown, churned,
// rewired, frozen, delta-restored — and each corruption class must be
// DETECTED (via the test-access backdoors; no public API can produce an
// invalid structure, which is exactly why the audits exist). Also pins
// the OSCAR_AUDIT knob semantics: default off, test-settable, and the
// audited pipelines byte-identical to unaudited ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "churn/churn.h"
#include "common/audit.h"
#include "core/experiments.h"
#include "core/simulation.h"
#include "core/topology_snapshot.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "overlay/oscar/oscar_overlay.h"

namespace oscar {

// Backdoors into the audited classes' private state, friended by the
// classes so corruption scenarios are constructible at all.
struct NetworkTestAccess {
  static void FlipAlive(Network* net, PeerId id) {
    net->alive_[id] = net->alive_[id] ? 0 : 1;
  }
  static void BumpOutCount(Network* net, PeerId id) { ++net->out_count_[id]; }
  static void BumpInCount(Network* net, PeerId id) { ++net->in_count_[id]; }
  static void SetOutSlabEntry(Network* net, PeerId id, size_t slot,
                              PeerId value) {
    net->out_slab_[net->out_base_[id] + slot] = value;
  }
  static void CorruptKey(Network* net, PeerId id) {
    net->keys_[id] = KeyId::FromRaw(net->keys_[id].raw + 1);
  }
  static uint32_t out_count(const Network& net, PeerId id) {
    return net.out_count_[id];
  }
};

struct TopologySnapshotTestAccess {
  static void FlipAlive(TopologySnapshot* snap, PeerId id) {
    snap->alive_[id] = snap->alive_[id] ? 0 : 1;
  }
  static void CorruptOutEdge(TopologySnapshot* snap, size_t index,
                             PeerId value) {
    snap->out_edges_[index] = value;
  }
  static void BreakOffsetMonotonicity(TopologySnapshot* snap, PeerId id) {
    if (snap->wide_) {
      ++snap->out_offsets64_[id];
    } else {
      ++snap->out_offsets32_[id];
    }
  }
  static void CorruptRingPos(TopologySnapshot* snap, PeerId id) {
    ++snap->ring_pos_[id];
  }
};

namespace {

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

// A peer that actually holds at least one out-link to an ALIVE target
// (corruption targets need live state to corrupt).
PeerId PeerWithLiveOutLink(const Network& net) {
  for (PeerId id = 0; id < net.size(); ++id) {
    if (!net.alive(id)) continue;
    for (PeerId target : net.OutLinks(id)) {
      if (net.alive(target)) return id;
    }
  }
  ADD_FAILURE() << "no peer with a live out-link";
  return 0;
}

TEST(AuditKnob, DefaultsOffAndIsTestSettable) {
  // The suite runs without OSCAR_AUDIT in the environment (ctest does
  // not set it), so the cached decision must be off by default...
  // unless an operator deliberately exported it for an audited suite
  // run, which is supported and should not fail the test.
  const char* env = std::getenv("OSCAR_AUDIT");
  const bool env_on =
      env != nullptr && (std::string(env) == "1" || std::string(env) == "true" ||
                         std::string(env) == "on");
  EXPECT_EQ(AuditEnabled(), env_on);
  const bool previous = SetAuditEnabledForTest(true);
  EXPECT_TRUE(AuditEnabled());
  SetAuditEnabledForTest(previous);
  EXPECT_EQ(AuditEnabled(), env_on);
}

TEST(NetworkInvariants, HoldAcrossLifecycle) {
  for (uint64_t seed = 42; seed <= 45; ++seed) {
    Network net = LinkedNetwork(200, seed);
    EXPECT_TRUE(net.CheckInvariants().ok()) << "grown, seed " << seed;

    Rng rng(seed ^ 0xfeed);
    auto crashed = CrashFraction(&net, 0.15, &rng);
    ASSERT_TRUE(crashed.ok());
    EXPECT_TRUE(net.CheckInvariants().ok()) << "churned, seed " << seed;

    for (PeerId id : net.AlivePeers()) net.PruneDeadLinks(id);
    EXPECT_TRUE(net.CheckInvariants().ok()) << "pruned, seed " << seed;

    net.ClearAllLongLinks();
    EXPECT_TRUE(net.CheckInvariants().ok()) << "cleared, seed " << seed;
  }
}

TEST(NetworkInvariants, HoldAfterGrowthWithRewiresAndBatchedJoins) {
  for (const uint32_t join_batch : {0u, 16u}) {
    GrowthConfig config;
    config.target_size = 300;
    config.queries_per_checkpoint = 1;
    config.seed = 42;
    auto keys = MakeKeyDistribution("uniform");
    auto degrees = MakePaperDegreeDistribution("realistic");
    ASSERT_TRUE(keys.ok());
    ASSERT_TRUE(degrees.ok());
    config.key_distribution = std::move(keys).value();
    config.degree_distribution = std::move(degrees).value();
    config.overlay = OscarFactory()();
    config.join_batch = join_batch;
    Simulation sim(std::move(config));
    ASSERT_TRUE(sim.Run().ok());
    EXPECT_TRUE(sim.network().CheckInvariants().ok())
        << "join_batch " << join_batch;
  }
}

TEST(NetworkInvariants, DetectDegreeCounterDrift) {
  Network net = LinkedNetwork(60, 42);
  const PeerId victim = PeerWithLiveOutLink(net);
  NetworkTestAccess::BumpOutCount(&net, victim);
  const Status status = net.CheckInvariants();
  EXPECT_FALSE(status.ok());
}

TEST(NetworkInvariants, DetectInCountDrift) {
  Network net = LinkedNetwork(60, 42);
  // Inflating an in-counter fabricates an in-link entry (whatever slab
  // garbage sits past the live prefix) with no matching out-link.
  const PeerId victim = PeerWithLiveOutLink(net);
  const PeerId target = net.OutLinks(victim)[0];
  NetworkTestAccess::BumpInCount(&net, target);
  EXPECT_FALSE(net.CheckInvariants().ok());
}

TEST(NetworkInvariants, DetectReciprocityBreak) {
  Network net = LinkedNetwork(60, 43);
  // Redirect an out-link at a different alive target without updating
  // the target's in row: reciprocity must flag one side or the other.
  const PeerId victim = PeerWithLiveOutLink(net);
  const PeerSpan out = net.OutLinks(victim);
  PeerId other = 0;
  for (PeerId id = 0; id < net.size(); ++id) {
    if (id != victim && net.alive(id) &&
        std::find(out.begin(), out.end(), id) == out.end()) {
      other = id;
      break;
    }
  }
  NetworkTestAccess::SetOutSlabEntry(&net, victim, 0, other);
  EXPECT_FALSE(net.CheckInvariants().ok());
}

TEST(NetworkInvariants, DetectSelfLink) {
  Network net = LinkedNetwork(60, 44);
  const PeerId victim = PeerWithLiveOutLink(net);
  NetworkTestAccess::SetOutSlabEntry(&net, victim, 0, victim);
  EXPECT_FALSE(net.CheckInvariants().ok());
}

TEST(NetworkInvariants, DetectRingLivenessMismatch) {
  Network net = LinkedNetwork(60, 45);
  // Flip a peer dead without removing it from the ring: either the
  // ring-size count or the dead-peer-on-ring check must fire.
  NetworkTestAccess::FlipAlive(&net, net.AlivePeers().front());
  EXPECT_FALSE(net.CheckInvariants().ok());
}

TEST(NetworkInvariants, DetectRingKeyMismatch) {
  Network net = LinkedNetwork(60, 42);
  NetworkTestAccess::CorruptKey(&net, net.AlivePeers().front());
  EXPECT_FALSE(net.CheckInvariants().ok());
}

TEST(SnapshotValidate, PassesOnHealthySnapshots) {
  for (uint64_t seed = 42; seed <= 45; ++seed) {
    Network net = LinkedNetwork(200, seed);
    EXPECT_TRUE(TopologySnapshot(net).Validate().ok()) << "intact " << seed;
    Rng rng(seed);
    ASSERT_TRUE(CrashFraction(&net, 0.2, &rng).ok());
    // Frozen mid-churn: dangling out-edges to dead peers are legal.
    EXPECT_TRUE(TopologySnapshot(net).Validate().ok()) << "crashed " << seed;
  }
}

TEST(SnapshotValidate, PassesOnWideOffsetSnapshots) {
  Network net = LinkedNetwork(120, 42);
  const uint64_t previous = TopologySnapshot::SetWideOffsetThresholdForTest(8);
  const TopologySnapshot wide(net);
  TopologySnapshot::SetWideOffsetThresholdForTest(previous);
  ASSERT_TRUE(wide.wide_offsets());
  EXPECT_TRUE(wide.Validate().ok());
}

TEST(SnapshotValidate, DetectsEachCorruptionClass) {
  Network net = LinkedNetwork(80, 42);
  {
    TopologySnapshot snap(net);
    TopologySnapshotTestAccess::FlipAlive(&snap, net.AlivePeers().front());
    EXPECT_FALSE(snap.Validate().ok()) << "liveness flip";
  }
  {
    TopologySnapshot snap(net);
    TopologySnapshotTestAccess::CorruptOutEdge(
        &snap, 0, static_cast<PeerId>(net.size() + 1000));
    EXPECT_FALSE(snap.Validate().ok()) << "edge beyond peer table";
  }
  {
    TopologySnapshot snap(net);
    TopologySnapshotTestAccess::BreakOffsetMonotonicity(&snap, 1);
    EXPECT_FALSE(snap.Validate().ok()) << "offset monotonicity";
  }
  {
    TopologySnapshot snap(net);
    TopologySnapshotTestAccess::CorruptRingPos(&snap,
                                               net.AlivePeers().front());
    EXPECT_FALSE(snap.Validate().ok()) << "ring_pos drift";
  }
}

TEST(RestoreIdentity, DeltaRestoreMatchesFullRestore) {
  for (uint64_t seed = 42; seed <= 45; ++seed) {
    Network net = LinkedNetwork(150, seed);
    const TopologySnapshot snap(net);
    Network scratch;
    snap.RestoreInto(&scratch);  // Full rebuild.
    EXPECT_TRUE(snap.CheckRestoreIdentity(scratch).ok()) << "full " << seed;

    // Mutate (churn + prune + fresh joins), then delta-restore: the
    // journal path must heal back to full-restore identity.
    Rng rng(seed ^ 0xabcdef);
    ASSERT_TRUE(CrashFraction(&scratch, 0.25, &rng).ok());
    for (PeerId id : scratch.AlivePeers()) scratch.PruneDeadLinks(id);
    scratch.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{4, 4});
    snap.RestoreInto(&scratch);  // Delta repair.
    EXPECT_TRUE(snap.CheckRestoreIdentity(scratch).ok()) << "delta " << seed;
    EXPECT_TRUE(scratch.CheckInvariants().ok()) << "restored net " << seed;
  }
}

TEST(RestoreIdentity, DetectsDivergence) {
  Network net = LinkedNetwork(80, 42);
  const TopologySnapshot snap(net);
  Network scratch;
  snap.RestoreInto(&scratch);
  const PeerId victim = PeerWithLiveOutLink(scratch);
  NetworkTestAccess::SetOutSlabEntry(&scratch, victim, 0, victim);
  EXPECT_FALSE(snap.CheckRestoreIdentity(scratch).ok());
}

// The audited pipelines must not perturb results: the audit reads
// state, never draws from any stream. Growing the same config with
// audits on and off must produce byte-identical topologies.
TEST(AuditTransparency, AuditedGrowthIsByteIdentical) {
  const auto grow = [](bool audited) {
    const bool previous = SetAuditEnabledForTest(audited);
    GrowthConfig config;
    config.target_size = 250;
    config.queries_per_checkpoint = 1;
    config.seed = 42;
    auto keys = MakeKeyDistribution("uniform");
    auto degrees = MakePaperDegreeDistribution("realistic");
    EXPECT_TRUE(keys.ok());
    EXPECT_TRUE(degrees.ok());
    config.key_distribution = std::move(keys).value();
    config.degree_distribution = std::move(degrees).value();
    config.overlay = OscarFactory()();
    config.join_batch = 8;
    Simulation sim(std::move(config));
    EXPECT_TRUE(sim.Run().ok());
    const TopologySnapshot snap(sim.network());
    SetAuditEnabledForTest(previous);
    return snap;
  };
  const TopologySnapshot with_audit = grow(true);
  const TopologySnapshot without_audit = grow(false);
  ASSERT_EQ(with_audit.size(), without_audit.size());
  for (PeerId id = 0; id < with_audit.size(); ++id) {
    ASSERT_EQ(with_audit.key(id), without_audit.key(id)) << "peer " << id;
    const PeerSpan a = with_audit.OutLinks(id);
    const PeerSpan b = without_audit.OutLinks(id);
    ASSERT_EQ(a.size(), b.size()) << "peer " << id;
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "peer " << id;
  }
}

}  // namespace
}  // namespace oscar

// Ring-arithmetic edge cases: wrap-around distances, the 1.0 -> 0.0
// seam, and ownership on degenerate (1- and 2-peer) networks.

#include <gtest/gtest.h>

#include "core/key_id.h"
#include "core/network.h"

namespace oscar {
namespace {

TEST(KeyIdTest, FromUnitRoundTrips) {
  EXPECT_EQ(KeyId::FromUnit(0.0).raw, 0u);
  EXPECT_NEAR(KeyId::FromUnit(0.25).unit(), 0.25, 1e-12);
  EXPECT_NEAR(KeyId::FromUnit(0.999999).unit(), 0.999999, 1e-9);
}

TEST(KeyIdTest, FromUnitWrapsOutOfRangeInputs) {
  EXPECT_NEAR(KeyId::FromUnit(1.25).unit(), 0.25, 1e-12);
  EXPECT_NEAR(KeyId::FromUnit(-0.25).unit(), 0.75, 1e-12);
  // Exactly 1.0 is the same ring position as 0.0.
  EXPECT_EQ(KeyId::FromUnit(1.0).raw, 0u);
}

TEST(KeyIdTest, WrapAroundDistance) {
  const KeyId a = KeyId::FromUnit(0.9);
  const KeyId b = KeyId::FromUnit(0.1);
  // Clockwise from 0.9 crosses the seam: 0.2 of the ring.
  EXPECT_NEAR(static_cast<double>(ClockwiseDistance(a, b)) /
                  18446744073709551616.0,
              0.2, 1e-9);
  // Shortest way is the same 0.2, not the 0.8 detour.
  EXPECT_NEAR(static_cast<double>(RingDistance(a, b)) /
                  18446744073709551616.0,
              0.2, 1e-9);
  EXPECT_EQ(RingDistance(a, b), RingDistance(b, a));
  EXPECT_EQ(RingDistance(a, a), 0u);
}

TEST(KeyIdTest, SegmentMembershipAcrossSeam) {
  const KeyId from = KeyId::FromUnit(0.9);
  const KeyId to = KeyId::FromUnit(0.1);
  EXPECT_TRUE(InClockwiseSegment(KeyId::FromUnit(0.95), from, to));
  EXPECT_TRUE(InClockwiseSegment(KeyId::FromUnit(0.05), from, to));
  EXPECT_TRUE(InClockwiseSegment(from, from, to));  // Half-open: from in.
  EXPECT_FALSE(InClockwiseSegment(to, from, to));   // to out.
  EXPECT_FALSE(InClockwiseSegment(KeyId::FromUnit(0.5), from, to));
}

TEST(RingTest, CountInSegmentAcrossSeam) {
  Ring ring;
  // Peers at 0.05, 0.5, 0.95.
  ring.Insert(KeyId::FromUnit(0.05), 0);
  ring.Insert(KeyId::FromUnit(0.5), 1);
  ring.Insert(KeyId::FromUnit(0.95), 2);
  EXPECT_EQ(ring.CountInSegment(KeyId::FromUnit(0.9), KeyId::FromUnit(0.1)),
            2u);
  EXPECT_EQ(ring.CountInSegment(KeyId::FromUnit(0.1), KeyId::FromUnit(0.9)),
            1u);
  // Full sweep from any point counts everyone ahead of it.
  EXPECT_EQ(ring.CountInSegment(KeyId::FromUnit(0.0), KeyId::FromUnit(0.999)),
            3u);
  // Empty segment convention.
  const KeyId point = KeyId::FromUnit(0.3);
  EXPECT_EQ(ring.CountInSegment(point, point), 0u);
}

TEST(RingTest, NthInSegmentWrapsTheSeam) {
  Ring ring;
  ring.Insert(KeyId::FromUnit(0.05), 0);
  ring.Insert(KeyId::FromUnit(0.5), 1);
  ring.Insert(KeyId::FromUnit(0.95), 2);
  const KeyId from = KeyId::FromUnit(0.9);
  const KeyId to = KeyId::FromUnit(0.1);
  ASSERT_TRUE(ring.NthInSegment(from, to, 0).has_value());
  EXPECT_EQ(*ring.NthInSegment(from, to, 0), 2u);
  ASSERT_TRUE(ring.NthInSegment(from, to, 1).has_value());
  EXPECT_EQ(*ring.NthInSegment(from, to, 1), 0u);
  EXPECT_FALSE(ring.NthInSegment(from, to, 2).has_value());
}

TEST(NetworkTest, OwnerOfOnePeerNetwork) {
  Network net;
  const PeerId only = net.Join(KeyId::FromUnit(0.5), DegreeCaps{4, 4});
  // The single peer owns every key, wherever it falls.
  for (double u : {0.0, 0.25, 0.5, 0.75, 0.999}) {
    ASSERT_TRUE(net.OwnerOf(KeyId::FromUnit(u)).has_value());
    EXPECT_EQ(*net.OwnerOf(KeyId::FromUnit(u)), only);
  }
  // And has no ring neighbors.
  EXPECT_FALSE(net.SuccessorOf(only).has_value());
  EXPECT_FALSE(net.PredecessorOf(only).has_value());
}

TEST(NetworkTest, OwnerOfTwoPeerNetworkSplitsByDistance) {
  Network net;
  const PeerId at_20 = net.Join(KeyId::FromUnit(0.2), DegreeCaps{4, 4});
  const PeerId at_80 = net.Join(KeyId::FromUnit(0.8), DegreeCaps{4, 4});
  // Closest-peer ownership: 0.4 is nearer to 0.2; 0.6 nearer to 0.8;
  // 0.99 wraps around to be nearest to 0.2? No: |0.99-0.8| = 0.19,
  // wrap distance to 0.2 is 0.21 -> owner is the peer at 0.8.
  EXPECT_EQ(*net.OwnerOf(KeyId::FromUnit(0.4)), at_20);
  EXPECT_EQ(*net.OwnerOf(KeyId::FromUnit(0.6)), at_80);
  EXPECT_EQ(*net.OwnerOf(KeyId::FromUnit(0.99)), at_80);
  EXPECT_EQ(*net.OwnerOf(KeyId::FromUnit(0.05)), at_20);
  // Each is the other's successor and predecessor.
  EXPECT_EQ(*net.SuccessorOf(at_20), at_80);
  EXPECT_EQ(*net.PredecessorOf(at_20), at_80);
}

TEST(NetworkTest, OwnerOfEmptyNetworkIsNull) {
  Network net;
  EXPECT_FALSE(net.OwnerOf(KeyId::FromUnit(0.5)).has_value());
}

TEST(NetworkTest, LongLinkCapsEnforced) {
  Network net;
  const PeerId a = net.Join(KeyId::FromUnit(0.1), DegreeCaps{1, 2});
  const PeerId b = net.Join(KeyId::FromUnit(0.5), DegreeCaps{1, 2});
  const PeerId c = net.Join(KeyId::FromUnit(0.9), DegreeCaps{1, 2});
  EXPECT_FALSE(net.AddLongLink(a, a));       // Self.
  EXPECT_TRUE(net.AddLongLink(a, b));
  EXPECT_FALSE(net.AddLongLink(a, b));       // Duplicate.
  EXPECT_FALSE(net.AddLongLink(c, b));       // b's in-cap (1) full.
  EXPECT_TRUE(net.AddLongLink(a, c));
  EXPECT_FALSE(net.AddLongLink(a, c));       // a's out-cap (2) full.
  EXPECT_EQ(net.RemainingOutBudget(a), 0u);
  net.ClearLongLinks(a);
  EXPECT_EQ(net.RemainingOutBudget(a), 2u);
  EXPECT_EQ(net.in_degree(b), 0u);           // In-degree released.
}

}  // namespace
}  // namespace oscar

#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include "overlay/kleinberg/kleinberg_overlay.h"
#include "sim/fault_state.h"
#include "sim/message_sim.h"

namespace oscar {
namespace {

// ---------------------------------------------------------------- parser

TEST(FaultPlanParseTest, AcceptsEveryKindWithDefaults) {
  auto plan = ParseFaultPlan(
      "crash@120:0.25,0.1;"
      "partition@80+200:0.0,0.3,0.5,0.3;"
      "slow@40+60:0.6,0.2");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().faults.size(), 3u);

  const FaultSpec& crash = plan.value().faults[0];
  EXPECT_EQ(crash.kind, FaultKind::kRegionCrash);
  EXPECT_DOUBLE_EQ(crash.at_ms, 120.0);
  EXPECT_DOUBLE_EQ(crash.duration_ms, 0.0);
  EXPECT_DOUBLE_EQ(crash.a.span, 0.1);
  EXPECT_EQ(crash.Label(), "crash@120");

  const FaultSpec& cut = plan.value().faults[1];
  EXPECT_EQ(cut.kind, FaultKind::kPartition);
  EXPECT_DOUBLE_EQ(cut.duration_ms, 200.0);
  EXPECT_DOUBLE_EQ(cut.severity, 1.0);  // Loss defaults to a full cut.
  EXPECT_TRUE(cut.symmetric);
  EXPECT_EQ(cut.Label(), "partition@80+200");

  const FaultSpec& slow = plan.value().faults[2];
  EXPECT_EQ(slow.kind, FaultKind::kSlowdown);
  EXPECT_DOUBLE_EQ(slow.severity, 25.0);  // Default multiplier.
  EXPECT_EQ(slow.Label(), "slow@40+60");
}

TEST(FaultPlanParseTest, AcceptsExplicitSeverities) {
  auto plan = ParseFaultPlan(
      "partition@10+20:0.0,0.25,0.5,0.25,0.8;slow@5+5:0.1,0.2,40");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan.value().faults[0].severity, 0.8);
  EXPECT_DOUBLE_EQ(plan.value().faults[1].severity, 40.0);
}

TEST(FaultPlanParseTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                                      // Empty plan.
      "crash@120:0.25,0.1;",                   // Trailing separator.
      "meteor@120:0.25,0.1",                   // Unknown kind.
      "crash120:0.25,0.1",                     // Missing '@'.
      "crash@120",                             // Missing ':'.
      "crash@abc:0.25,0.1",                    // Bad time.
      "crash@-5:0.25,0.1",                     // Negative time.
      "crash@120+60:0.25,0.1",                 // Crashes can't heal.
      "crash@120:0.25",                        // Missing span.
      "crash@120:0.25,1.0",                    // Whole-ring crash.
      "crash@120:1.25,0.1",                    // Center out of [0,1).
      "crash@120:0.25,0.1,9",                  // Extra field.
      "partition@80+200:0.0,0.3,0.5",          // Too few fields.
      "partition@80+200:0.0,0.3,0.5,0.3,1.5",  // Loss > 1.
      "partition@80+0:0.0,0.3,0.5,0.3",        // Zero duration.
      "slow@40+60:0.6,0.2,0.5",                // Multiplier < 1.
      "slow@40+60:0.6,",                       // Empty field.
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(ParseFaultPlan(spec).ok()) << spec;
  }
}

// ------------------------------------------------------- fault switchboard

TEST(FaultStateTest, RegionMembershipWrapsTheRing) {
  const RegionSpec wrapping{KeyId::FromUnit(0.9), 0.2};  // [0.9, 0.1).
  EXPECT_TRUE(wrapping.Contains(KeyId::FromUnit(0.95)));
  EXPECT_TRUE(wrapping.Contains(KeyId::FromUnit(0.05)));
  EXPECT_FALSE(wrapping.Contains(KeyId::FromUnit(0.5)));
  const RegionSpec nothing{KeyId::FromUnit(0.5), 0.0};
  EXPECT_FALSE(nothing.Contains(KeyId::FromUnit(0.5)));
  const RegionSpec everything{KeyId::FromUnit(0.5), 1.0};
  EXPECT_TRUE(everything.Contains(KeyId::FromUnit(0.25)));
}

TEST(FaultStateTest, WorstRuleWinsAndHealDisarmsById) {
  ActiveFaults faults;
  EXPECT_TRUE(faults.empty());
  const RegionSpec left{KeyId::FromUnit(0.0), 0.5};
  const RegionSpec right{KeyId::FromUnit(0.5), 0.5};
  faults.AddPartition(0, left, right, 0.4);
  faults.AddPartition(1, left, right, 0.9);  // Overlapping, worse.
  const KeyId src = KeyId::FromUnit(0.25);
  const KeyId dst = KeyId::FromUnit(0.75);
  EXPECT_DOUBLE_EQ(faults.LossFor(src, dst), 0.9);
  EXPECT_DOUBLE_EQ(faults.LossFor(dst, src), 0.0);  // Directed rule.
  faults.AddSlowdown(2, right, 8.0);
  faults.AddSlowdown(3, right, 3.0);
  EXPECT_DOUBLE_EQ(faults.SlowMultiplierFor(dst), 8.0);
  EXPECT_DOUBLE_EQ(faults.SlowMultiplierFor(src), 1.0);
  faults.Heal(1);
  EXPECT_DOUBLE_EQ(faults.LossFor(src, dst), 0.4);  // Rule 0 remains.
  faults.Heal(0);
  faults.Heal(2);
  faults.Heal(3);
  EXPECT_TRUE(faults.empty());
}

// ------------------------------------------------------------- injector

/// Captures appended events for assertions.
class VectorTraceSink : public BasicTraceSink {
 public:
  void Append(const TraceEvent& event) override { events.push_back(event); }
  std::vector<TraceEvent> events;
};

Network LinkedNetwork(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  return net;
}

TEST(FaultInjectorTest, InjectsAndHealsInVirtualTime) {
  Network net = LinkedNetwork(200, 51);
  const size_t alive_before = net.alive_count();
  EventEngine engine;
  ActiveFaults active;
  VectorTraceSink sink;
  FaultInjector injector(&engine, &net, &active, &sink);
  auto plan = ParseFaultPlan(
      "partition@10+20:0.0,0.3,0.5,0.3;crash@25:0.25,0.1");
  ASSERT_TRUE(plan.ok());
  injector.Schedule(plan.value());

  const KeyId src = KeyId::FromUnit(0.1);
  const KeyId dst = KeyId::FromUnit(0.6);
  double loss_at_15 = -1.0;
  double loss_at_35 = -1.0;
  size_t alive_at_35 = 0;
  engine.ScheduleAt(15.0, [&] { loss_at_15 = active.LossFor(src, dst); });
  engine.ScheduleAt(35.0, [&] {
    loss_at_35 = active.LossFor(src, dst);
    alive_at_35 = net.alive_count();
  });
  engine.Run();

  EXPECT_DOUBLE_EQ(loss_at_15, 1.0);  // Armed mid-window.
  EXPECT_DOUBLE_EQ(loss_at_35, 0.0);  // Healed after +20.
  EXPECT_TRUE(active.empty());
  EXPECT_LT(alive_at_35, alive_before);  // The crash landed.
  EXPECT_TRUE(injector.status().ok());

  ASSERT_EQ(injector.injected().size(), 2u);
  const InjectedFault& cut = injector.injected()[0];
  EXPECT_EQ(cut.label, "partition@10+20");
  EXPECT_DOUBLE_EQ(cut.heal_ms, 30.0);
  EXPECT_EQ(cut.crashed, 0u);
  const InjectedFault& crash = injector.injected()[1];
  EXPECT_DOUBLE_EQ(crash.heal_ms, -1.0);  // Crashes never heal.
  EXPECT_EQ(crash.crashed, alive_before - alive_at_35);

  // Trace rows: inject, crash-inject, heal — in virtual-time order.
  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].kind, TraceKind::kFaultInject);
  EXPECT_EQ(sink.events[0].info, 0u);
  EXPECT_EQ(sink.events[1].kind, TraceKind::kFaultInject);
  EXPECT_EQ(sink.events[1].info, 1u);
  EXPECT_EQ(sink.events[2].kind, TraceKind::kFaultHeal);
  EXPECT_EQ(sink.events[2].t_us, TraceTimeUs(30.0));
}

// ----------------------------------------------- through the message engine

TEST(FaultMessageSimTest, FullDirectedCutFailsLookupsUntilHealed) {
  Network net = LinkedNetwork(100, 52);
  EventEngine engine;
  Rng rng(53);
  ActiveFaults active;
  // A whole-ring cut: every transmission drops while the rule is armed.
  active.AddPartition(0, {KeyId::FromUnit(0.0), 1.0},
                      {KeyId::FromUnit(0.0), 1.0}, 1.0);
  MessageSimOptions options;
  options.zero_latency = true;
  options.service_ms = 0.0;
  options.timeout_ms = 10.0;
  options.max_retries = 1;
  options.faults = &active;
  MessageSim sim(&engine, &net, options, &rng);
  const std::vector<PeerId> alive = net.AlivePeers();
  const PeerId source = alive[0];
  const KeyId target = net.key(alive[alive.size() / 2]);
  ASSERT_NE(*net.OwnerOf(target), source);
  sim.SubmitLookupAt(0.0, source, target);
  // The same lookup resubmitted after the heal: identical path, no loss.
  engine.ScheduleAt(100.0, [&active] { active.Heal(0); });
  sim.SubmitLookupAt(200.0, source, target);
  engine.Run();
  ASSERT_EQ(sim.outcomes().size(), 2u);
  EXPECT_FALSE(sim.outcomes()[0].success);  // Cut: retries exhausted.
  EXPECT_TRUE(sim.outcomes()[1].success);   // Healed: clean delivery.
}

TEST(FaultMessageSimTest, SlowdownMultipliesServiceTime) {
  auto run_latency = [](double multiplier) {
    Network net = LinkedNetwork(100, 54);
    EventEngine engine;
    Rng rng(55);
    ActiveFaults active;
    if (multiplier > 1.0) {
      active.AddSlowdown(0, {KeyId::FromUnit(0.0), 1.0}, multiplier);
    }
    MessageSimOptions options;
    options.zero_latency = true;
    options.service_ms = 10.0;
    options.faults = &active;
    MessageSim sim(&engine, &net, options, &rng);
    const std::vector<PeerId> alive = net.AlivePeers();
    const KeyId target = net.key(alive[alive.size() / 2]);
    sim.SubmitLookupAt(0.0, alive[0], target);
    engine.Run();
    EXPECT_EQ(sim.outcomes().size(), 1u);
    EXPECT_TRUE(sim.outcomes()[0].success);
    return sim.outcomes()[0].latency_ms;
  };
  const double base = run_latency(1.0);
  ASSERT_GT(base, 0.0);
  // Same seed, same path, every service 5x slower: latency scales by
  // exactly the multiplier (zero latency leaves only service time).
  EXPECT_DOUBLE_EQ(run_latency(5.0), 5.0 * base);
}

}  // namespace
}  // namespace oscar

// Join / CrashFraction invariants under a fixed seed.

#include <gtest/gtest.h>

#include "churn/churn.h"
#include "degree/constant_degree.h"
#include "keyspace/key_distribution.h"
#include "overlay/kleinberg/kleinberg_overlay.h"

namespace oscar {
namespace {

Network GrowUniform(size_t n, uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{8, 8});
  }
  return net;
}

TEST(ChurnTest, CrashFractionCrashesExactCount) {
  Network net = GrowUniform(100, 7);
  Rng rng(11);
  auto crashed = CrashFraction(&net, 0.33, &rng);
  ASSERT_TRUE(crashed.ok());
  EXPECT_EQ(crashed.value(), 33u);
  EXPECT_EQ(net.alive_count(), 67u);
  // The ring index and the per-peer alive flags must agree.
  size_t alive_flags = 0;
  for (size_t id = 0; id < net.size(); ++id) {
    if (net.alive(static_cast<PeerId>(id))) ++alive_flags;
  }
  EXPECT_EQ(alive_flags, net.alive_count());
}

TEST(ChurnTest, CrashFractionIsDeterministicPerSeed) {
  Network a = GrowUniform(64, 3);
  Network b = GrowUniform(64, 3);
  Rng rng_a(5), rng_b(5);
  ASSERT_TRUE(CrashFraction(&a, 0.25, &rng_a).ok());
  ASSERT_TRUE(CrashFraction(&b, 0.25, &rng_b).ok());
  for (size_t id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.alive(static_cast<PeerId>(id)),
              b.alive(static_cast<PeerId>(id)));
  }
}

TEST(ChurnTest, CrashFractionNeverKillsEveryone) {
  Network net = GrowUniform(3, 9);
  Rng rng(1);
  auto crashed = CrashFraction(&net, 0.99, &rng);
  ASSERT_TRUE(crashed.ok());
  EXPECT_GE(net.alive_count(), 1u);
}

TEST(ChurnTest, CrashFractionRejectsBadInput) {
  Network net = GrowUniform(10, 2);
  Rng rng(1);
  EXPECT_FALSE(CrashFraction(&net, -0.1, &rng).ok());
  EXPECT_FALSE(CrashFraction(&net, 1.0, &rng).ok());
}

TEST(ChurnTest, CrashReleasesInDegreeHeldByCrashedPeers) {
  Network net = GrowUniform(20, 4);
  Rng rng(6);
  KleinbergOverlay overlay;
  for (PeerId id : net.AlivePeers()) {
    ASSERT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  ASSERT_TRUE(CrashFraction(&net, 0.5, &rng).ok());
  // Sum of alive peers' long_in must equal the number of alive->alive
  // long links (dangling links from dead peers were released).
  size_t in_sum = 0, alive_links = 0;
  for (PeerId id : net.AlivePeers()) {
    in_sum += net.in_degree(id);
    for (PeerId t : net.OutLinks(id)) {
      if (net.alive(t)) ++alive_links;
    }
  }
  EXPECT_EQ(in_sum, alive_links);
}

TEST(ChurnTest, RollingChurnKeepsPopulationStable) {
  Network net = GrowUniform(50, 8);
  Rng rng(10);
  UniformKeyDistribution keys;
  auto degrees = ConstantDegreeDistribution::Make(8, 8);
  ASSERT_TRUE(degrees.ok());
  KleinbergOverlay overlay;
  RollingChurnOptions options;
  options.leaves_per_round = 5;
  options.joins_per_round = 5;
  options.rounds = 4;
  auto report = RollingChurn(
      &net, options, keys, degrees.value(),
      [&overlay](Network* n, PeerId id, Rng* r) {
        return overlay.BuildLinks(n, id, r);
      },
      &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().left, 20u);
  EXPECT_EQ(report.value().joined, 20u);
  EXPECT_EQ(net.alive_count(), 50u);
}

}  // namespace
}  // namespace oscar

// Determinism contract of parallel checkpoint rewiring: a growth run
// is byte-identical at any OSCAR_THREADS because every peer plans from
// its own counter-forked rng stream against the same frozen snapshot,
// and plans are applied in a salt-shuffled deterministic order. Grown
// here at
// fig1c smoke scale with 1 vs 4 worker threads, asserting identical
// GrowthResult serialization AND structurally identical final networks.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/network.h"
#include "core/rng.h"
#include "core/simulation.h"
#include "overlay/oscar/oscar_overlay.h"

namespace oscar {
namespace {

Result<GrowthConfig> Fig1cScaleConfig(uint32_t threads,
                                      uint64_t seed = 42,
                                      uint32_t join_batch = 0) {
  auto keys = MakeKeyDistribution("gnutella");
  if (!keys.ok()) return keys.status();
  auto degrees = MakePaperDegreeDistribution("realistic");
  if (!degrees.ok()) return degrees.status();
  GrowthConfig config;
  config.target_size = 600;
  config.queries_per_checkpoint = 200;
  config.seed = seed;
  config.checkpoints = {150, 300, 600};
  config.key_distribution = std::move(keys).value();
  config.degree_distribution = std::move(degrees).value();
  config.overlay = std::make_shared<OscarOverlay>();
  config.rewire_threads = threads;
  config.join_batch = join_batch;
  return config;
}

/// Full-precision, locale-free serialization: %a prints the exact bits
/// of every double, so equal strings means byte-identical results.
std::string Serialize(const GrowthResult& result) {
  std::ostringstream os;
  char buffer[64];
  const auto hex = [&buffer](double v) {
    std::snprintf(buffer, sizeof(buffer), "%a", v);
    return std::string(buffer);
  };
  for (const CheckpointResult& checkpoint : result.checkpoints) {
    os << checkpoint.network_size << '|'
       << hex(checkpoint.search.avg_cost) << '|'
       << hex(checkpoint.search.p95_cost) << '|'
       << hex(checkpoint.search.avg_wasted) << '|'
       << hex(checkpoint.search.success_rate) << '|'
       << checkpoint.search.num_queries << '\n';
  }
  return os.str();
}

std::string SerializeTopology(const Network& net) {
  std::ostringstream os;
  for (PeerId id = 0; id < net.size(); ++id) {
    os << id << ':' << net.key(id).raw << '/' << net.alive(id);
    for (PeerId target : net.OutLinks(id)) os << ' ' << target;
    os << '\n';
  }
  return os.str();
}

TEST(ParallelRewireTest, GrowthIsByteIdenticalAcrossThreadCounts) {
  auto single_config = Fig1cScaleConfig(1);
  ASSERT_TRUE(single_config.ok()) << single_config.status();
  auto pooled_config = Fig1cScaleConfig(4);
  ASSERT_TRUE(pooled_config.ok()) << pooled_config.status();
  Simulation single(std::move(single_config).value());
  Simulation pooled(std::move(pooled_config).value());
  auto single_run = single.Run();
  ASSERT_TRUE(single_run.ok()) << single_run.status();
  auto pooled_run = pooled.Run();
  ASSERT_TRUE(pooled_run.ok()) << pooled_run.status();

  EXPECT_EQ(Serialize(single_run.value()), Serialize(pooled_run.value()));
  EXPECT_EQ(SerializeTopology(single.network()),
            SerializeTopology(pooled.network()));
  // And the sampling ledger, which is reduced in peer order from the
  // per-plan counters, must agree too.
  EXPECT_EQ(single.config().overlay->sampling_steps(),
            pooled.config().overlay->sampling_steps());
}

TEST(ParallelRewireTest, RewiredNetworkKeepsItsLinkBudgetsFilled) {
  // The plan/apply split must not starve out-degrees: apply-time cap
  // rejections are refilled from the plan's backup candidates, so the
  // realized mean out-degree stays close to the declared budget.
  auto config = Fig1cScaleConfig(4);
  ASSERT_TRUE(config.ok()) << config.status();
  Simulation sim(std::move(config).value());
  ASSERT_TRUE(sim.Run().ok());
  const Network& net = sim.network();
  uint64_t total_out = 0, total_budget = 0;
  for (PeerId id : net.AlivePeers()) {
    total_out += net.OutLinks(id).size();
    total_budget += net.caps(id).max_out;
  }
  EXPECT_GT(static_cast<double>(total_out),
            0.85 * static_cast<double>(total_budget));
  // Caps are enforced at apply exactly as in incremental construction.
  for (PeerId id : net.AlivePeers()) {
    EXPECT_LE(net.OutLinks(id).size(), net.caps(id).max_out);
    EXPECT_LE(net.in_degree(id), net.caps(id).max_in);
  }
}

TEST(ParallelRewireTest, BatchedJoinsAreByteIdenticalAcrossBatchAndThreads) {
  // The batch-size independence contract: k only sets the planning-wave
  // granularity — epoch snapshots refresh at alive-count thresholds, so
  // growing with waves of 16 must produce byte-for-byte the topology of
  // waves of 1, at any thread count. Seeds 42-45.
  for (uint64_t seed = 42; seed <= 45; ++seed) {
    std::string reference_topology, reference_result;
    struct Variant {
      uint32_t threads;
      uint32_t join_batch;
    };
    for (const Variant v :
         {Variant{1, 1}, Variant{1, 16}, Variant{4, 1}, Variant{4, 16}}) {
      auto config = Fig1cScaleConfig(v.threads, seed, v.join_batch);
      ASSERT_TRUE(config.ok()) << config.status();
      Simulation sim(std::move(config).value());
      auto run = sim.Run();
      ASSERT_TRUE(run.ok()) << run.status();
      const std::string topology = SerializeTopology(sim.network());
      const std::string serialized = Serialize(run.value());
      if (reference_topology.empty()) {
        reference_topology = topology;
        reference_result = serialized;
        continue;
      }
      EXPECT_EQ(reference_topology, topology)
          << "seed " << seed << " threads " << v.threads << " k "
          << v.join_batch;
      EXPECT_EQ(reference_result, serialized)
          << "seed " << seed << " threads " << v.threads << " k "
          << v.join_batch;
    }
  }
}

TEST(ParallelRewireTest, BatchedJoinsFillLinkBudgets) {
  // Plans drawn over a stale epoch snapshot must still land their
  // budgets at apply time (backup slots + p2c alternates absorb the
  // staleness) — batching may not starve the grown topology.
  auto config = Fig1cScaleConfig(4, 42, 32);
  ASSERT_TRUE(config.ok()) << config.status();
  Simulation sim(std::move(config).value());
  ASSERT_TRUE(sim.Run().ok());
  const Network& net = sim.network();
  uint64_t total_out = 0, total_budget = 0;
  for (PeerId id : net.AlivePeers()) {
    total_out += net.OutLinks(id).size();
    total_budget += net.caps(id).max_out;
  }
  EXPECT_GT(static_cast<double>(total_out),
            0.85 * static_cast<double>(total_budget));
  for (PeerId id : net.AlivePeers()) {
    EXPECT_LE(net.OutLinks(id).size(), net.caps(id).max_out);
    EXPECT_LE(net.in_degree(id), net.caps(id).max_in);
  }
}

TEST(ParallelRewireTest, ForkedStreamsAreStableAndDistinct) {
  // Fork is pure in (seed, stream, substream): same triple, same
  // stream; any coordinate change, a different one.
  Rng a = Rng::Fork(42, 3, 1001);
  Rng b = Rng::Fork(42, 3, 1001);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c = Rng::Fork(42, 3, 1002);
  Rng d = Rng::Fork(42, 4, 1001);
  Rng e = Rng::Fork(43, 3, 1001);
  Rng base = Rng::Fork(42, 3, 1001);
  EXPECT_NE(base.Next(), c.Next());
  EXPECT_NE(base.Next(), d.Next());
  EXPECT_NE(base.Next(), e.Next());
}

}  // namespace
}  // namespace oscar

#include <gtest/gtest.h>

#include "overlay/chord/chord_overlay.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "overlay/maintenance.h"
#include "overlay/mercury/mercury_overlay.h"
#include "overlay/oscar/oscar_overlay.h"
#include "churn/churn.h"
#include "sampling/oracle_sampler.h"

namespace oscar {
namespace {

Network UniformNetwork(size_t n, uint64_t seed, uint32_t degree = 8) {
  Network net;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    net.Join(KeyId::FromUnit(rng.NextDouble()), DegreeCaps{degree, degree});
  }
  return net;
}

TEST(OscarPartitionerTest, PartitionsCoverTheRingAndHalvePopulation) {
  Network net = UniformNetwork(512, 1);
  OscarOptions options;
  options.sampler = std::make_shared<OracleSegmentSampler>();
  options.samples_per_median = 17;
  OscarOverlay overlay(options);
  Rng rng(2);
  const PeerId u = net.AlivePeers().front();
  const auto partitions = overlay.partitioner().ComputePartitions(net, u, &rng);
  // log2(512) = 9 partitions, farthest first.
  ASSERT_GE(partitions.size(), 7u);
  ASSERT_LE(partitions.size(), 9u);
  size_t covered = 0;
  for (const RingSegment& segment : partitions) {
    covered += net.ring().CountInSegment(segment.from, segment.to);
  }
  EXPECT_EQ(covered, net.alive_count() - 1);  // Everyone but u.
  // The first partition holds roughly half the population.
  const size_t first =
      net.ring().CountInSegment(partitions[0].from, partitions[0].to);
  EXPECT_GT(first, net.alive_count() / 4);
  EXPECT_LT(first, 3 * net.alive_count() / 4);
}

TEST(OscarOverlayTest, BuildLinksFillsBudgetAndRespectsCaps) {
  Network net = UniformNetwork(256, 3);
  OscarOverlay overlay;
  Rng rng(4);
  for (PeerId id : net.AlivePeers()) {
    ASSERT_TRUE(overlay.BuildLinks(&net, id, &rng).ok());
  }
  size_t total_out = 0;
  for (PeerId id : net.AlivePeers()) {
    EXPECT_LE(net.OutLinks(id).size(), net.caps(id).max_out);
    EXPECT_LE(net.in_degree(id), net.caps(id).max_in);
    total_out += net.OutLinks(id).size();
  }
  // The vast majority of the budget gets placed on a uniform network.
  EXPECT_GT(total_out, net.alive_count() * 8 * 7 / 10);
  EXPECT_GT(overlay.sampling_steps(), 0u);
}

TEST(OscarOverlayTest, BuildLinksIsATopUp) {
  Network net = UniformNetwork(128, 5);
  OscarOverlay overlay;
  Rng rng(6);
  const PeerId u = net.AlivePeers().front();
  ASSERT_TRUE(overlay.BuildLinks(&net, u, &rng).ok());
  const PeerSpan out = net.OutLinks(u);
  const std::vector<PeerId> before(out.begin(), out.end());
  ASSERT_TRUE(overlay.BuildLinks(&net, u, &rng).ok());
  const PeerSpan after = net.OutLinks(u);
  EXPECT_EQ(std::vector<PeerId>(after.begin(), after.end()),
            before);  // Already full: no change.
}

TEST(BaselineOverlaysTest, BuildWithinCaps) {
  for (int variant = 0; variant < 3; ++variant) {
    Network net = UniformNetwork(200, 7 + static_cast<uint64_t>(variant));
    Rng rng(8);
    std::shared_ptr<Overlay> overlay;
    if (variant == 0) overlay = std::make_shared<MercuryOverlay>();
    if (variant == 1) overlay = std::make_shared<ChordOverlay>();
    if (variant == 2) overlay = std::make_shared<KleinbergOverlay>();
    for (PeerId id : net.AlivePeers()) {
      ASSERT_TRUE(overlay->BuildLinks(&net, id, &rng).ok());
    }
    size_t linked_peers = 0;
    for (PeerId id : net.AlivePeers()) {
      EXPECT_LE(net.OutLinks(id).size(), net.caps(id).max_out);
      EXPECT_LE(net.in_degree(id), net.caps(id).max_in);
      if (!net.OutLinks(id).empty()) ++linked_peers;
    }
    EXPECT_GT(linked_peers, net.alive_count() / 2) << overlay->name();
  }
}

TEST(MaintainerTest, RepairsDanglingLinksLazily) {
  Network net = UniformNetwork(300, 9);
  auto overlay = std::make_shared<OscarOverlay>();
  Rng rng(10);
  for (PeerId id : net.AlivePeers()) {
    ASSERT_TRUE(overlay->BuildLinks(&net, id, &rng).ok());
  }
  ASSERT_TRUE(CrashFraction(&net, 0.25, &rng).ok());
  Maintainer maintainer(overlay, MaintenanceOptions{});
  auto report = maintainer.RunRound(&net, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().pruned_links, 0u);
  // After the round no alive peer keeps a dangling link.
  for (PeerId id : net.AlivePeers()) {
    for (PeerId target : net.OutLinks(id)) {
      EXPECT_TRUE(net.alive(target));
    }
  }
}

TEST(MaintainerTest, PruneOnlyNeverSpendsSamplingBandwidth) {
  Network net = UniformNetwork(300, 13);
  auto overlay = std::make_shared<OscarOverlay>();
  Rng rng(14);
  for (PeerId id : net.AlivePeers()) {
    ASSERT_TRUE(overlay->BuildLinks(&net, id, &rng).ok());
  }
  ASSERT_TRUE(CrashFraction(&net, 0.25, &rng).ok());
  MaintenanceOptions options;
  options.prune_only = true;
  Maintainer maintainer(overlay, options);
  auto report = maintainer.RunRound(&net, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().pruned_links, 0u);
  EXPECT_EQ(report.value().rebuilt_peers, 0u);
  EXPECT_EQ(report.value().refreshed_peers, 0u);
  EXPECT_EQ(report.value().sampling_steps, 0u);
  EXPECT_FALSE(report.value().budget_exhausted);
  // Tables only shrank: someone is left with an unfilled budget.
  size_t under_budget = 0;
  for (PeerId id : net.AlivePeers()) {
    if (net.RemainingOutBudget(id) > 0) ++under_budget;
  }
  EXPECT_GT(under_budget, 0u);
}

TEST(MaintainerTest, SamplingBudgetExhaustsMidRound) {
  Network net = UniformNetwork(300, 15);
  auto overlay = std::make_shared<OscarOverlay>();
  Rng rng(16);
  for (PeerId id : net.AlivePeers()) {
    ASSERT_TRUE(overlay->BuildLinks(&net, id, &rng).ok());
  }
  ASSERT_TRUE(CrashFraction(&net, 0.25, &rng).ok());
  // A budget one rebuild can blow: the round must park at prune-only
  // partway through, and pruning still runs for every alive peer.
  MaintenanceOptions starved;
  starved.max_sampling_steps_per_round = 1;
  Maintainer maintainer(overlay, starved);
  auto report = maintainer.RunRound(&net, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().budget_exhausted);
  EXPECT_GT(report.value().pruned_links, 0u);
  EXPECT_GE(report.value().rebuilt_peers, 1u);
  EXPECT_LT(report.value().rebuilt_peers, net.alive_count());
  // The skipped peers keep their deficit; enough unbounded follow-up
  // rounds top everyone back up (each round repairs a prefix).
  MaintenanceOptions unbounded;
  Maintainer follow_up(overlay, unbounded);
  auto repaired = follow_up.RunRound(&net, &rng);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired.value().budget_exhausted);
  EXPECT_GT(repaired.value().rebuilt_peers, report.value().rebuilt_peers);
}

TEST(MaintainerTest, ValidatesOptions) {
  Network net = UniformNetwork(16, 11);
  Rng rng(12);
  MaintenanceOptions bad;
  bad.proactive_fraction = 1.5;
  Maintainer maintainer(std::make_shared<OscarOverlay>(), bad);
  EXPECT_FALSE(maintainer.RunRound(&net, &rng).ok());
  Maintainer null_overlay(nullptr, MaintenanceOptions{});
  EXPECT_FALSE(null_overlay.RunRound(&net, &rng).ok());
}

}  // namespace
}  // namespace oscar

#include "routing/greedy_router.h"

namespace oscar {

RouteResult GreedyRouter::Route(const Network& net, PeerId source,
                                KeyId target) const {
  RouteResult result;
  result.terminal = source;
  result.path.push_back(source);
  const auto owner = net.OwnerOf(target);
  if (!owner.has_value() || !net.peer(source).alive) return result;

  PeerId current = source;
  std::vector<PeerId> neighbors;
  // The ring guarantees strict progress, so the only loop bound needed
  // is a generous safety net against substrate bugs.
  const size_t max_steps = 4 * net.alive_count() + 16;
  for (size_t step = 0; step < max_steps; ++step) {
    if (current == *owner) {
      result.success = true;
      result.terminal = current;
      return result;
    }
    neighbors.clear();
    net.AppendNeighbors(current, &neighbors);
    const uint64_t here = RingDistance(net.peer(current).key, target);
    bool moved = false;
    PeerId best = current;
    uint64_t best_distance = here;
    for (PeerId candidate : neighbors) {
      const Peer& peer = net.peer(candidate);
      if (!peer.alive) continue;  // Dead probes are charged lazily below.
      const uint64_t d = RingDistance(peer.key, target);
      if (d < best_distance) {
        best = candidate;
        best_distance = d;
        moved = true;
      }
    }
    if (!moved) break;  // No strict progress: substrate violation.
    // Capacity-aware relaxation: any strictly-closer candidate within
    // 50% of the best distance makes comparable progress; prefer the
    // one with the largest declared in-budget.
    const uint64_t band =
        best_distance + best_distance / 2 < best_distance
            ? UINT64_MAX
            : best_distance + best_distance / 2;
    for (PeerId candidate : neighbors) {
      const Peer& peer = net.peer(candidate);
      if (!peer.alive || candidate == best) continue;
      const uint64_t d = RingDistance(peer.key, target);
      if (d < here && d <= band &&
          peer.caps.max_in > net.peer(best).caps.max_in) {
        best = candidate;
      }
    }
    best_distance = RingDistance(net.peer(best).key, target);
    // Charge probes for dead long links that looked strictly better than
    // the hop we ended up taking (the peer would have tried them first).
    for (PeerId candidate : neighbors) {
      const Peer& peer = net.peer(candidate);
      if (!peer.alive && RingDistance(peer.key, target) < best_distance) {
        ++result.wasted;
      }
    }
    current = best;
    ++result.hops;
    result.path.push_back(current);
  }
  result.terminal = current;
  result.success = current == *owner;
  return result;
}

}  // namespace oscar

#include "routing/greedy_router.h"

#include "routing/csr_stepper.h"
#include "routing/route_stepper.h"

namespace oscar {
namespace {

RouteResult Drive(GreedyStepper& stepper, NetworkView net, PeerId source,
                  KeyId target) {
  stepper.Start(net, source, target);
  // The ring guarantees strict progress, so the only loop bound needed
  // is a generous safety net against substrate bugs.
  const size_t max_steps = 4 * net.alive_count() + 16;
  for (size_t step = 0; step < max_steps && !stepper.done(); ++step) {
    stepper.Step(net);
  }
  if (!stepper.done()) stepper.Abandon(net);
  return stepper.result();
}

}  // namespace

RouteResult GreedyRouter::Route(NetworkView net, PeerId source,
                                KeyId target) const {
  // Snapshot backend: the CSR-specialized stepper reads the flat
  // arrays directly (identical routes, guarded by csr_stepper_test).
  if (net.snapshot() != nullptr) {
    CsrGreedyStepper stepper;
    return Drive(stepper, net, source, target);
  }
  GreedyStepper stepper;
  return Drive(stepper, net, source, target);
}

}  // namespace oscar

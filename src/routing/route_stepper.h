// Step-wise routing: the greedy and fault-aware-DFS algorithms exposed
// one hop at a time. A stepper owns the in-flight route state (current
// peer, visited set, accumulated cost) so a message-level simulator can
// interleave many concurrent lookups, price every hop individually, and
// inject failures *between* hops (a next-hop peer crashing while the
// message is in flight).
//
// GreedyRouter::Route and BacktrackingRouter::Route are implemented by
// driving these steppers to completion with the routers' historical
// message budgets, so whole-path results are unchanged by construction;
// the stepper-vs-route equivalence test guards the property.

#ifndef OSCAR_ROUTING_ROUTE_STEPPER_H_
#define OSCAR_ROUTING_ROUTE_STEPPER_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "routing/router.h"

namespace oscar {

enum class StepKind {
  kArrived,    // Current peer owns the target: lookup succeeded.
  kForward,    // Moved one hop to `to` (one forwarded message).
  kBacktrack,  // Returned the query to `to`, the previous hop (wasted).
  kStuck,      // No useful neighbor and nowhere to return: failed.
};

/// What happened during one Step call.
struct RouteStep {
  StepKind kind = StepKind::kStuck;
  PeerId from = 0;
  PeerId to = 0;             // Destination of kForward / kBacktrack.
  uint32_t dead_probes = 0;  // Dead neighbors first-probed in this step.
};

class RouteStepper {
 public:
  virtual ~RouteStepper() = default;

  /// Resets to a fresh route from `source` toward `target`. The stepper
  /// may be done() immediately (dead source, empty ring): a failure.
  virtual void Start(NetworkView net, PeerId source, KeyId target) = 0;

  /// Advances the route by one decision. Precondition: !done(). The
  /// target's owner is re-resolved against `net` on every call, so
  /// liveness changes between steps are observed (identical to the
  /// whole-path routers while `net` is unchanged during a route).
  virtual RouteStep Step(NetworkView net) = 0;

  virtual bool done() const = 0;

  /// Finishes the route in its current state — the caller's message
  /// budget ran out. Mirrors the whole-path routers' loop-exhaustion
  /// path: success iff the route happens to sit on the owner.
  virtual void Abandon(NetworkView net) = 0;

  /// Reverts the route one level after a failed delivery: the message
  /// to the current position never arrived (its holder crashed). The
  /// failed hop is refunded (when it was a forward) and recharged as
  /// one wasted message; routing resumes one level up. Only meaningful
  /// when the failed peer is now dead — a live peer would be re-chosen
  /// by a greedy re-step. Returns false (and does nothing) when the
  /// route is already at its origin with nothing to revert.
  virtual bool FailDelivery(NetworkView net) = 0;

  /// Accumulated route result; final once done().
  virtual const RouteResult& result() const = 0;

  /// Peer currently holding the query.
  virtual PeerId current() const = 0;

  virtual std::string name() const = 0;
};

using RouteStepperPtr = std::unique_ptr<RouteStepper>;

/// The GreedyRouter algorithm, one hop per Step (capacity-aware band
/// relaxation and lazy dead-probe charging included).
class GreedyStepper : public RouteStepper {
 public:
  void Start(NetworkView net, PeerId source, KeyId target) override;
  RouteStep Step(NetworkView net) override;
  bool done() const override { return done_; }
  void Abandon(NetworkView net) override;
  bool FailDelivery(NetworkView net) override;
  const RouteResult& result() const override { return result_; }
  PeerId current() const override { return current_; }
  std::string name() const override { return "greedy"; }

 protected:
  // Shared with CsrGreedyStepper (routing/csr_stepper.h), which reuses
  // Start/Abandon/FailDelivery and overrides only the hot Step.
  RouteResult result_;
  KeyId target_;
  PeerId current_ = 0;
  bool done_ = true;
  std::vector<PeerId> neighbors_;  // Scratch, reused across steps.
};

/// The BacktrackingRouter algorithm (fault-aware depth-first greedy),
/// one forward or backtrack move per Step.
class BacktrackingStepper : public RouteStepper {
 public:
  void Start(NetworkView net, PeerId source, KeyId target) override;
  RouteStep Step(NetworkView net) override;
  bool done() const override { return done_; }
  void Abandon(NetworkView net) override;
  bool FailDelivery(NetworkView net) override;
  const RouteResult& result() const override { return result_; }
  PeerId current() const override {
    return stack_.empty() ? source_ : stack_.back();
  }
  std::string name() const override { return "backtracking"; }

 protected:
  // Shared with CsrBacktrackingStepper (routing/csr_stepper.h).
  RouteResult result_;
  KeyId target_;
  PeerId source_ = 0;
  bool done_ = true;
  std::unordered_set<PeerId> visited_;
  std::unordered_set<PeerId> probed_dead_;
  std::vector<PeerId> stack_;
  std::vector<PeerId> neighbors_;  // Scratch.
  std::vector<std::pair<uint64_t, PeerId>> ordered_;  // Scratch.
};

/// Factory over the named steppers: "greedy" | "backtracking".
Result<RouteStepperPtr> MakeRouteStepper(const std::string& name);

}  // namespace oscar

#endif  // OSCAR_ROUTING_ROUTE_STEPPER_H_

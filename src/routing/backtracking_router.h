// Fault-aware routing for crashed networks: depth-first greedy. At each
// peer, candidates are tried nearest-to-target first; probes to dead
// neighbors cost a wasted message, visited peers are never re-entered,
// and when a peer runs out of useful neighbors the route backtracks
// (also a wasted message). Because alive ring neighbors always exist,
// the search space is connected and every query eventually succeeds —
// the paper's "remains navigable" claim, priced in messages.

#ifndef OSCAR_ROUTING_BACKTRACKING_ROUTER_H_
#define OSCAR_ROUTING_BACKTRACKING_ROUTER_H_

#include "routing/router.h"

namespace oscar {

class BacktrackingRouter : public Router {
 public:
  RouteResult Route(NetworkView net, PeerId source,
                    KeyId target) const override;
  std::string name() const override { return "backtracking"; }
};

}  // namespace oscar

#endif  // OSCAR_ROUTING_BACKTRACKING_ROUTER_H_

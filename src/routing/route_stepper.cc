#include "routing/route_stepper.h"

#include <algorithm>

#include "common/string_util.h"

namespace oscar {

// ---- GreedyStepper -------------------------------------------------------

void GreedyStepper::Start(NetworkView net, PeerId source, KeyId target) {
  result_ = RouteResult{};
  result_.terminal = source;
  result_.path.push_back(source);
  target_ = target;
  current_ = source;
  done_ = false;
  const auto owner = net.OwnerOf(target);
  if (!owner.has_value() || !net.alive(source)) done_ = true;
}

RouteStep GreedyStepper::Step(NetworkView net) {
  RouteStep step;
  step.from = current_;
  const auto owner = net.OwnerOf(target_);
  if (owner.has_value() && current_ == *owner) {
    result_.success = true;
    result_.terminal = current_;
    done_ = true;
    step.kind = StepKind::kArrived;
    return step;
  }
  neighbors_.clear();
  net.AppendNeighbors(current_, &neighbors_);
  const uint64_t here = RingDistance(net.key(current_), target_);
  bool moved = false;
  PeerId best = current_;
  uint64_t best_distance = here;
  for (PeerId candidate : neighbors_) {
    if (!net.alive(candidate)) continue;  // Dead probes charged lazily below.
    const uint64_t d = RingDistance(net.key(candidate), target_);
    if (d < best_distance) {
      best = candidate;
      best_distance = d;
      moved = true;
    }
  }
  if (!moved) {  // No strict progress: substrate violation.
    result_.terminal = current_;
    result_.success = owner.has_value() && current_ == *owner;
    done_ = true;
    step.kind = StepKind::kStuck;
    return step;
  }
  // Capacity-aware relaxation: any strictly-closer candidate within
  // 50% of the best distance makes comparable progress; prefer the
  // one with the largest declared in-budget.
  const uint64_t band =
      best_distance + best_distance / 2 < best_distance
          ? UINT64_MAX
          : best_distance + best_distance / 2;
  for (PeerId candidate : neighbors_) {
    if (!net.alive(candidate) || candidate == best) continue;
    const uint64_t d = RingDistance(net.key(candidate), target_);
    if (d < here && d <= band &&
        net.caps(candidate).max_in > net.caps(best).max_in) {
      best = candidate;
    }
  }
  best_distance = RingDistance(net.key(best), target_);
  // Charge probes for dead long links that looked strictly better than
  // the hop we ended up taking (the peer would have tried them first).
  for (PeerId candidate : neighbors_) {
    if (!net.alive(candidate) &&
        RingDistance(net.key(candidate), target_) < best_distance) {
      ++result_.wasted;
      ++step.dead_probes;
    }
  }
  current_ = best;
  ++result_.hops;
  result_.path.push_back(current_);
  result_.terminal = current_;
  step.kind = StepKind::kForward;
  step.to = best;
  return step;
}

void GreedyStepper::Abandon(NetworkView net) {
  const auto owner = net.OwnerOf(target_);
  result_.terminal = current_;
  result_.success = owner.has_value() && current_ == *owner;
  done_ = true;
}

bool GreedyStepper::FailDelivery(NetworkView net) {
  (void)net;
  if (done_ || result_.path.size() < 2) return false;
  result_.path.pop_back();
  --result_.hops;
  ++result_.wasted;  // The undelivered message is a timed-out probe.
  current_ = result_.path.back();
  result_.terminal = current_;
  return true;
}

// ---- BacktrackingStepper -------------------------------------------------

void BacktrackingStepper::Start(NetworkView net, PeerId source,
                                KeyId target) {
  result_ = RouteResult{};
  result_.terminal = source;
  result_.path.push_back(source);
  target_ = target;
  source_ = source;
  done_ = false;
  visited_ = {source};
  probed_dead_.clear();
  stack_ = {source};
  const auto owner = net.OwnerOf(target);
  if (!owner.has_value() || !net.alive(source)) done_ = true;
}

RouteStep BacktrackingStepper::Step(NetworkView net) {
  RouteStep step;
  const PeerId current = stack_.back();
  step.from = current;
  const auto owner = net.OwnerOf(target_);
  if (owner.has_value() && current == *owner) {
    result_.success = true;
    result_.terminal = current;
    done_ = true;
    step.kind = StepKind::kArrived;
    return step;
  }
  neighbors_.clear();
  net.AppendNeighbors(current, &neighbors_);
  ordered_.clear();
  for (PeerId candidate : neighbors_) {
    ordered_.emplace_back(RingDistance(net.key(candidate), target_),
                          candidate);
  }
  std::sort(ordered_.begin(), ordered_.end());

  PeerId next = current;
  bool found = false;
  for (const auto& [distance, candidate] : ordered_) {
    (void)distance;
    if (visited_.count(candidate) != 0) continue;
    if (!net.alive(candidate)) {
      // First probe of a dead neighbor costs a message; remember it so
      // revisits after backtracking don't double-charge.
      if (probed_dead_.insert(candidate).second) {
        ++result_.wasted;
        ++step.dead_probes;
      }
      continue;
    }
    next = candidate;
    found = true;
    break;
  }
  if (found) {
    visited_.insert(next);
    stack_.push_back(next);
    ++result_.hops;
    result_.path.push_back(next);
    result_.terminal = next;
    step.kind = StepKind::kForward;
    step.to = next;
    return step;
  }
  stack_.pop_back();  // Dead end: return the query to the previous hop.
  ++result_.wasted;
  if (stack_.empty()) {
    result_.terminal = source_;
    result_.success = false;
    done_ = true;
    step.kind = StepKind::kStuck;
    return step;
  }
  result_.terminal = stack_.back();
  step.kind = StepKind::kBacktrack;
  step.to = stack_.back();
  return step;
}

void BacktrackingStepper::Abandon(NetworkView net) {
  const auto owner = net.OwnerOf(target_);
  const PeerId terminal = stack_.empty() ? source_ : stack_.back();
  result_.terminal = terminal;
  result_.success = !stack_.empty() && owner.has_value() &&
                    stack_.back() == *owner;
  done_ = true;
}

bool BacktrackingStepper::FailDelivery(NetworkView net) {
  (void)net;
  if (done_ || stack_.size() < 2) return false;
  const PeerId failed = stack_.back();
  stack_.pop_back();
  ++result_.wasted;  // The undelivered transmission is a timed-out message.
  if (!result_.path.empty() && result_.path.back() == failed) {
    // The failed transmission was the forward that pushed `failed`: the
    // hop never completed, so refund it (the wasted charge above keeps
    // the total cost honest). When `failed` is an older peer reached by
    // backtracking, its historical hop stands and only the unwind
    // message is charged.
    result_.path.pop_back();
    --result_.hops;
  }
  // The peer stays visited (it already swallowed a message once) and is
  // marked probed so a later scan of the same stale link is free.
  probed_dead_.insert(failed);
  result_.terminal = stack_.back();
  return true;
}

Result<RouteStepperPtr> MakeRouteStepper(const std::string& name) {
  if (name == "greedy") {
    return RouteStepperPtr(std::make_unique<GreedyStepper>());
  }
  if (name == "backtracking") {
    return RouteStepperPtr(std::make_unique<BacktrackingStepper>());
  }
  return Status::Error(StrCat("unknown route stepper: '", name,
                              "' (expected greedy|backtracking)"));
}

}  // namespace oscar

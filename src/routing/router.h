// Router strategy interface. A route targets a key; it succeeds when it
// reaches the alive peer that owns the key. Probes to crashed neighbors
// and backtracking moves are charged as `wasted` traffic so the churn
// figures can report cost including wasted messages.
//
// Routes read the topology through NetworkView, so the same algorithm
// runs against a live Network (implicit conversion keeps existing call
// sites unchanged) or a frozen TopologySnapshot.

#ifndef OSCAR_ROUTING_ROUTER_H_
#define OSCAR_ROUTING_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/network_view.h"

namespace oscar {

struct RouteResult {
  bool success = false;
  uint32_t hops = 0;    // Forwarding steps actually taken.
  uint32_t wasted = 0;  // Dead probes + backtracking moves.
  PeerId terminal = 0;  // Peer where the route ended.
  std::vector<PeerId> path;  // Visited peers, source first.

  /// Total message cost, the quantity the paper's figures plot.
  double Cost() const { return static_cast<double>(hops) + wasted; }
};

class Router {
 public:
  virtual ~Router() = default;
  virtual RouteResult Route(NetworkView net, PeerId source,
                            KeyId target) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace oscar

#endif  // OSCAR_ROUTING_ROUTER_H_

#include "routing/csr_stepper.h"

#include <algorithm>

#include "core/topology_snapshot.h"

namespace oscar {
namespace {

/// Invokes fn(candidate) for every routing neighbor of `id` in exactly
/// the order NetworkView::AppendNeighbors pushes them — ring successor,
/// predecessor when distinct, then the CSR out-link row in stored
/// order — without materializing the list. Dead ids carry kNotOnRing,
/// so the ring-neighbor guard matches SuccessorOf/PredecessorOf.
template <typename Fn>
inline void ForEachNeighbor(const TopologySnapshot& snap, PeerId id,
                            Fn&& fn) {
  const Ring& ring = snap.ring();
  const size_t rn = ring.size();
  const uint32_t pos = snap.ring_pos(id);
  if (rn >= 2 && pos != TopologySnapshot::kNotOnRing) {
    const PeerId succ = ring.at((pos + 1) % rn).id;
    const PeerId pred = ring.at((pos + rn - 1) % rn).id;
    fn(succ);
    if (pred != succ) fn(pred);
  }
  const TopologySnapshot::CsrOffsets offsets = snap.out_offsets();
  const PeerId* edges = snap.out_edges_data();
  for (uint64_t e = offsets[id]; e < offsets[id + 1]; ++e) fn(edges[e]);
}

}  // namespace

RouteStep CsrGreedyStepper::Step(NetworkView net) {
  const TopologySnapshot& snap = *net.snapshot();
  const KeyId* keys = snap.keys_data();
  const uint8_t* alive = snap.alive_data();
  const DegreeCaps* caps = snap.caps_data();
  RouteStep step;
  step.from = current_;
  const auto owner = snap.OwnerOf(target_);
  if (owner.has_value() && current_ == *owner) {
    result_.success = true;
    result_.terminal = current_;
    done_ = true;
    step.kind = StepKind::kArrived;
    return step;
  }
  const uint64_t here = RingDistance(keys[current_], target_);
  bool moved = false;
  PeerId best = current_;
  uint64_t best_distance = here;
  ForEachNeighbor(snap, current_, [&](PeerId candidate) {
    if (!alive[candidate]) return;  // Dead probes charged lazily below.
    const uint64_t d = RingDistance(keys[candidate], target_);
    if (d < best_distance) {
      best = candidate;
      best_distance = d;
      moved = true;
    }
  });
  if (!moved) {  // No strict progress: substrate violation.
    result_.terminal = current_;
    result_.success = owner.has_value() && current_ == *owner;
    done_ = true;
    step.kind = StepKind::kStuck;
    return step;
  }
  // Capacity-aware relaxation: any strictly-closer candidate within
  // 50% of the best distance makes comparable progress; prefer the
  // one with the largest declared in-budget.
  const uint64_t band =
      best_distance + best_distance / 2 < best_distance
          ? UINT64_MAX
          : best_distance + best_distance / 2;
  ForEachNeighbor(snap, current_, [&](PeerId candidate) {
    if (!alive[candidate] || candidate == best) return;
    const uint64_t d = RingDistance(keys[candidate], target_);
    if (d < here && d <= band && caps[candidate].max_in > caps[best].max_in) {
      best = candidate;
    }
  });
  best_distance = RingDistance(keys[best], target_);
  // Charge probes for dead long links that looked strictly better than
  // the hop we ended up taking (the peer would have tried them first).
  ForEachNeighbor(snap, current_, [&](PeerId candidate) {
    if (!alive[candidate] &&
        RingDistance(keys[candidate], target_) < best_distance) {
      ++result_.wasted;
      ++step.dead_probes;
    }
  });
  current_ = best;
  ++result_.hops;
  result_.path.push_back(current_);
  result_.terminal = current_;
  step.kind = StepKind::kForward;
  step.to = best;
  return step;
}

RouteStep CsrBacktrackingStepper::Step(NetworkView net) {
  const TopologySnapshot& snap = *net.snapshot();
  const KeyId* keys = snap.keys_data();
  const uint8_t* alive = snap.alive_data();
  RouteStep step;
  const PeerId current = stack_.back();
  step.from = current;
  const auto owner = snap.OwnerOf(target_);
  if (owner.has_value() && current == *owner) {
    result_.success = true;
    result_.terminal = current;
    done_ = true;
    step.kind = StepKind::kArrived;
    return step;
  }
  ordered_.clear();
  ForEachNeighbor(snap, current, [&](PeerId candidate) {
    ordered_.emplace_back(RingDistance(keys[candidate], target_), candidate);
  });
  std::sort(ordered_.begin(), ordered_.end());

  PeerId next = current;
  bool found = false;
  for (const auto& [distance, candidate] : ordered_) {
    (void)distance;
    if (visited_.count(candidate) != 0) continue;
    if (!alive[candidate]) {
      // First probe of a dead neighbor costs a message; remember it so
      // revisits after backtracking don't double-charge.
      if (probed_dead_.insert(candidate).second) {
        ++result_.wasted;
        ++step.dead_probes;
      }
      continue;
    }
    next = candidate;
    found = true;
    break;
  }
  if (found) {
    visited_.insert(next);
    stack_.push_back(next);
    ++result_.hops;
    result_.path.push_back(next);
    result_.terminal = next;
    step.kind = StepKind::kForward;
    step.to = next;
    return step;
  }
  stack_.pop_back();  // Dead end: return the query to the previous hop.
  ++result_.wasted;
  if (stack_.empty()) {
    result_.terminal = source_;
    result_.success = false;
    done_ = true;
    step.kind = StepKind::kStuck;
    return step;
  }
  result_.terminal = stack_.back();
  step.kind = StepKind::kBacktrack;
  step.to = stack_.back();
  return step;
}

}  // namespace oscar

// CSR-specialized route steppers: the same greedy and fault-aware-DFS
// algorithms as route_stepper.h, but reading a frozen TopologySnapshot's
// flat key/caps/alive/offset arrays directly — no NetworkView dispatch
// branch per read, and neighbors iterated in place from the CSR rows
// instead of being materialized into a vector first. A snapshot cannot
// change mid-route, which is exactly the license the flat-array reads
// need.
//
// Semantics are identical BY CONSTRUCTION to the generic steppers: the
// CSR classes inherit Start/Abandon/FailDelivery and override only
// Step, whose neighbor enumeration order (ring successor, predecessor
// when distinct, long out-links in stored order) and pass structure
// mirror the generic code line for line. csr_stepper_test holds the two
// implementations to per-step and per-route equality on seeds 42-45;
// Router::Route selects these automatically whenever the view's backend
// is a snapshot, so every harness byte stays where it was.

#ifndef OSCAR_ROUTING_CSR_STEPPER_H_
#define OSCAR_ROUTING_CSR_STEPPER_H_

#include <string>

#include "routing/route_stepper.h"

namespace oscar {

/// GreedyStepper over a frozen snapshot. Precondition for Step():
/// the view passed to Start/Step has net.snapshot() != nullptr.
class CsrGreedyStepper : public GreedyStepper {
 public:
  RouteStep Step(NetworkView net) override;
  std::string name() const override { return "csr-greedy"; }
};

/// BacktrackingStepper over a frozen snapshot; same precondition.
class CsrBacktrackingStepper : public BacktrackingStepper {
 public:
  RouteStep Step(NetworkView net) override;
  std::string name() const override { return "csr-backtracking"; }
};

}  // namespace oscar

#endif  // OSCAR_ROUTING_CSR_STEPPER_H_

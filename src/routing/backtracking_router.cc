#include "routing/backtracking_router.h"

#include "routing/route_stepper.h"

namespace oscar {

RouteResult BacktrackingRouter::Route(NetworkView net, PeerId source,
                                      KeyId target) const {
  BacktrackingStepper stepper;
  stepper.Start(net, source, target);
  const size_t max_messages = 8 * net.alive_count() + 64;
  while (!stepper.done() &&
         stepper.result().hops + stepper.result().wasted < max_messages) {
    stepper.Step(net);
  }
  if (!stepper.done()) stepper.Abandon(net);
  return stepper.result();
}

}  // namespace oscar

#include "routing/backtracking_router.h"

#include <algorithm>
#include <unordered_set>

namespace oscar {

RouteResult BacktrackingRouter::Route(const Network& net, PeerId source,
                                      KeyId target) const {
  RouteResult result;
  result.terminal = source;
  result.path.push_back(source);
  const auto owner = net.OwnerOf(target);
  if (!owner.has_value() || !net.peer(source).alive) return result;

  std::unordered_set<PeerId> visited = {source};
  std::unordered_set<PeerId> probed_dead;
  std::vector<PeerId> stack = {source};
  std::vector<PeerId> neighbors;
  std::vector<std::pair<uint64_t, PeerId>> ordered;
  const size_t max_messages = 8 * net.alive_count() + 64;

  while (!stack.empty() &&
         result.hops + result.wasted < max_messages) {
    const PeerId current = stack.back();
    if (current == *owner) {
      result.success = true;
      result.terminal = current;
      return result;
    }
    neighbors.clear();
    net.AppendNeighbors(current, &neighbors);
    ordered.clear();
    for (PeerId candidate : neighbors) {
      ordered.emplace_back(RingDistance(net.peer(candidate).key, target),
                           candidate);
    }
    std::sort(ordered.begin(), ordered.end());

    PeerId next = current;
    bool found = false;
    for (const auto& [distance, candidate] : ordered) {
      (void)distance;
      if (visited.count(candidate) != 0) continue;
      if (!net.peer(candidate).alive) {
        // First probe of a dead neighbor costs a message; remember it so
        // revisits after backtracking don't double-charge.
        if (probed_dead.insert(candidate).second) ++result.wasted;
        continue;
      }
      next = candidate;
      found = true;
      break;
    }
    if (found) {
      visited.insert(next);
      stack.push_back(next);
      ++result.hops;
      result.path.push_back(next);
    } else {
      stack.pop_back();  // Dead end: return the query to the previous hop.
      ++result.wasted;
    }
  }
  result.terminal = stack.empty() ? source : stack.back();
  result.success = !stack.empty() && stack.back() == *owner;
  return result;
}

}  // namespace oscar

#include "routing/backtracking_router.h"

#include "routing/csr_stepper.h"
#include "routing/route_stepper.h"

namespace oscar {
namespace {

RouteResult Drive(BacktrackingStepper& stepper, NetworkView net,
                  PeerId source, KeyId target) {
  stepper.Start(net, source, target);
  const size_t max_messages = 8 * net.alive_count() + 64;
  while (!stepper.done() &&
         stepper.result().hops + stepper.result().wasted < max_messages) {
    stepper.Step(net);
  }
  if (!stepper.done()) stepper.Abandon(net);
  return stepper.result();
}

}  // namespace

RouteResult BacktrackingRouter::Route(NetworkView net, PeerId source,
                                      KeyId target) const {
  // Snapshot backend: the CSR-specialized stepper reads the flat
  // arrays directly (identical routes, guarded by csr_stepper_test).
  if (net.snapshot() != nullptr) {
    CsrBacktrackingStepper stepper;
    return Drive(stepper, net, source, target);
  }
  BacktrackingStepper stepper;
  return Drive(stepper, net, source, target);
}

}  // namespace oscar

// Greedy routing: forward to an alive neighbor strictly closer to the
// target key. Among candidates making near-best progress (within a
// small band of the best distance), the highest-capacity one is chosen
// — capacity-aware next-hop selection that sheds forwarding load onto
// peers that declared bigger budgets without sacrificing progress.
// Under constant caps this degenerates to classic closest-first greedy.
// Because every alive peer keeps alive ring neighbors (the simulator
// models the cheap successor-maintenance every ring overlay runs),
// strict progress is always possible and routing terminates at the
// owner.

#ifndef OSCAR_ROUTING_GREEDY_ROUTER_H_
#define OSCAR_ROUTING_GREEDY_ROUTER_H_

#include "routing/router.h"

namespace oscar {

class GreedyRouter : public Router {
 public:
  RouteResult Route(NetworkView net, PeerId source,
                    KeyId target) const override;
  std::string name() const override { return "greedy"; }
};

}  // namespace oscar

#endif  // OSCAR_ROUTING_GREEDY_ROUTER_H_

// The paper's synthetic "realistic" node-degree distribution (Fig 1a):
// a smooth tent around the mean with sharp spikes at common client
// defaults (10, 20, 27, 30, 32, 50, 64, 100) and a heavy tail, with the
// mean pinned to exactly 27.

#ifndef OSCAR_DEGREE_SPIKY_DEGREE_H_
#define OSCAR_DEGREE_SPIKY_DEGREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "degree/degree_distribution.h"

namespace oscar {

class SpikyDegreeDistribution : public DegreeDistribution {
 public:
  /// The canonical paper instance: support 1..128, spikes at client
  /// defaults, heavy tail beyond 64, mean exactly 27.
  static SpikyDegreeDistribution Paper();

  /// Exact pmf, ascending by degree; only bins with nonzero mass.
  std::vector<std::pair<uint32_t, double>> Pmf() const;

  /// Samples DegreeCaps with max_in == max_out == the sampled degree
  /// (a peer's willingness to accept links mirrors its capacity to
  /// maintain them).
  DegreeCaps Sample(Rng* rng) const override;
  std::string name() const override { return "realistic"; }

 private:
  explicit SpikyDegreeDistribution(std::vector<double> pmf);

  std::vector<double> pmf_;  // Indexed by degree, 0..kMaxDegree.
  std::vector<double> cdf_;
};

}  // namespace oscar

#endif  // OSCAR_DEGREE_SPIKY_DEGREE_H_

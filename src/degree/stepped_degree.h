// The paper's "stepped" case: the population splits into two classes of
// very different capacity (weak clients vs strong servents) whose mix
// still averages 27.

#ifndef OSCAR_DEGREE_STEPPED_DEGREE_H_
#define OSCAR_DEGREE_STEPPED_DEGREE_H_

#include "degree/degree_distribution.h"

namespace oscar {

class SteppedDegreeDistribution : public DegreeDistribution {
 public:
  /// 50% of peers at degree 10, 50% at degree 44 (mean 27).
  SteppedDegreeDistribution() : low_{10, 10}, high_{44, 44}, high_prob_(0.5) {}

  DegreeCaps Sample(Rng* rng) const override {
    return rng->NextDouble() < high_prob_ ? high_ : low_;
  }
  std::string name() const override { return "stepped"; }

 private:
  DegreeCaps low_;
  DegreeCaps high_;
  double high_prob_;
};

}  // namespace oscar

#endif  // OSCAR_DEGREE_STEPPED_DEGREE_H_

#include "degree/spiky_degree.h"

#include <algorithm>
#include <cmath>

namespace oscar {
namespace {

constexpr uint32_t kMaxDegree = 128;
constexpr double kTargetMean = 27.0;

// Moves probability mass between bin pairs until the pmf mean hits the
// target exactly (a transfer of t from bin a to bin b shifts the mean by
// t * (b - a)). Pairs are tried in order, clamped to available mass.
void PinMean(std::vector<double>* pmf) {
  auto mean = [&] {
    double m = 0.0;
    for (uint32_t d = 0; d <= kMaxDegree; ++d) m += (*pmf)[d] * d;
    return m;
  };
  // (donor-when-mean-high, receiver-when-mean-high) candidate pairs.
  const std::pair<uint32_t, uint32_t> pairs[] = {
      {100, 10}, {64, 10}, {50, 20}, {32, 20}, {30, 20}};
  for (const auto& [high, low] : pairs) {
    const double error = mean() - kTargetMean;
    if (std::abs(error) < 1e-13) break;
    const double span = static_cast<double>(high - low);
    if (error > 0.0) {
      // Mean too high: move mass downward (high -> low), keeping a
      // sliver in the donor bin so the spike survives.
      const double t = std::min(error / span, (*pmf)[high] * 0.9);
      (*pmf)[high] -= t;
      (*pmf)[low] += t;
    } else {
      const double t = std::min(-error / span, (*pmf)[low] * 0.9);
      (*pmf)[low] -= t;
      (*pmf)[high] += t;
    }
  }
}

}  // namespace

SpikyDegreeDistribution SpikyDegreeDistribution::Paper() {
  std::vector<double> weight(kMaxDegree + 1, 0.0);
  // Smooth tent around the mean.
  for (uint32_t d = 1; d <= 64; ++d) {
    weight[d] += 0.4 * std::exp(-std::abs(static_cast<double>(d) - 27.0) / 9.0);
  }
  // Heavy tail beyond 64.
  for (uint32_t d = 65; d <= kMaxDegree; ++d) {
    weight[d] += 4.0 / (static_cast<double>(d) * static_cast<double>(d));
  }
  // Spikes at common client default settings.
  weight[10] += 0.40;
  weight[20] += 0.50;
  weight[27] += 1.50;
  weight[30] += 0.20;
  weight[32] += 0.25;
  weight[50] += 0.15;
  weight[64] += 0.08;
  weight[100] += 0.05;

  double total = 0.0;
  for (double w : weight) total += w;
  for (double& w : weight) w /= total;
  PinMean(&weight);
  return SpikyDegreeDistribution(std::move(weight));
}

SpikyDegreeDistribution::SpikyDegreeDistribution(std::vector<double> pmf)
    : pmf_(std::move(pmf)) {
  cdf_.resize(pmf_.size());
  double cumulative = 0.0;
  for (size_t d = 0; d < pmf_.size(); ++d) {
    cumulative += pmf_[d];
    cdf_[d] = cumulative;
  }
  cdf_.back() = 1.0;  // Absorb float drift.
}

std::vector<std::pair<uint32_t, double>> SpikyDegreeDistribution::Pmf()
    const {
  std::vector<std::pair<uint32_t, double>> out;
  for (uint32_t d = 0; d < pmf_.size(); ++d) {
    if (pmf_[d] > 0.0) out.emplace_back(d, pmf_[d]);
  }
  return out;
}

DegreeCaps SpikyDegreeDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const uint32_t degree = static_cast<uint32_t>(
      std::min<size_t>(static_cast<size_t>(it - cdf_.begin()), kMaxDegree));
  const uint32_t clamped = std::max(degree, 1u);
  return DegreeCaps{clamped, clamped};
}

}  // namespace oscar

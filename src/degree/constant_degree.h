// Every peer gets the same degree budget (the paper's "constant" case,
// 27 in / 27 out by default).

#ifndef OSCAR_DEGREE_CONSTANT_DEGREE_H_
#define OSCAR_DEGREE_CONSTANT_DEGREE_H_

#include "common/status.h"
#include "degree/degree_distribution.h"

namespace oscar {

class ConstantDegreeDistribution : public DegreeDistribution {
 public:
  /// Fails when either cap is zero: a navigable peer needs at least one
  /// long link, and a peer that accepts none starves its neighborhood.
  static Result<ConstantDegreeDistribution> Make(uint32_t max_in,
                                                 uint32_t max_out);

  DegreeCaps Sample(Rng* rng) const override;
  std::string name() const override { return "constant"; }

 private:
  ConstantDegreeDistribution(uint32_t max_in, uint32_t max_out)
      : caps_{max_in, max_out} {}
  DegreeCaps caps_;
};

}  // namespace oscar

#endif  // OSCAR_DEGREE_CONSTANT_DEGREE_H_

#include "degree/constant_degree.h"

#include "common/string_util.h"

namespace oscar {

Result<ConstantDegreeDistribution> ConstantDegreeDistribution::Make(
    uint32_t max_in, uint32_t max_out) {
  if (max_in == 0 || max_out == 0) {
    return Status::Error(StrCat("constant degree caps must be positive, got ",
                                "in=", max_in, " out=", max_out));
  }
  return ConstantDegreeDistribution(max_in, max_out);
}

DegreeCaps ConstantDegreeDistribution::Sample(Rng* /*rng*/) const {
  return caps_;
}

}  // namespace oscar

// Degree distributions: per-peer degree budgets (DegreeCaps) sampled at
// join time. The paper's claim is that Oscar adapts to ANY in-degree
// distribution, so the three cases it plots (constant / realistic /
// stepped) are pluggable strategies.

#ifndef OSCAR_DEGREE_DEGREE_DISTRIBUTION_H_
#define OSCAR_DEGREE_DEGREE_DISTRIBUTION_H_

#include <memory>
#include <string>

#include "core/network.h"
#include "core/rng.h"

namespace oscar {

class DegreeDistribution {
 public:
  virtual ~DegreeDistribution() = default;
  virtual DegreeCaps Sample(Rng* rng) const = 0;
  virtual std::string name() const = 0;
};

using DegreeDistributionPtr = std::shared_ptr<DegreeDistribution>;

}  // namespace oscar

#endif  // OSCAR_DEGREE_DEGREE_DISTRIBUTION_H_

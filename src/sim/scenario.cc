#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/audit.h"
#include "common/string_util.h"
#include "core/experiments.h"
#include "core/simulation.h"
#include "routing/backtracking_router.h"

namespace oscar {
namespace {

/// Zipf popularity over a fixed set of hot keys: key rank r (1-based)
/// is drawn with probability ∝ 1/r^s. Inverse-CDF sampling keeps one
/// rng draw per query.
class ZipfHotKeys : public KeyDistribution {
 public:
  ZipfHotKeys(std::vector<KeyId> keys, double exponent)
      : keys_(std::move(keys)) {
    double total = 0.0;
    cumulative_.reserve(keys_.size());
    for (size_t rank = 1; rank <= keys_.size(); ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank), exponent);
      cumulative_.push_back(total);
    }
    for (double& c : cumulative_) c /= total;
  }

  KeyId Sample(Rng* rng) const override {
    const double u = rng->NextDouble();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const size_t index = std::min(
        static_cast<size_t>(it - cumulative_.begin()), keys_.size() - 1);
    return keys_[index];
  }

  std::string name() const override { return "zipf-hot"; }

 private:
  std::vector<KeyId> keys_;
  std::vector<double> cumulative_;
};

}  // namespace

Result<GrownTopology> GrowScenarioTopology(const ScenarioOptions& base) {
  auto keys = MakeKeyDistribution(base.keys);
  if (!keys.ok()) return keys.status();
  auto degrees = MakePaperDegreeDistribution(base.degrees);
  if (!degrees.ok()) return degrees.status();
  auto factory = MakeNamedOverlay(base.overlay);
  if (!factory.ok()) return factory.status();

  GrowthConfig config;
  config.target_size = base.network_size;
  config.queries_per_checkpoint = 0;  // Structure only; no sync queries.
  config.seed = base.seed;
  config.checkpoints = {base.network_size};
  config.key_distribution = keys.value();
  config.degree_distribution = degrees.value();
  config.overlay = factory.value()();
  Simulation growth(std::move(config));
  auto grown = growth.Run();
  if (!grown.ok()) return grown.status();

  GrownTopology topology;
  topology.snapshot = TopologySnapshot(growth.network());
  // This one freeze backs every scenario replay of the topology.
  if (AuditEnabled()) {
    const Status audit = topology.snapshot.Validate();
    OSCAR_AUDIT(audit.ok(), "scenario freeze: " + audit.message());
  }
  topology.overlay = growth.config().overlay;
  topology.keys = growth.config().key_distribution;
  topology.degrees = growth.config().degree_distribution;
  return topology;
}

const std::vector<std::string>& ScenarioCatalog() {
  static const std::vector<std::string> kCatalog = {
      "baseline",       "flash-crowd",     "rolling-churn",
      "regional-crash", "message-loss",    "slow-peers",
      "partition-heal", "repair-vs-churn", "adversarial-hotkeys",
      "cascade-slowdown",
  };
  return kCatalog;
}

Result<ScenarioOptions> MakeScenarioOptions(const std::string& name,
                                            ScenarioOptions base) {
  // The span of the steady arrival process; failure schedules anchor to
  // it so scenarios stay meaningful at any scale.
  const double span_ms =
      static_cast<double>(base.lookups) * base.arrival_interval_ms;
  if (name == "baseline") return base;
  if (name == "flash-crowd") {
    // A query storm on a handful of Zipf-popular keys, all submitted at
    // once: hot owners saturate their service queues.
    base.burst = true;
    base.hot_keys = 16;
    base.zipf_exponent = 1.2;
    base.sim.max_in_flight = 256;
    return base;
  }
  if (name == "rolling-churn") {
    // Continuous leave/join while lookups are in flight: stale links,
    // timeout-driven backtracking, message/crash races.
    base.churn.events = 8;
    base.churn.start_ms = span_ms / 10.0;
    base.churn.interval_ms = span_ms / 10.0;
    base.churn.leaves_per_event =
        std::max<size_t>(1, base.network_size / 50);
    base.churn.joins_per_event = base.churn.leaves_per_event;
    return base;
  }
  if (name == "regional-crash") {
    // 15% of the ring — one correlated region — vanishes mid-run.
    base.regional_crash_at_ms = span_ms * 0.4;
    base.regional_center = 0.1;
    base.regional_span = 0.15;
    return base;
  }
  if (name == "message-loss") {
    base.sim.loss_rate = 0.05;
    base.sim.max_retries = 3;
    return base;
  }
  if (name == "slow-peers") {
    // Heterogeneous service rates: a tenth of the peers (picked by a
    // stable key hash) forward every message 50x slower. Lookups that
    // route through them inherit the degraded service time (plus the
    // queue that builds behind it), inflating the latency tail while
    // the median barely moves.
    base.sim.service_ms = 2.0;
    base.sim.slow_fraction = 0.1;
    base.sim.slow_multiplier = 50.0;
    return base;
  }
  // The hostile scenarios below layer a FaultPlan (and, by default,
  // virtual-time maintenance rounds) on the steady workload. Retry
  // budgets are kept tight so degraded routes actually fail instead of
  // grinding through — that is what makes recovery measurable.
  if (name == "partition-heal") {
    // A partial partition severs two third-of-the-ring regions from
    // each other for half the run (a full directed cut both ways), then
    // heals. Cross-cut lookups burn their single retry and fail; the
    // recovery table shows the dip and the re-crossing after the heal.
    base.sim.loss_rate = 0.03;
    base.sim.max_retries = 1;
    base.sim.timeout_ms = span_ms / 10.0;
    FaultSpec cut;
    cut.kind = FaultKind::kPartition;
    cut.at_ms = span_ms * 0.2;
    cut.duration_ms = span_ms * 0.5;
    cut.a = {KeyId::FromUnit(0.0), 0.35};
    cut.b = {KeyId::FromUnit(0.5), 0.35};
    cut.severity = 1.0;
    base.faults.faults.push_back(cut);
    if (base.maintenance_cadence_ms < 0.0) {
      base.maintenance_cadence_ms = span_ms / 10.0;
    }
    return base;
  }
  if (name == "repair-vs-churn") {
    // Lazy repair racing continuous churn plus a correlated crash,
    // under ambient loss with a single retry: stale routing tables
    // translate directly into retry-exhaustion failures, so pruning
    // and topping-up links measurably raises the success rate over the
    // same seed without maintenance.
    base.churn.events = 10;
    base.churn.start_ms = span_ms / 12.0;
    base.churn.interval_ms = span_ms / 12.0;
    base.churn.leaves_per_event =
        std::max<size_t>(1, base.network_size / 18);
    base.churn.joins_per_event = base.churn.leaves_per_event;
    base.sim.loss_rate = 0.10;
    base.sim.max_retries = 0;
    base.sim.timeout_ms = span_ms / 10.0;
    FaultSpec crash;
    crash.kind = FaultKind::kRegionCrash;
    crash.at_ms = span_ms * 0.3;
    crash.a = {KeyId::FromUnit(0.6), 0.12};
    base.faults.faults.push_back(crash);
    if (base.maintenance_cadence_ms < 0.0) {
      base.maintenance_cadence_ms = span_ms / 16.0;
    }
    return base;
  }
  if (name == "adversarial-hotkeys") {
    // Every popular key is owned by one small region (adversarial
    // placement), and mid-run that region becomes near-unreachable: a
    // DIRECTED cut drops 80% of transmissions INTO it from everywhere
    // while its own outbound traffic still flows. Almost all queries
    // need the region, so the dip is deep until the cut heals.
    base.hot_keys = 12;
    base.zipf_exponent = 1.1;
    base.hot_key_region_center = 0.3;
    base.hot_key_region_span = 0.1;
    base.sim.loss_rate = 0.03;
    base.sim.max_retries = 1;
    base.sim.timeout_ms = span_ms / 10.0;
    FaultSpec cut;
    cut.kind = FaultKind::kPartition;
    cut.at_ms = span_ms * 0.3;
    cut.duration_ms = span_ms * 0.3;
    cut.a = {KeyId::FromUnit(0.0), 1.0};  // Sources: the whole ring.
    cut.b = {KeyId::FromUnit(0.3), 0.1};  // Destinations: the hot region.
    cut.severity = 0.8;
    cut.symmetric = false;
    base.faults.faults.push_back(cut);
    if (base.maintenance_cadence_ms < 0.0) {
      base.maintenance_cadence_ms = span_ms / 10.0;
    }
    return base;
  }
  if (name == "cascade-slowdown") {
    // A slow burst over a third of the ring (queues build behind 20x
    // service times), and mid-burst the most loaded slice of the slowed
    // region crashes outright — the classic overload-then-collapse
    // cascade. The slow burst's TTR window overlaps the collapse, so
    // both rows report the same recovery tail measured from their own
    // injection time.
    base.sim.service_ms = 1.0;
    base.sim.loss_rate = 0.12;
    base.sim.max_retries = 1;
    base.sim.timeout_ms = span_ms / 10.0;
    FaultSpec slow;
    slow.kind = FaultKind::kSlowdown;
    slow.at_ms = span_ms * 0.2;
    slow.duration_ms = span_ms * 0.4;
    slow.a = {KeyId::FromUnit(0.65), 0.3};
    slow.severity = 20.0;
    base.faults.faults.push_back(slow);
    FaultSpec collapse;
    collapse.kind = FaultKind::kRegionCrash;
    collapse.at_ms = span_ms * 0.45;
    collapse.a = {KeyId::FromUnit(0.68), 0.18};
    base.faults.faults.push_back(collapse);
    // Overload mostly shows up as latency, not failure: a collapse that
    // costs "only" a tenth of the lookups still matters here, so the
    // dip detector runs tighter than the default 0.9.
    base.recovery_threshold = 0.92;
    if (base.maintenance_cadence_ms < 0.0) {
      base.maintenance_cadence_ms = span_ms / 8.0;
    }
    return base;
  }
  return Status::Error(StrCat("unknown scenario: '", name,
                              "' (see ScenarioCatalog)"));
}

Result<ScenarioResult> RunScenario(const std::string& name,
                                   const ScenarioOptions& base) {
  auto resolved = MakeScenarioOptions(name, base);  // Fail fast on names.
  if (!resolved.ok()) return resolved.status();
  auto grown = GrowScenarioTopology(base);
  if (!grown.ok()) return grown.status();
  return RunScenarioOn(name, base, grown.value());
}

Result<ScenarioResult> RunScenarioOn(const std::string& name,
                                     const ScenarioOptions& base,
                                     const GrownTopology& grown) {
  Network scratch;
  return RunScenarioOn(name, base, grown, &scratch);
}

Result<ScenarioResult> RunScenarioOn(const std::string& name,
                                     const ScenarioOptions& base,
                                     const GrownTopology& grown,
                                     Network* scratch) {
  auto resolved = MakeScenarioOptions(name, base);
  if (!resolved.ok()) return resolved.status();
  const ScenarioOptions& options = resolved.value();
  if (auto probe = MakeRouteStepper(options.sim.router); !probe.ok()) {
    return probe.status();
  }

  // Mutable restore of the shared frozen topology: churn happens here.
  // On a recycled scratch this is a delta repair of the peers the
  // previous scenario touched, not an O(N) rebuild.
  grown.snapshot.RestoreInto(scratch);
  // Scenario replays recycle the scratch across runs — exactly the
  // journal path the restore-identity audit exists for.
  if (AuditEnabled()) {
    const Status audit = grown.snapshot.CheckRestoreIdentity(*scratch);
    OSCAR_AUDIT(audit.ok(), "scenario delta restore: " + audit.message());
  }
  Network& net = *scratch;
  const OverlayPtr overlay = grown.overlay;
  const KeyDistributionPtr peer_keys = grown.keys;
  const DegreeDistributionPtr peer_degrees = grown.degrees;

  // A scenario-private stream, decoupled from the growth stream so the
  // same network can host different workloads comparably.
  Rng rng(options.seed ^ 0x0a02bdbf7bb3c0a7ULL);
  EventEngine engine;
  // The live fault switchboard the message engine consults; empty (and
  // free) unless the plan below arms rules mid-run.
  ActiveFaults active_faults;
  MessageSimOptions sim_options = options.sim;
  sim_options.faults = &active_faults;
  MessageSim sim(&engine, &net, sim_options, &rng);

  // Workload: (source, key) pairs drawn up-front in submit order.
  KeyDistributionPtr query_keys = peer_keys;
  if (options.hot_keys > 0) {
    std::vector<KeyId> hot;
    hot.reserve(options.hot_keys);
    for (size_t i = 0; i < options.hot_keys; ++i) {
      if (options.hot_key_region_span > 0.0) {
        // Adversarial placement: the whole hot set inside one segment.
        hot.push_back(KeyId::FromUnit(options.hot_key_region_center +
                                      rng.NextDouble() *
                                          options.hot_key_region_span));
      } else {
        hot.push_back(peer_keys->Sample(&rng));
      }
    }
    query_keys = std::make_shared<ZipfHotKeys>(std::move(hot),
                                               options.zipf_exponent);
  }
  SearchOptions query_options;
  query_options.query_distribution = query_keys.get();
  const std::vector<PeerId> alive = net.AlivePeers();
  if (alive.empty()) return Status::Error("scenario: empty network");
  SimTime at = 0.0;
  for (size_t q = 0; q < options.lookups; ++q) {
    const QuerySample query = SampleQuery(net, query_options, alive, &rng);
    sim.SubmitLookupAt(at, query.source, query.key);
    if (!options.burst) {
      at += -options.arrival_interval_ms * std::log(1.0 - rng.NextDouble());
    }
  }

  ChurnScheduleReport churn_report;
  const RebuildFn rebuild = [overlay](Network* n, PeerId id, Rng* r) {
    return overlay->BuildLinks(n, id, r);
  };
  if (options.churn.events > 0) {
    ScheduleChurn(&engine, &net, options.churn, *peer_keys, *peer_degrees,
                  rebuild, &rng, &churn_report);
  }
  size_t regional_crashed = 0;
  Status regional_status;
  if (options.regional_crash_at_ms >= 0.0) {
    engine.ScheduleAt(options.regional_crash_at_ms, [&net, &options,
                                                     &regional_crashed,
                                                     &regional_status] {
      auto crashed =
          CrashSegment(&net, KeyId::FromUnit(options.regional_center),
                       options.regional_span);
      if (crashed.ok()) {
        regional_crashed = crashed.value();
      } else {
        regional_status = crashed.status();
      }
    });
  }

  // Injected faults: crashes through the churn hook, partitions and
  // slowdowns through the switchboard. Trace rows (kFaultInject /
  // kFaultHeal) go to the structured sink when one is attached.
  FaultInjector injector(&engine, &net, &active_faults, options.sim.sink);
  if (!options.faults.empty()) injector.Schedule(options.faults);

  // Virtual-time maintenance rounds racing everything above. A private
  // forked stream keeps repair draws out of the churn/workload streams,
  // so with- and without-maintenance runs of one seed share every other
  // draw — the comparison the repair-vs-churn acceptance rests on. The
  // schedule is bounded (rounds through twice the arrival span) rather
  // than self-rescheduling, so it cannot keep the engine alive forever.
  const double span_ms =
      static_cast<double>(options.lookups) * options.arrival_interval_ms;
  std::vector<MaintenanceRoundRecord> maintenance_rounds;
  Status maintenance_status;
  std::unique_ptr<Maintainer> maintainer;
  std::unique_ptr<Rng> maintenance_rng;
  if (options.maintenance_cadence_ms > 0.0) {
    maintainer = std::make_unique<Maintainer>(overlay, options.maintenance);
    maintenance_rng =
        std::make_unique<Rng>(options.seed ^ 0x413b8e2d5f7c6a19ULL);
    Maintainer* m = maintainer.get();
    Rng* mr = maintenance_rng.get();
    TraceSink* sink = options.sim.sink;
    size_t rounds = 0;
    for (double at = options.maintenance_cadence_ms;
         at <= 2.0 * span_ms && rounds < 10000;
         at += options.maintenance_cadence_ms, ++rounds) {
      engine.ScheduleAt(at, [m, mr, sink, &net, &engine,
                             &maintenance_rounds, &maintenance_status] {
        auto round = m->RunRound(&net, mr);
        if (!round.ok()) {
          if (maintenance_status.ok()) maintenance_status = round.status();
          return;
        }
        maintenance_rounds.push_back({engine.now(), round.value()});
        if (sink != nullptr) {
          TraceEvent event;
          event.t_us = TraceTimeUs(engine.now());
          event.kind = TraceKind::kMaintRound;
          event.lookup = kTraceNone;
          event.peer = static_cast<uint32_t>(round.value().pruned_links);
          event.to = static_cast<uint32_t>(round.value().rebuilt_peers);
          event.info = static_cast<uint32_t>(round.value().sampling_steps);
          sink->Append(event);
        }
      });
    }
  }

  // Backstop against a runaway handler loop; generously above any
  // legitimate event count (a lookup is a few events per hop).
  const size_t max_events = 200000 + 4000 * options.lookups;
  engine.Run(max_events);
  if (!churn_report.status.ok()) return churn_report.status;
  if (!regional_status.ok()) return regional_status;
  if (!injector.status().ok()) return injector.status();
  if (!maintenance_status.ok()) return maintenance_status;

  ScenarioResult result;
  result.name = name;
  result.options = options;
  result.report = sim.Report();
  size_t fault_crashed = 0;
  for (const InjectedFault& fault : injector.injected()) {
    fault_crashed += fault.crashed;
  }
  result.crashed = churn_report.left + regional_crashed + fault_crashed;
  result.joined = churn_report.joined;
  result.events_dispatched = engine.dispatched();
  result.end_ms = engine.now();
  RecoveryOptions recovery_options;
  recovery_options.window =
      options.recovery_window > 0
          ? options.recovery_window
          : std::min<size_t>(50, std::max<size_t>(8, options.lookups / 8));
  recovery_options.threshold = options.recovery_threshold;
  result.recovery =
      ComputeRecovery(sim.outcomes(), injector.injected(), recovery_options);
  result.maintenance = std::move(maintenance_rounds);
  for (const MaintenanceRoundRecord& round : result.maintenance) {
    result.maintenance_sampling_steps += round.report.sampling_steps;
  }
  return result;
}

Result<size_t> CrossCheckMessageVsSync(const ScenarioOptions& base) {
  auto grown = GrowScenarioTopology(base);
  if (!grown.ok()) return grown.status();
  return CrossCheckMessageVsSync(base, grown.value());
}

Result<size_t> CrossCheckMessageVsSync(const ScenarioOptions& base,
                                       const GrownTopology& grown) {
  // Crash a slice so dead probes and backtracking are part of the
  // comparison, not just clean greedy descent.
  Network net = grown.snapshot.Restore();
  Rng crash_rng(base.seed ^ 0x517cc1b727220a95ULL);
  auto crashed = CrashFraction(&net, 0.15, &crash_rng);
  if (!crashed.ok()) return crashed.status();

  // Synchronous side: per-query routes recorded via the observer.
  SearchOptions search;
  search.num_queries = base.lookups;
  search.query_distribution = grown.keys.get();
  struct PerQuery {
    uint32_t hops;
    uint32_t wasted;
    bool success;
  };
  std::vector<PerQuery> sync_routes;
  sync_routes.reserve(base.lookups);
  search.per_route = [&sync_routes](const RouteResult& route) {
    sync_routes.push_back({route.hops, route.wasted, route.success});
  };
  const uint64_t query_seed = base.seed ^ 0x2545f4914f6cdd1dULL;
  Rng sync_rng(query_seed);
  EvaluateSearch(net, BacktrackingRouter(), search, &sync_rng);

  // Message side: the identical query stream (same seed, same draw
  // order; routing consumes no rng) through the event engine at zero
  // latency, one lookup in flight at a time.
  Network message_net = net;
  EventEngine engine;
  MessageSimOptions sim_options = base.sim;
  sim_options.router = "backtracking";
  sim_options.zero_latency = true;
  sim_options.service_ms = 0.0;
  sim_options.loss_rate = 0.0;
  sim_options.max_in_flight = 1;
  Rng sim_rng(base.seed ^ 0x9e6c63d0876a9a47ULL);
  MessageSim sim(&engine, &message_net, sim_options, &sim_rng);
  Rng replay_rng(query_seed);
  const std::vector<PeerId> alive = message_net.AlivePeers();
  if (alive.empty()) return Status::Error("cross-check: empty network");
  for (size_t q = 0; q < base.lookups; ++q) {
    const QuerySample query = SampleQuery(message_net, search, alive,
                                          &replay_rng);
    sim.SubmitLookupAt(0.0, query.source, query.key);
  }
  engine.Run(200000 + 4000 * base.lookups);

  const std::vector<LookupOutcome>& outcomes = sim.outcomes();
  if (outcomes.size() != sync_routes.size()) {
    return Status::Error(StrCat("cross-check: query counts differ: sync=",
                                sync_routes.size(),
                                " message=", outcomes.size()));
  }
  for (size_t q = 0; q < outcomes.size(); ++q) {
    const LookupOutcome& out = outcomes[q];
    const PerQuery& ref = sync_routes[q];
    if (!out.finished) {
      return Status::Error(StrCat("cross-check: lookup ", q, " unfinished"));
    }
    if (out.hops != ref.hops || out.wasted != ref.wasted ||
        out.success != ref.success) {
      return Status::Error(StrCat(
          "cross-check: query ", q, " diverged: sync(hops=", ref.hops,
          " wasted=", ref.wasted, " success=", ref.success,
          ") message(hops=", out.hops, " wasted=", out.wasted,
          " success=", out.success, ")"));
    }
  }
  return outcomes.size();
}

}  // namespace oscar

#include "sim/latency_model.h"

#include <cmath>

#include "common/stats.h"

namespace oscar {

double LatencyModel::DelayForKey(KeyId key, const LatencyOptions& options) {
  // One private splitmix64 stream per peer, keyed by its ring key.
  Rng peer_rng(key.raw ^ 0x5851f42d4c957f2dULL);
  return options.median_ms * std::exp(options.sigma * peer_rng.NextGaussian());
}

LatencyModel::LatencyModel(const Network& net, const LatencyOptions& options,
                           Rng* rng)
    : options_(options) {
  (void)rng;  // See header: delays must not depend on stream position.
  delays_ms_.reserve(net.size());
  for (size_t i = 0; i < net.size(); ++i) {
    delays_ms_.push_back(
        DelayForKey(net.key(static_cast<PeerId>(i)), options_));
  }
}

LatencyEvaluation EvaluateLatency(const Network& net, const Router& router,
                                  const LatencyModel& model,
                                  size_t num_queries, Rng* rng) {
  LatencyEvaluation eval;
  const std::vector<PeerId> alive = net.AlivePeers();
  if (alive.empty() || num_queries == 0) return eval;

  std::vector<double> latencies;
  latencies.reserve(num_queries);
  size_t successes = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    const PeerId source =
        alive[static_cast<size_t>(rng->UniformInt(alive.size()))];
    const KeyId key = KeyId::FromUnit(rng->NextDouble());
    const RouteResult route = router.Route(net, source, key);
    if (route.success) ++successes;
    double ms = 0.0;
    for (size_t i = 1; i < route.path.size(); ++i) {
      ms += model.HopDelayMs(route.path[i]);
    }
    ms += static_cast<double>(route.wasted) * model.timeout_ms();
    latencies.push_back(ms);
  }
  double total = 0.0;
  for (double ms : latencies) total += ms;
  eval.mean_ms = total / static_cast<double>(latencies.size());
  eval.p50_ms = Percentile(latencies, 50.0);
  eval.p95_ms = Percentile(latencies, 95.0);
  eval.success_rate =
      static_cast<double>(successes) / static_cast<double>(num_queries);
  return eval;
}

}  // namespace oscar

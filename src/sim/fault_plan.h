// Fault injection in virtual time: a FaultPlan is a declarative list
// of faults (correlated region crashes, partial partitions, slow-peer
// bursts) that a FaultInjector schedules on the discrete-event engine
// mid-scenario. Crashes go through the existing churn hook
// (CrashSegment) and partitions/slowdowns through the ActiveFaults
// switchboard the message engine already consults — no fault consumes
// an rng draw at injection time, so arming a plan never perturbs the
// workload or churn streams.
//
// Plans are either built programmatically (the hostile scenarios in
// sim/scenario.cc) or parsed from the compact CLI spec:
//
//   plan  := fault (';' fault)*
//   fault := crash '@' AT ':' CENTER ',' SPAN
//          | partition '@' AT '+' DUR ':' SRC_C ',' SRC_S ','
//                                         DST_C ',' DST_S [',' LOSS]
//          | slow '@' AT '+' DUR ':' CENTER ',' SPAN [',' MULT]
//
// Times are virtual ms, centers/spans are unit-ring fractions, LOSS
// defaults to 1.0 (a full cut), MULT to 25. Partitions are injected
// symmetrically (both directions of the region pair); a directed cut
// is available programmatically via FaultSpec::symmetric = false.

#ifndef OSCAR_SIM_FAULT_PLAN_H_
#define OSCAR_SIM_FAULT_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/network.h"
#include "sim/event_engine.h"
#include "sim/fault_state.h"
#include "trace/trace.h"

namespace oscar {

enum class FaultKind {
  kRegionCrash,  // CrashSegment of region `a` at `at_ms` (no heal).
  kPartition,    // Directed loss a->b (and b->a when symmetric).
  kSlowdown,     // Service multiplier over region `a`.
};

struct FaultSpec {
  FaultKind kind = FaultKind::kRegionCrash;
  double at_ms = 0.0;
  /// Partitions and slowdowns heal at `at_ms + duration_ms`;
  /// duration_ms <= 0 means they persist to the end of the run.
  /// Crashes are permanent by nature.
  double duration_ms = 0.0;
  RegionSpec a;  // Crash region / partition source / slow region.
  RegionSpec b;  // Partition destination (unused otherwise).
  /// Loss probability (partitions) or service multiplier (slowdowns).
  double severity = 1.0;
  /// Inject the b->a direction too (the CLI parser always does).
  bool symmetric = true;

  /// Stable human-readable tag ("partition@120+300", "crash@80") used
  /// in recovery tables and trace scopes.
  std::string Label() const;
};

struct FaultPlan {
  std::vector<FaultSpec> faults;
  bool empty() const { return faults.empty(); }
};

/// Parses the CLI spec above. Malformed specs (unknown kind, missing
/// '@', non-numeric or out-of-range fields) return an error naming the
/// offending fault.
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

/// One fault as it actually landed: injection bookkeeping the recovery
/// metrics and the scenario tables read back.
struct InjectedFault {
  size_t index = 0;     // Position in the plan.
  std::string label;
  double at_ms = 0.0;
  double heal_ms = -1.0;  // < 0: never heals (crashes, open-ended rules).
  size_t crashed = 0;     // Peers a region crash took down.
};

/// Schedules a plan's faults on the engine. Injection handlers crash
/// regions via the churn hook and arm/disarm rules in `active`; each
/// fires a kFaultInject / kFaultHeal trace row through `sink` (may be
/// null). All borrowed pointers must outlive the engine run.
class FaultInjector {
 public:
  FaultInjector(EventEngine* engine, Network* net, ActiveFaults* active,
                TraceSink* sink)
      : engine_(engine), net_(net), active_(active), sink_(sink) {}

  /// Schedules every fault in `plan`. Call once, before engine.Run().
  void Schedule(const FaultPlan& plan);

  /// Injection records in plan order (final once the engine drained).
  const std::vector<InjectedFault>& injected() const { return injected_; }

  /// First CrashSegment failure, if any (later faults still fire).
  const Status& status() const { return status_; }

 private:
  void Inject(size_t index, const FaultSpec& spec);
  void Heal(size_t index, const FaultSpec& spec);
  void Emit(TraceKind kind, size_t index);

  EventEngine* engine_;
  Network* net_;
  ActiveFaults* active_;
  TraceSink* sink_;
  std::vector<InjectedFault> injected_;
  Status status_;
};

}  // namespace oscar

#endif  // OSCAR_SIM_FAULT_PLAN_H_

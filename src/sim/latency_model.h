// Wall-clock pricing of routes (extension X10): per-peer lognormal
// forwarding delays plus a fixed probe timeout charged for every wasted
// message (dead probe or backtrack).

#ifndef OSCAR_SIM_LATENCY_MODEL_H_
#define OSCAR_SIM_LATENCY_MODEL_H_

#include <cstddef>
#include <vector>

#include "core/network.h"
#include "core/rng.h"
#include "routing/router.h"

namespace oscar {

struct LatencyOptions {
  double median_ms = 25.0;   // Median per-hop forwarding delay.
  double sigma = 0.8;        // Lognormal shape (heavy tail).
  double timeout_ms = 500.0; // Cost of probing a dead peer.
};

class LatencyModel {
 public:
  /// Assigns each peer a delay derived from a hash of its ring key —
  /// a property of the peer, not of the caller's rng stream position.
  /// This keeps delays identical between a network and a crashed copy
  /// of it even when a crash pass consumed rng draws in between (the
  /// common-random-numbers discipline the churn comparisons rely on).
  /// `rng` is accepted for API symmetry and only seeds nothing today.
  LatencyModel(const Network& net, const LatencyOptions& options, Rng* rng);

  double HopDelayMs(PeerId id) const { return delays_ms_[id]; }
  double timeout_ms() const { return options_.timeout_ms; }

  /// The delay assigned to a peer whose ring key is `key` — a pure
  /// function of the key. Shared with the message-level simulator so
  /// peers joining mid-run get the same stable, stream-independent
  /// delays the constructor precomputes.
  static double DelayForKey(KeyId key, const LatencyOptions& options);

 private:
  LatencyOptions options_;
  std::vector<double> delays_ms_;
};

struct LatencyEvaluation {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double success_rate = 0.0;
};

/// Routes `num_queries` uniform-key queries from random alive sources
/// and prices each route through the model.
LatencyEvaluation EvaluateLatency(const Network& net, const Router& router,
                                  const LatencyModel& model,
                                  size_t num_queries, Rng* rng);

}  // namespace oscar

#endif  // OSCAR_SIM_LATENCY_MODEL_H_

// Message-level lookup simulation on the discrete-event engine. Every
// lookup is an individual query message advanced one hop at a time by a
// RouteStepper; hops are priced by the latency model, forwarding passes
// through a per-peer FIFO (one message in service at a time, so load
// queues), and undelivered messages — lost, or sent to a peer that
// crashed while they were in flight — are discovered by ack timeout and
// retried or routed around, never by oracle.
//
// Modeling notes (all deterministic under a fixed seed):
//  - Ack timeouts are only scheduled for transmissions that actually
//    fail; a delivered message acks instantly and for free. This is
//    equivalent to always scheduling the timeout and cancelling it on
//    ack, with far fewer events.
//  - A peer that crashes with messages queued drains them one service
//    slot at a time; each drained message takes the same timeout path
//    its sender would have observed.

#ifndef OSCAR_SIM_MESSAGE_SIM_H_
#define OSCAR_SIM_MESSAGE_SIM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "core/network.h"
#include "core/rng.h"
#include "metrics/message_metrics.h"
#include "routing/route_stepper.h"
#include "sim/event_engine.h"
#include "sim/fault_state.h"
#include "sim/latency_model.h"
#include "trace/trace.h"

namespace oscar {

struct MessageSimOptions {
  /// Routing algorithm driven hop-by-hop: "greedy" | "backtracking".
  std::string router = "backtracking";
  /// Per-hop delay model (median/sigma) — `latency.timeout_ms` prices
  /// dead probes, `timeout_ms` below is the ack timeout.
  LatencyOptions latency;
  /// Zero every transmission delay (the synchronous cross-check mode).
  bool zero_latency = false;
  /// Time a peer spends forwarding one message; queueing delay emerges
  /// when messages arrive faster than 1/service_ms.
  double service_ms = 0.1;
  /// Heterogeneous service rates: this fraction of peers serve every
  /// message `slow_multiplier` times slower. Membership is a pure
  /// function of the peer's ring key (no rng draws, stable across
  /// joins), so enabling it does not perturb any other random stream.
  double slow_fraction = 0.0;
  double slow_multiplier = 5.0;
  /// Ack timeout: how long a sender waits before declaring a
  /// transmission failed (lost or sent to a crashed peer).
  double timeout_ms = 500.0;
  /// Resends of one transmission before the whole lookup fails.
  uint32_t max_retries = 2;
  /// Probability an individual transmission is lost in the network.
  double loss_rate = 0.0;
  /// Live fault switchboard (borrowed; may be null). Armed partition
  /// rules raise the loss of matching transmissions above `loss_rate`;
  /// armed slowdown rules multiply the service time of matching peers.
  /// An empty switchboard changes nothing — rule checks are pure key
  /// functions and a 0.0 effective loss draws no rng, so attaching one
  /// perturbs no stream until a fault actually fires.
  const ActiveFaults* faults = nullptr;
  /// Admission cap on concurrently active lookups; excess submissions
  /// wait in an admission backlog (their wait counts toward latency).
  size_t max_in_flight = 64;
  /// Optional structured trace sink (CSV, columnar `.otrace`, ...);
  /// every lookup-lifecycle event streams through it as it fires, so a
  /// long run is analyzable without holding its trace in RAM. Detached
  /// (nullptr) tracing costs one branch per would-be event.
  TraceSink* sink = nullptr;
  /// Optional human-readable in-memory trace (one line per event,
  /// appended) — the legacy adapter the determinism tests byte-compare.
  std::string* trace = nullptr;
  /// Cadence (virtual ms) of the queue-depth / in-flight timeline
  /// samples emitted while tracing: every tick records the active and
  /// backlogged lookup counts plus every nonempty per-peer service
  /// queue. 0 disables sampling; so does a detached trace. The sampler
  /// reads state only (no rng draws, no mutations), so enabling it
  /// never perturbs outcomes.
  double queue_depth_cadence_ms = 0.0;
};

/// Per-lookup record, final once `finished`.
struct LookupOutcome {
  uint64_t id = 0;
  PeerId source = 0;
  KeyId target;
  bool finished = false;
  bool success = false;
  uint32_t hops = 0;
  uint32_t wasted = 0;       // Route-level waste (probes, backtracks).
  uint32_t retries = 0;      // Transmissions re-sent after loss.
  SimTime submitted_ms = 0.0;
  SimTime completed_ms = 0.0;
  double latency_ms = 0.0;   // completed - submitted (includes backlog).
};

struct MessageSimReport {
  size_t submitted = 0;
  size_t completed = 0;
  size_t succeeded = 0;
  double success_rate = 0.0;
  LatencySummary latency;
  double mean_hops = 0.0;
  double mean_wasted = 0.0;
  uint64_t messages_sent = 0;   // Every transmission, retries included.
  uint64_t lost_messages = 0;
  uint64_t timeouts = 0;        // Ack timeouts fired.
  uint64_t retries = 0;
  size_t peak_in_flight = 0;
  double mean_in_flight = 0.0;
  PeerLoadSummary peer_load;    // Messages serviced per peer.
};

class MessageSim {
 public:
  /// `engine`, `net` and `rng` must outlive the sim; the network may be
  /// mutated between events (event-scheduled churn) — liveness is
  /// re-checked at every service and delivery.
  MessageSim(EventEngine* engine, Network* net,
             const MessageSimOptions& options, Rng* rng);

  /// Schedules a lookup for `target` starting at `source` at virtual
  /// time `at` (clamped to now). Returns the lookup id.
  uint64_t SubmitLookupAt(SimTime at, PeerId source, KeyId target);

  const std::vector<LookupOutcome>& outcomes() const { return outcomes_; }
  size_t active_lookups() const { return active_; }

  /// Aggregates everything observed so far (valid mid-run too).
  MessageSimReport Report() const;

 private:
  struct Lookup {
    RouteStepperPtr stepper;
    uint32_t hop_attempts = 0;  // Resends of the current transmission.
    PeerId pending_from = 0;    // Sender of the in-flight transmission.
    PeerId pending_dest = 0;    // Its destination.
  };

  struct PeerState {
    std::deque<uint64_t> queue;
    bool busy = false;
  };

  void Admit(uint64_t id);
  void Activate(uint64_t id);
  void EnqueueAt(uint64_t id, PeerId peer);
  void BeginService(PeerId peer);
  void EndService(PeerId peer);
  void ProcessAt(uint64_t id, PeerId peer);
  void Transmit(uint64_t id, PeerId from, PeerId to, double extra_delay_ms);
  void HandleTimeout(uint64_t id);
  void Finish(uint64_t id);
  /// Emits one structured event to every attached sink. Pass kTraceNone
  /// for an absent peer/to column (0 is a real peer id). The empty-sink
  /// test is the whole cost of a detached trace.
  void Emit(TraceKind kind, uint64_t lookup, uint32_t peer, uint32_t to,
            uint32_t info) {
    if (sinks_.empty()) return;
    TraceEvent event;
    event.t_us = TraceTimeUs(engine_->now());
    event.kind = kind;
    event.lookup = static_cast<uint32_t>(lookup);
    event.peer = peer;
    event.to = to;
    event.info = info;
    for (TraceSink* sink : sinks_) sink->Append(event);
  }
  /// Schedules the first timeline sample if tracing wants one and none
  /// is pending; SampleTimelines reschedules itself while work remains.
  void ArmSampler();
  void SampleTimelines();
  void SendPending(uint64_t id, double extra_delay_ms);
  double HopDelayMs(PeerId to) const;
  /// Per-message service time of `peer` (slow peers pay the multiplier).
  double ServiceMsFor(PeerId peer) const;
  PeerState& peer_state(PeerId peer);

  EventEngine* engine_;
  Network* net_;
  MessageSimOptions options_;
  Rng* rng_;

  /// Active sinks: options_.sink plus the owned legacy string adapter
  /// (when options_.trace is set). Empty = tracing off.
  std::unique_ptr<StringTraceSink> string_adapter_;
  std::vector<TraceSink*> sinks_;
  bool sampler_armed_ = false;

  std::vector<Lookup> lookups_;
  std::vector<LookupOutcome> outcomes_;  // Parallel to lookups_.
  std::deque<uint64_t> backlog_;         // Admission queue.
  std::vector<PeerState> peers_;
  std::vector<uint64_t> peer_load_;      // Messages serviced per peer.
  ConcurrencyTracker concurrency_;
  size_t active_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t lost_messages_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace oscar

#endif  // OSCAR_SIM_MESSAGE_SIM_H_

#include "sim/fault_plan.h"

#include <cstdlib>

#include "churn/churn.h"
#include "common/string_util.h"

namespace oscar {
namespace {

/// Splits on `sep`, keeping empty fields (a trailing comma is a
/// malformed spec, not a silently shorter one).
std::vector<std::string> SplitAll(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseNumber(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

Status Malformed(const std::string& fault, const std::string& why) {
  return Status::Error(
      StrCat("fault plan: '", fault, "': ", why,
             " (want kind@at[+dur]:fields — see --help)"));
}

const char* KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRegionCrash: return "crash";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kSlowdown: return "slow";
  }
  return "?";
}

}  // namespace

std::string FaultSpec::Label() const {
  std::string label = StrCat(KindName(kind), "@", FormatDouble(at_ms, 0));
  if (duration_ms > 0.0) {
    label += StrCat("+", FormatDouble(duration_ms, 0));
  }
  return label;
}

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return Status::Error("fault plan: empty spec");
  for (const std::string& fault : SplitAll(spec, ';')) {
    if (fault.empty()) return Malformed(fault, "empty fault");
    const size_t at_pos = fault.find('@');
    if (at_pos == std::string::npos) return Malformed(fault, "missing '@'");
    const size_t colon = fault.find(':', at_pos);
    if (colon == std::string::npos) return Malformed(fault, "missing ':'");

    FaultSpec parsed;
    const std::string kind = fault.substr(0, at_pos);
    if (kind == "crash") {
      parsed.kind = FaultKind::kRegionCrash;
    } else if (kind == "partition") {
      parsed.kind = FaultKind::kPartition;
    } else if (kind == "slow") {
      parsed.kind = FaultKind::kSlowdown;
    } else {
      return Malformed(fault, StrCat("unknown kind '", kind, "'"));
    }

    std::string when = fault.substr(at_pos + 1, colon - at_pos - 1);
    const size_t plus = when.find('+');
    if (plus != std::string::npos) {
      if (parsed.kind == FaultKind::kRegionCrash) {
        return Malformed(fault, "crashes are permanent (no +duration)");
      }
      if (!ParseNumber(when.substr(plus + 1), &parsed.duration_ms) ||
          parsed.duration_ms <= 0.0) {
        return Malformed(fault, "bad duration");
      }
      when = when.substr(0, plus);
    }
    if (!ParseNumber(when, &parsed.at_ms) || parsed.at_ms < 0.0) {
      return Malformed(fault, "bad injection time");
    }

    const std::vector<std::string> fields =
        SplitAll(fault.substr(colon + 1), ',');
    std::vector<double> numbers(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      if (!ParseNumber(fields[i], &numbers[i])) {
        return Malformed(fault, StrCat("bad field '", fields[i], "'"));
      }
    }
    auto region_ok = [](double center, double span) {
      return center >= 0.0 && center < 1.0 && span > 0.0 && span <= 1.0;
    };
    switch (parsed.kind) {
      case FaultKind::kRegionCrash:
        if (numbers.size() != 2 || !region_ok(numbers[0], numbers[1]) ||
            numbers[1] >= 1.0) {
          return Malformed(fault, "want center,span with span in (0,1)");
        }
        parsed.a = {KeyId::FromUnit(numbers[0]), numbers[1]};
        break;
      case FaultKind::kPartition:
        if (numbers.size() < 4 || numbers.size() > 5 ||
            !region_ok(numbers[0], numbers[1]) ||
            !region_ok(numbers[2], numbers[3])) {
          return Malformed(fault,
                           "want src_c,src_s,dst_c,dst_s[,loss]");
        }
        parsed.a = {KeyId::FromUnit(numbers[0]), numbers[1]};
        parsed.b = {KeyId::FromUnit(numbers[2]), numbers[3]};
        parsed.severity = numbers.size() == 5 ? numbers[4] : 1.0;
        if (parsed.severity <= 0.0 || parsed.severity > 1.0) {
          return Malformed(fault, "loss must be in (0,1]");
        }
        break;
      case FaultKind::kSlowdown:
        if (numbers.size() < 2 || numbers.size() > 3 ||
            !region_ok(numbers[0], numbers[1])) {
          return Malformed(fault, "want center,span[,multiplier]");
        }
        parsed.a = {KeyId::FromUnit(numbers[0]), numbers[1]};
        parsed.severity = numbers.size() == 3 ? numbers[2] : 25.0;
        if (parsed.severity < 1.0) {
          return Malformed(fault, "multiplier must be >= 1");
        }
        break;
    }
    plan.faults.push_back(parsed);
  }
  return plan;
}

void FaultInjector::Emit(TraceKind kind, size_t index) {
  if (sink_ == nullptr) return;
  TraceEvent event;
  event.t_us = TraceTimeUs(engine_->now());
  event.kind = kind;
  event.lookup = kTraceNone;
  event.peer = kTraceNone;
  event.to = kTraceNone;
  event.info = static_cast<uint32_t>(index);
  sink_->Append(event);
}

void FaultInjector::Inject(size_t index, const FaultSpec& spec) {
  InjectedFault& record = injected_[index];
  switch (spec.kind) {
    case FaultKind::kRegionCrash: {
      auto crashed = CrashSegment(net_, spec.a.from, spec.a.span);
      if (crashed.ok()) {
        record.crashed = crashed.value();
      } else if (status_.ok()) {
        status_ = crashed.status();
      }
      break;
    }
    case FaultKind::kPartition:
      active_->AddPartition(index, spec.a, spec.b, spec.severity);
      if (spec.symmetric) {
        active_->AddPartition(index, spec.b, spec.a, spec.severity);
      }
      break;
    case FaultKind::kSlowdown:
      active_->AddSlowdown(index, spec.a, spec.severity);
      break;
  }
  Emit(TraceKind::kFaultInject, index);
}

void FaultInjector::Heal(size_t index, const FaultSpec& spec) {
  (void)spec;
  active_->Heal(index);
  Emit(TraceKind::kFaultHeal, index);
}

void FaultInjector::Schedule(const FaultPlan& plan) {
  injected_.reserve(injected_.size() + plan.faults.size());
  for (const FaultSpec& spec : plan.faults) {
    const size_t index = injected_.size();
    InjectedFault record;
    record.index = index;
    record.label = spec.Label();
    record.at_ms = spec.at_ms;
    const bool heals =
        spec.kind != FaultKind::kRegionCrash && spec.duration_ms > 0.0;
    record.heal_ms = heals ? spec.at_ms + spec.duration_ms : -1.0;
    injected_.push_back(record);
    // Copy the spec into the handlers: the plan may be a temporary.
    engine_->ScheduleAt(spec.at_ms,
                        [this, index, spec] { Inject(index, spec); });
    if (heals) {
      engine_->ScheduleAt(record.heal_ms,
                          [this, index, spec] { Heal(index, spec); });
    }
  }
}

}  // namespace oscar

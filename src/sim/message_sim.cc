#include "sim/message_sim.h"

#include <utility>

namespace oscar {

MessageSim::MessageSim(EventEngine* engine, Network* net,
                       const MessageSimOptions& options, Rng* rng)
    : engine_(engine), net_(net), options_(options), rng_(rng) {
  // An unknown router name is a caller bug (the scenario layer
  // validates names before construction); fall back to the fault-aware
  // default rather than failing mid-event.
  if (!MakeRouteStepper(options_.router).ok()) {
    options_.router = "backtracking";
  }
  if (options_.trace != nullptr) {
    string_adapter_ = std::make_unique<StringTraceSink>(options_.trace);
    sinks_.push_back(string_adapter_.get());
  }
  if (options_.sink != nullptr) sinks_.push_back(options_.sink);
}

void MessageSim::ArmSampler() {
  if (sampler_armed_ || sinks_.empty() ||
      options_.queue_depth_cadence_ms <= 0.0) {
    return;
  }
  sampler_armed_ = true;
  engine_->ScheduleAfter(options_.queue_depth_cadence_ms,
                         [this] { SampleTimelines(); });
}

void MessageSim::SampleTimelines() {
  Emit(TraceKind::kInFlight, kTraceNone, kTraceNone,
       static_cast<uint32_t>(backlog_.size()),
       static_cast<uint32_t>(active_));
  for (PeerId peer = 0; peer < peers_.size(); ++peer) {
    const size_t depth = peers_[peer].queue.size();
    if (depth > 0) {
      Emit(TraceKind::kQueueDepth, kTraceNone, peer, kTraceNone,
           static_cast<uint32_t>(depth));
    }
  }
  // Keep ticking only while lookups are live — a free-running sampler
  // would keep the event queue nonempty forever. Re-armed on the next
  // admission otherwise.
  if (active_ > 0 || !backlog_.empty()) {
    engine_->ScheduleAfter(options_.queue_depth_cadence_ms,
                           [this] { SampleTimelines(); });
  } else {
    sampler_armed_ = false;
  }
}

uint64_t MessageSim::SubmitLookupAt(SimTime at, PeerId source, KeyId target) {
  const uint64_t id = lookups_.size();
  lookups_.emplace_back();
  LookupOutcome outcome;
  outcome.id = id;
  outcome.source = source;
  outcome.target = target;
  outcomes_.push_back(outcome);
  engine_->ScheduleAt(at, [this, id] { Admit(id); });
  return id;
}

void MessageSim::Admit(uint64_t id) {
  outcomes_[id].submitted_ms = engine_->now();
  ArmSampler();
  if (active_ >= options_.max_in_flight) {
    backlog_.push_back(id);
    Emit(TraceKind::kBacklog, id, outcomes_[id].source, kTraceNone, 0);
    return;
  }
  Activate(id);
}

void MessageSim::Activate(uint64_t id) {
  ++active_;
  concurrency_.Add(engine_->now(), +1);
  Lookup& lookup = lookups_[id];
  lookup.stepper = std::move(MakeRouteStepper(options_.router)).value();
  lookup.stepper->Start(*net_, outcomes_[id].source, outcomes_[id].target);
  Emit(TraceKind::kStart, id, outcomes_[id].source, kTraceNone, 0);
  if (lookup.stepper->done()) {  // Dead source or empty ring.
    Finish(id);
    return;
  }
  // The source services its own query first: its decision time and
  // queue depth are part of the lookup's latency.
  EnqueueAt(id, outcomes_[id].source);
}

MessageSim::PeerState& MessageSim::peer_state(PeerId peer) {
  if (peers_.size() <= peer) {
    peers_.resize(peer + 1);
    peer_load_.resize(peer + 1, 0);
  }
  return peers_[peer];
}

void MessageSim::EnqueueAt(uint64_t id, PeerId peer) {
  PeerState& state = peer_state(peer);
  state.queue.push_back(id);
  if (!state.busy) BeginService(peer);
}

void MessageSim::BeginService(PeerId peer) {
  peer_state(peer).busy = true;
  engine_->ScheduleAfter(ServiceMsFor(peer),
                         [this, peer] { EndService(peer); });
}

double MessageSim::ServiceMsFor(PeerId peer) const {
  // Injected slowdown bursts stack on top of the static slow tier: a
  // statically-slow peer inside a slowed region pays both multipliers.
  double fault_mult = 1.0;
  if (options_.faults != nullptr && !options_.faults->empty()) {
    fault_mult = options_.faults->SlowMultiplierFor(net_->key(peer));
  }
  if (options_.slow_fraction <= 0.0) return options_.service_ms * fault_mult;
  // Splitmix64 of the ring key: slow membership is a stable property of
  // the peer, consumes no rng draws, and survives churn joins.
  uint64_t z = net_->key(peer).raw + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  const double base = u < options_.slow_fraction
                          ? options_.service_ms * options_.slow_multiplier
                          : options_.service_ms;
  return base * fault_mult;
}

void MessageSim::EndService(PeerId peer) {
  PeerState& state = peer_state(peer);
  const uint64_t id = state.queue.front();
  state.queue.pop_front();
  state.busy = false;
  if (!state.queue.empty()) BeginService(peer);
  if (!net_->alive(peer)) {
    // The peer crashed with this message aboard. Nobody answers; the
    // upstream peer notices through its ack timeout.
    Emit(TraceKind::kStranded, id, peer, kTraceNone, 0);
    engine_->ScheduleAfter(options_.timeout_ms,
                           [this, id] { HandleTimeout(id); });
    return;
  }
  ++peer_load_[peer];
  ProcessAt(id, peer);
}

void MessageSim::ProcessAt(uint64_t id, PeerId peer) {
  RouteStepper& stepper = *lookups_[id].stepper;
  if (stepper.done()) {
    Finish(id);
    return;
  }
  // The same generous safety net the whole-path routers use, re-read
  // each time because churn changes the alive count mid-run.
  const size_t budget = 8 * net_->alive_count() + 64;
  if (stepper.result().hops + stepper.result().wasted >= budget) {
    stepper.Abandon(*net_);
    Finish(id);
    return;
  }
  const RouteStep step = stepper.Step(*net_);
  switch (step.kind) {
    case StepKind::kArrived:
    case StepKind::kStuck:
      Finish(id);
      return;
    case StepKind::kForward:
    case StepKind::kBacktrack: {
      // Probing each dead long link costs the prober a full timeout
      // before the real transmission leaves.
      const double probe_ms =
          options_.zero_latency
              ? 0.0
              : static_cast<double>(step.dead_probes) *
                    options_.latency.timeout_ms;
      Emit(step.kind == StepKind::kForward ? TraceKind::kForward
                                           : TraceKind::kBacktrack,
           id, peer, step.to, step.dead_probes);
      Transmit(id, peer, step.to, probe_ms);
      return;
    }
  }
}

void MessageSim::Transmit(uint64_t id, PeerId from, PeerId to,
                          double extra_delay_ms) {
  Lookup& lookup = lookups_[id];
  lookup.pending_from = from;
  lookup.pending_dest = to;
  lookup.hop_attempts = 0;
  SendPending(id, extra_delay_ms);
}

void MessageSim::SendPending(uint64_t id, double extra_delay_ms) {
  Lookup& lookup = lookups_[id];
  const PeerId to = lookup.pending_dest;
  ++messages_sent_;
  // Armed partition rules raise the loss of matching transmissions
  // above the ambient iid rate (the worst rule wins; they don't
  // compound). The draw is skipped entirely at 0.0 effective loss, so
  // an attached-but-quiet switchboard consumes no rng.
  double loss_rate = options_.loss_rate;
  if (options_.faults != nullptr && !options_.faults->empty()) {
    const double fault_loss = options_.faults->LossFor(
        net_->key(lookup.pending_from), net_->key(to));
    if (fault_loss > loss_rate) loss_rate = fault_loss;
  }
  const bool lost = loss_rate > 0.0 && rng_->NextDouble() < loss_rate;
  if (lost) {
    ++lost_messages_;
    Emit(TraceKind::kLost, id, lookup.pending_from, to, 0);
    engine_->ScheduleAfter(extra_delay_ms + options_.timeout_ms,
                           [this, id] { HandleTimeout(id); });
    return;
  }
  const SimTime sent_at = engine_->now() + extra_delay_ms;
  engine_->ScheduleAt(sent_at + HopDelayMs(to), [this, id, to, sent_at] {
    if (outcomes_[id].finished) return;
    if (!net_->alive(to)) {
      // Crashed while the message was in flight: delivery fails and the
      // sender only learns by silence, one ack timeout after sending.
      engine_->ScheduleAt(sent_at + options_.timeout_ms,
                          [this, id] { HandleTimeout(id); });
      return;
    }
    EnqueueAt(id, to);
  });
}

void MessageSim::HandleTimeout(uint64_t id) {
  if (outcomes_[id].finished) return;
  ++timeouts_;
  Lookup& lookup = lookups_[id];
  RouteStepper& stepper = *lookup.stepper;
  if (!net_->alive(lookup.pending_dest)) {
    // Crash discovered by silence: revert the unanswered hop and route
    // around it. (Also reached with a stale pending_dest when the peer
    // holding the query died — the revert unwinds past that peer, which
    // is the current stack top, so the action is right either way.)
    if (!stepper.FailDelivery(*net_)) {
      // The route is back at its origin with nothing to revert.
      stepper.Abandon(*net_);
      Finish(id);
      return;
    }
    Emit(TraceKind::kTimeoutDead, id, lookup.pending_dest,
         stepper.current(), 0);
    const PeerId resume = stepper.current();
    if (resume == lookup.pending_from) {
      // A failed forward: the query never left its sender, which now
      // re-decides knowing the stale link is dead.
      EnqueueAt(id, resume);
    } else {
      // A failed backtrack: unwind one level deeper with a fresh
      // transmission.
      Transmit(id, lookup.pending_from, resume, 0.0);
    }
    return;
  }
  // The destination is alive: the transmission was lost. Resend until
  // the per-hop retry budget runs out.
  if (lookup.hop_attempts >= options_.max_retries) {
    Emit(TraceKind::kDrop, id, lookup.pending_from, lookup.pending_dest,
         lookup.hop_attempts);
    stepper.Abandon(*net_);
    Finish(id);
    return;
  }
  ++lookup.hop_attempts;
  ++retries_;
  ++outcomes_[id].retries;
  Emit(TraceKind::kRetry, id, lookup.pending_from, lookup.pending_dest,
       lookup.hop_attempts);
  SendPending(id, 0.0);
}

void MessageSim::Finish(uint64_t id) {
  LookupOutcome& outcome = outcomes_[id];
  if (outcome.finished) return;
  const RouteResult& route = lookups_[id].stepper->result();
  outcome.finished = true;
  outcome.success = route.success;
  outcome.hops = route.hops;
  outcome.wasted = route.wasted;
  outcome.completed_ms = engine_->now();
  outcome.latency_ms = outcome.completed_ms - outcome.submitted_ms;
  concurrency_.Add(engine_->now(), -1);
  --active_;
  Emit(outcome.success ? TraceKind::kDone : TraceKind::kFailed, id,
       outcome.source, kTraceNone, outcome.hops);
  if (!backlog_.empty()) {
    const uint64_t next = backlog_.front();
    backlog_.pop_front();
    Activate(next);
  }
}

double MessageSim::HopDelayMs(PeerId to) const {
  if (options_.zero_latency) return 0.0;
  return LatencyModel::DelayForKey(net_->key(to), options_.latency);
}

MessageSimReport MessageSim::Report() const {
  MessageSimReport report;
  report.submitted = outcomes_.size();
  std::vector<double> latencies;
  double hops = 0.0;
  double wasted = 0.0;
  for (const LookupOutcome& outcome : outcomes_) {
    if (!outcome.finished) continue;
    ++report.completed;
    if (outcome.success) ++report.succeeded;
    latencies.push_back(outcome.latency_ms);
    hops += outcome.hops;
    wasted += outcome.wasted;
  }
  if (report.completed > 0) {
    const double n = static_cast<double>(report.completed);
    report.success_rate = static_cast<double>(report.succeeded) / n;
    report.mean_hops = hops / n;
    report.mean_wasted = wasted / n;
  }
  report.latency = SummarizeLatency(std::move(latencies));
  report.messages_sent = messages_sent_;
  report.lost_messages = lost_messages_;
  report.timeouts = timeouts_;
  report.retries = retries_;
  report.peak_in_flight = concurrency_.peak();
  report.mean_in_flight = concurrency_.TimeWeightedMean(engine_->now());
  std::vector<uint64_t> load = peer_load_;
  load.resize(net_->size(), 0);
  report.peer_load = SummarizePeerLoad(load);
  return report;
}

}  // namespace oscar

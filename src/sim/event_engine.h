// Discrete-event core: a monotonic virtual clock over a binary-heap
// event queue with deterministic tie-breaking. Events at the same
// virtual time dispatch in schedule order — ordering is a pure function
// of (time, sequence number), never of heap internals or pointer
// values, so a fixed seed reproduces an identical event trace.

#ifndef OSCAR_SIM_EVENT_ENGINE_H_
#define OSCAR_SIM_EVENT_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

namespace oscar {

/// Virtual time in milliseconds.
using SimTime = double;

using EventId = uint64_t;

class EventEngine {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute virtual time `at`; times in the past
  /// are clamped to now() (the clock never runs backwards). Returns an
  /// id usable with Cancel.
  EventId ScheduleAt(SimTime at, Handler fn);

  /// Schedules `fn` after a relative delay (negative delays clamp to 0).
  EventId ScheduleAfter(SimTime delay, Handler fn);

  /// Drops a pending event. Returns false when the id already fired,
  /// was cancelled, or never existed.
  bool Cancel(EventId id);

  SimTime now() const { return now_; }
  size_t pending() const { return handlers_.size(); }
  uint64_t dispatched() const { return dispatched_; }

  /// Dispatches the earliest pending event. False when queue is empty.
  bool RunOne();

  /// Dispatches events until the queue drains or `max_events` have run
  /// in this call (a backstop against runaway handler loops). Returns
  /// the number dispatched.
  size_t Run(size_t max_events = std::numeric_limits<size_t>::max());

  /// Dispatches every event with time <= `until`, advancing the clock
  /// no further than `until`. Returns the number dispatched.
  size_t RunUntil(SimTime until);

 private:
  struct QueuedEvent {
    SimTime at;
    EventId id;
    /// Min-heap order: earliest time first, schedule order on ties.
    friend bool operator>(const QueuedEvent& a, const QueuedEvent& b) {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>,
                      std::greater<QueuedEvent>>
      queue_;
  std::unordered_map<EventId, Handler> handlers_;  // Absent = cancelled.
  SimTime now_ = 0.0;
  EventId next_id_ = 0;
  uint64_t dispatched_ = 0;
};

}  // namespace oscar

#endif  // OSCAR_SIM_EVENT_ENGINE_H_

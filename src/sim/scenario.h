// Named workload scenarios for the message-level simulator: grow a
// network, submit a lookup stream, schedule failures, run the event
// engine, report. The catalog covers the traffic patterns the paper's
// synchronous figures cannot express — flash-crowd bursts on Zipf-hot
// keys, rolling churn racing in-flight lookups, correlated regional
// crashes, and lossy transport with retries.

#ifndef OSCAR_SIM_SCENARIO_H_
#define OSCAR_SIM_SCENARIO_H_

#include <string>
#include <vector>

#include "churn/churn.h"
#include "common/status.h"
#include "core/topology_snapshot.h"
#include "keyspace/key_distribution.h"
#include "overlay/overlay.h"
#include "sim/message_sim.h"

namespace oscar {

struct ScenarioOptions {
  size_t network_size = 600;
  size_t lookups = 600;
  uint64_t seed = 42;
  std::string overlay = "oscar";
  std::string keys = "gnutella";
  std::string degrees = "realistic";
  MessageSimOptions sim;

  // Arrival process.
  bool burst = false;  // Everything submitted at t=0 (flash crowd).
  double arrival_interval_ms = 5.0;  // Mean exponential inter-arrival.

  // Query-key skew: when hot_keys > 0, queries target a fixed set of
  // `hot_keys` keys under a Zipf(zipf_exponent) popularity law instead
  // of following the peer key distribution.
  size_t hot_keys = 0;
  double zipf_exponent = 1.1;

  // Rolling churn (events == 0 disables it).
  ChurnScheduleOptions churn;

  // Correlated regional crash (at_ms < 0 disables it).
  double regional_crash_at_ms = -1.0;
  double regional_center = 0.25;  // Clockwise start of the doomed segment.
  double regional_span = 0.0;     // Fraction of the unit ring.
};

struct ScenarioResult {
  std::string name;
  ScenarioOptions options;  // As resolved for the run.
  MessageSimReport report;
  size_t crashed = 0;  // Churn + regional crashes.
  size_t joined = 0;
  uint64_t events_dispatched = 0;
  SimTime end_ms = 0.0;
};

/// The named scenarios, in catalog order.
const std::vector<std::string>& ScenarioCatalog();

/// Applies the named scenario's deltas on top of `base` (which carries
/// the scale, seed and sim knobs the caller resolved from env/flags).
/// No scenario changes the growth parameters (size/seed/overlay/keys/
/// degrees), so one grown topology serves the whole catalog.
Result<ScenarioOptions> MakeScenarioOptions(const std::string& name,
                                            ScenarioOptions base);

/// A network grown once and frozen, plus the strategy objects churn
/// handlers keep borrowing: the reusable input every scenario replay
/// restores its private mutable copy from.
struct GrownTopology {
  TopologySnapshot snapshot;
  OverlayPtr overlay;
  KeyDistributionPtr keys;
  DegreeDistributionPtr degrees;
};

/// Grows the network deterministically from base.seed and freezes it.
/// Growth depends only on the base options, never on a scenario's
/// deltas — the grow-once contract `oscar_sim --scenarios` relies on.
Result<GrownTopology> GrowScenarioTopology(const ScenarioOptions& base);

/// Runs the named scenario's workload against a restore of `grown`,
/// leaving the snapshot untouched for the next scenario.
Result<ScenarioResult> RunScenarioOn(const std::string& name,
                                     const ScenarioOptions& base,
                                     const GrownTopology& grown);

/// As above, but restoring into a caller-owned scratch network that is
/// recycled across scenarios: the snapshot's delta restore repairs only
/// the peers the previous scenario's churn touched (O(touched), nothing
/// for churn-free scenarios) instead of rebuilding all N peer rows.
/// Results are identical to the scratch-free overload.
Result<ScenarioResult> RunScenarioOn(const std::string& name,
                                     const ScenarioOptions& base,
                                     const GrownTopology& grown,
                                     Network* scratch);

/// Convenience: GrowScenarioTopology + RunScenarioOn for one-off runs.
Result<ScenarioResult> RunScenario(const std::string& name,
                                   const ScenarioOptions& base);

/// Equivalence gate between the two engines: restores the grown
/// network, crashes a fraction of it, routes the same query stream
/// once through the synchronous EvaluateSearch and once through
/// MessageSim in zero-latency single-lookup mode, and requires
/// per-query hops, wasted messages and success to match exactly.
/// Returns the number of queries compared, or an error naming the
/// first mismatch.
Result<size_t> CrossCheckMessageVsSync(const ScenarioOptions& base,
                                       const GrownTopology& grown);

/// Convenience: grows its own topology first.
Result<size_t> CrossCheckMessageVsSync(const ScenarioOptions& base);

}  // namespace oscar

#endif  // OSCAR_SIM_SCENARIO_H_

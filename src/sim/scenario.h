// Named workload scenarios for the message-level simulator: grow a
// network, submit a lookup stream, schedule failures, run the event
// engine, report. The catalog covers the traffic patterns the paper's
// synchronous figures cannot express — flash-crowd bursts on Zipf-hot
// keys, rolling churn racing in-flight lookups, correlated regional
// crashes, and lossy transport with retries.

#ifndef OSCAR_SIM_SCENARIO_H_
#define OSCAR_SIM_SCENARIO_H_

#include <string>
#include <vector>

#include "churn/churn.h"
#include "common/status.h"
#include "core/topology_snapshot.h"
#include "keyspace/key_distribution.h"
#include "metrics/recovery_metrics.h"
#include "overlay/maintenance.h"
#include "overlay/overlay.h"
#include "sim/fault_plan.h"
#include "sim/message_sim.h"

namespace oscar {

struct ScenarioOptions {
  size_t network_size = 600;
  size_t lookups = 600;
  uint64_t seed = 42;
  std::string overlay = "oscar";
  std::string keys = "gnutella";
  std::string degrees = "realistic";
  MessageSimOptions sim;

  // Arrival process.
  bool burst = false;  // Everything submitted at t=0 (flash crowd).
  double arrival_interval_ms = 5.0;  // Mean exponential inter-arrival.

  // Query-key skew: when hot_keys > 0, queries target a fixed set of
  // `hot_keys` keys under a Zipf(zipf_exponent) popularity law instead
  // of following the peer key distribution.
  size_t hot_keys = 0;
  double zipf_exponent = 1.1;

  // Rolling churn (events == 0 disables it).
  ChurnScheduleOptions churn;

  // Correlated regional crash (at_ms < 0 disables it).
  double regional_crash_at_ms = -1.0;
  double regional_center = 0.25;  // Clockwise start of the doomed segment.
  double regional_span = 0.0;     // Fraction of the unit ring.

  // Injected faults (region crashes, partial partitions, slow bursts)
  // scheduled in virtual time by a FaultInjector. The hostile scenarios
  // define their own plans; a caller-supplied plan (the --fault-plan
  // flag) is injected IN ADDITION to the scenario's.
  FaultPlan faults;

  // Virtual-time maintenance rounds racing the workload: < 0 lets the
  // scenario pick (hostile scenarios enable repair, legacy ones don't),
  // 0 forces maintenance off, > 0 runs Maintainer::RunRound every this
  // many virtual ms. Rounds draw from a private rng stream, so turning
  // them on never perturbs the churn or workload draws — the
  // with/without comparison is apples-to-apples.
  double maintenance_cadence_ms = -1.0;
  MaintenanceOptions maintenance;

  // Adversarial hot-key placement: when hot_keys > 0 and this span is
  // positive, the hot set is drawn uniformly inside the clockwise ring
  // segment [center, center + span) instead of from the peer
  // distribution — every popular key lands on one region's owners.
  double hot_key_region_center = 0.0;
  double hot_key_region_span = 0.0;

  // Recovery windowing (see metrics/recovery_metrics.h). window == 0
  // auto-scales to lookups/8, clamped to [8, 50].
  size_t recovery_window = 0;
  double recovery_threshold = 0.9;
};

/// One maintenance round as it ran, in virtual-time order.
struct MaintenanceRoundRecord {
  double at_ms = 0.0;
  MaintenanceReport report;
};

struct ScenarioResult {
  std::string name;
  ScenarioOptions options;  // As resolved for the run.
  MessageSimReport report;
  size_t crashed = 0;  // Churn + regional + fault-plan crashes.
  size_t joined = 0;
  uint64_t events_dispatched = 0;
  SimTime end_ms = 0.0;
  /// Per-fault recovery records (empty when no faults were injected).
  RecoveryReport recovery;
  /// Maintenance rounds that ran, in time order (empty when disabled).
  std::vector<MaintenanceRoundRecord> maintenance;
  /// Total repair bandwidth: the sampling-step ledger delta summed over
  /// all maintenance rounds.
  uint64_t maintenance_sampling_steps = 0;
};

/// The named scenarios, in catalog order.
const std::vector<std::string>& ScenarioCatalog();

/// Applies the named scenario's deltas on top of `base` (which carries
/// the scale, seed and sim knobs the caller resolved from env/flags).
/// No scenario changes the growth parameters (size/seed/overlay/keys/
/// degrees), so one grown topology serves the whole catalog.
Result<ScenarioOptions> MakeScenarioOptions(const std::string& name,
                                            ScenarioOptions base);

/// A network grown once and frozen, plus the strategy objects churn
/// handlers keep borrowing: the reusable input every scenario replay
/// restores its private mutable copy from.
struct GrownTopology {
  TopologySnapshot snapshot;
  OverlayPtr overlay;
  KeyDistributionPtr keys;
  DegreeDistributionPtr degrees;
};

/// Grows the network deterministically from base.seed and freezes it.
/// Growth depends only on the base options, never on a scenario's
/// deltas — the grow-once contract `oscar_sim --scenarios` relies on.
Result<GrownTopology> GrowScenarioTopology(const ScenarioOptions& base);

/// Runs the named scenario's workload against a restore of `grown`,
/// leaving the snapshot untouched for the next scenario.
Result<ScenarioResult> RunScenarioOn(const std::string& name,
                                     const ScenarioOptions& base,
                                     const GrownTopology& grown);

/// As above, but restoring into a caller-owned scratch network that is
/// recycled across scenarios: the snapshot's delta restore repairs only
/// the peers the previous scenario's churn touched (O(touched), nothing
/// for churn-free scenarios) instead of rebuilding all N peer rows.
/// Results are identical to the scratch-free overload.
Result<ScenarioResult> RunScenarioOn(const std::string& name,
                                     const ScenarioOptions& base,
                                     const GrownTopology& grown,
                                     Network* scratch);

/// Convenience: GrowScenarioTopology + RunScenarioOn for one-off runs.
Result<ScenarioResult> RunScenario(const std::string& name,
                                   const ScenarioOptions& base);

/// Equivalence gate between the two engines: restores the grown
/// network, crashes a fraction of it, routes the same query stream
/// once through the synchronous EvaluateSearch and once through
/// MessageSim in zero-latency single-lookup mode, and requires
/// per-query hops, wasted messages and success to match exactly.
/// Returns the number of queries compared, or an error naming the
/// first mismatch.
Result<size_t> CrossCheckMessageVsSync(const ScenarioOptions& base,
                                       const GrownTopology& grown);

/// Convenience: grows its own topology first.
Result<size_t> CrossCheckMessageVsSync(const ScenarioOptions& base);

}  // namespace oscar

#endif  // OSCAR_SIM_SCENARIO_H_

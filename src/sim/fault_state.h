// Live fault switchboard shared between the fault injector and the
// message engine. FaultInjector events arm and disarm rules here in
// virtual time; MessageSim consults the current rules on every
// transmission (directed loss) and service start (slowdown). Rules are
// keyed by ring-segment membership — a pure function of peer keys, so
// consulting them consumes no rng draws and enabling an empty
// switchboard perturbs nothing.

#ifndef OSCAR_SIM_FAULT_STATE_H_
#define OSCAR_SIM_FAULT_STATE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/key_id.h"

namespace oscar {

/// A clockwise ring segment [from, from + span). span <= 0 matches
/// nothing, span >= 1 matches every key.
struct RegionSpec {
  KeyId from;
  double span = 0.0;

  bool Contains(KeyId key) const {
    if (span <= 0.0) return false;
    if (span >= 1.0) return true;
    return InClockwiseSegment(key, from, from.OffsetBy(span));
  }
};

/// The faults currently in force. Partial partitions are DIRECTED:
/// a rule drops src->dst transmissions only, so injecting one
/// direction of a region pair models asymmetric reachability (dst can
/// still answer src through other routes). Slowdowns multiply the
/// service time of every peer whose key falls in the region.
class ActiveFaults {
 public:
  /// Arms directed loss from `src` to `dst` with probability `loss`.
  /// `id` names the injecting fault so Heal can disarm exactly its rules.
  void AddPartition(size_t id, RegionSpec src, RegionSpec dst, double loss) {
    loss_rules_.push_back({id, src, dst, loss});
  }

  /// Arms a service-time multiplier over `region`.
  void AddSlowdown(size_t id, RegionSpec region, double multiplier) {
    slow_rules_.push_back({id, region, multiplier});
  }

  /// Disarms every rule fault `id` armed (partition heal / burst end).
  void Heal(size_t id) {
    loss_rules_.erase(
        std::remove_if(loss_rules_.begin(), loss_rules_.end(),
                       [id](const LossRule& r) { return r.id == id; }),
        loss_rules_.end());
    slow_rules_.erase(
        std::remove_if(slow_rules_.begin(), slow_rules_.end(),
                       [id](const SlowRule& r) { return r.id == id; }),
        slow_rules_.end());
  }

  /// Loss probability for a transmission from key `from` to key `to`:
  /// the worst matching rule (rules do not compound).
  double LossFor(KeyId from, KeyId to) const {
    double loss = 0.0;
    for (const LossRule& rule : loss_rules_) {
      if (rule.loss > loss && rule.src.Contains(from) &&
          rule.dst.Contains(to)) {
        loss = rule.loss;
      }
    }
    return loss;
  }

  /// Service-time multiplier for the peer owning `key` (>= 1; the worst
  /// matching rule, slowdowns do not compound either).
  double SlowMultiplierFor(KeyId key) const {
    double multiplier = 1.0;
    for (const SlowRule& rule : slow_rules_) {
      if (rule.multiplier > multiplier && rule.region.Contains(key)) {
        multiplier = rule.multiplier;
      }
    }
    return multiplier;
  }

  bool empty() const { return loss_rules_.empty() && slow_rules_.empty(); }

 private:
  struct LossRule {
    size_t id;
    RegionSpec src;
    RegionSpec dst;
    double loss;
  };
  struct SlowRule {
    size_t id;
    RegionSpec region;
    double multiplier;
  };
  std::vector<LossRule> loss_rules_;
  std::vector<SlowRule> slow_rules_;
};

}  // namespace oscar

#endif  // OSCAR_SIM_FAULT_STATE_H_

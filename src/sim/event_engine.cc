#include "sim/event_engine.h"

#include <utility>

namespace oscar {

EventId EventEngine::ScheduleAt(SimTime at, Handler fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(QueuedEvent{at, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId EventEngine::ScheduleAfter(SimTime delay, Handler fn) {
  if (delay < 0.0) delay = 0.0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventEngine::Cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped on pop.
  return handlers_.erase(id) != 0;
}

bool EventEngine::RunOne() {
  while (!queue_.empty()) {
    const QueuedEvent event = queue_.top();
    queue_.pop();
    auto it = handlers_.find(event.id);
    if (it == handlers_.end()) continue;  // Cancelled tombstone.
    Handler fn = std::move(it->second);
    handlers_.erase(it);
    now_ = event.at;
    ++dispatched_;
    fn();
    return true;
  }
  return false;
}

size_t EventEngine::Run(size_t max_events) {
  size_t ran = 0;
  while (ran < max_events && RunOne()) ++ran;
  return ran;
}

size_t EventEngine::RunUntil(SimTime until) {
  size_t ran = 0;
  while (!queue_.empty()) {
    // Skip tombstones so a cancelled far-future event doesn't block the
    // peek at the real head.
    if (handlers_.find(queue_.top().id) == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > until) break;
    RunOne();
    ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

}  // namespace oscar

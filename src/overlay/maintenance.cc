#include "overlay/maintenance.h"

namespace oscar {

Maintainer::Maintainer(OverlayPtr overlay, MaintenanceOptions options)
    : overlay_(std::move(overlay)), options_(options) {}

Result<MaintenanceReport> Maintainer::RunRound(Network* net, Rng* rng) {
  if (overlay_ == nullptr) return Status::Error("maintainer: null overlay");
  if (options_.proactive_fraction < 0.0 ||
      options_.proactive_fraction > 1.0) {
    return Status::Error("maintainer: proactive_fraction out of [0,1]");
  }
  MaintenanceReport report;
  const uint64_t steps_before = overlay_->sampling_steps();

  for (PeerId id : net->AlivePeers()) {
    // Lazy repair: drop links whose target died, top the budget back up.
    report.pruned_links += net->PruneDeadLinks(id);
    if (net->RemainingOutBudget(id) > 0) {
      const Status status = overlay_->BuildLinks(net, id, rng);
      if (!status.ok()) return status;
      ++report.rebuilt_peers;
    }
    // Proactive refresh: a random subset rewires from scratch so stale
    // partitions (computed when N was different) get re-estimated.
    if (rng->NextDouble() < options_.proactive_fraction) {
      net->ClearLongLinks(id);
      const Status status = overlay_->BuildLinks(net, id, rng);
      if (!status.ok()) return status;
      ++report.refreshed_peers;
    }
  }
  report.sampling_steps = overlay_->sampling_steps() - steps_before;
  return report;
}

}  // namespace oscar

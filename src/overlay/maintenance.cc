#include "overlay/maintenance.h"

namespace oscar {

Maintainer::Maintainer(OverlayPtr overlay, MaintenanceOptions options)
    : overlay_(std::move(overlay)), options_(options) {}

Result<MaintenanceReport> Maintainer::RunRound(Network* net, Rng* rng) {
  if (overlay_ == nullptr) return Status::Error("maintainer: null overlay");
  if (options_.proactive_fraction < 0.0 ||
      options_.proactive_fraction > 1.0) {
    return Status::Error("maintainer: proactive_fraction out of [0,1]");
  }
  MaintenanceReport report;
  const uint64_t steps_before = overlay_->sampling_steps();
  const uint64_t cap = options_.max_sampling_steps_per_round;
  const auto spent = [&] { return overlay_->sampling_steps() - steps_before; };

  for (PeerId id : net->AlivePeers()) {
    // Lazy repair: drop links whose target died, top the budget back up.
    // Pruning is free (no sampling) and therefore never capped.
    report.pruned_links += net->PruneDeadLinks(id);
    if (options_.prune_only) continue;
    // A blown budget parks the rest of the round at prune-only; the
    // skipped peers keep their deficit and go first next round. Peers
    // behind the cut also skip their proactive draw — the round is
    // over, bandwidth-wise.
    if (cap > 0 && spent() >= cap) {
      report.budget_exhausted = true;
      continue;
    }
    if (net->RemainingOutBudget(id) > 0) {
      const Status status = overlay_->BuildLinks(net, id, rng);
      if (!status.ok()) return status;
      ++report.rebuilt_peers;
    }
    if (cap > 0 && spent() >= cap) {
      report.budget_exhausted = true;
      continue;
    }
    // Proactive refresh: a random subset rewires from scratch so stale
    // partitions (computed when N was different) get re-estimated.
    if (rng->NextDouble() < options_.proactive_fraction) {
      net->ClearLongLinks(id);
      const Status status = overlay_->BuildLinks(net, id, rng);
      if (!status.ok()) return status;
      ++report.refreshed_peers;
    }
  }
  report.sampling_steps = spent();
  return report;
}

}  // namespace oscar

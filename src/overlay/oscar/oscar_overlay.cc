#include "overlay/oscar/oscar_overlay.h"

#include <algorithm>
#include <cmath>

#include "sampling/oracle_sampler.h"
#include "sampling/random_walk_sampler.h"

namespace oscar {
namespace {

OscarOptions WithDefaults(OscarOptions options) {
  if (options.size_estimator == nullptr) {
    options.size_estimator = std::make_shared<OracleSizeEstimator>();
  }
  if (options.sampler == nullptr) {
    options.sampler = std::make_shared<RandomWalkSegmentSampler>();
  }
  options.samples_per_median = std::max(1u, options.samples_per_median);
  options.attempts_per_link = std::max(1u, options.attempts_per_link);
  return options;
}

}  // namespace

KeyId OscarPartitioner::SampledMedian(NetworkView net, PeerId id,
                                      const RingSegment& seg, Rng* rng,
                                      uint64_t* steps) const {
  std::vector<uint64_t> offsets;  // Clockwise distance from segment start.
  offsets.reserve(options_->samples_per_median);
  for (uint32_t i = 0; i < options_->samples_per_median; ++i) {
    auto sample =
        options_->sampler->SampleInSegment(net, id, seg.from, seg.to, rng);
    if (!sample.ok()) continue;
    *steps += sample.value().steps;
    offsets.push_back(
        ClockwiseDistance(seg.from, net.key(sample.value().peer)));
  }
  if (offsets.empty()) {
    // Sampling failed (e.g. unreachable sliver): split at the key-space
    // midpoint, degrading gracefully to a Mercury-style cut locally.
    return KeyId::FromRaw(seg.from.raw + ClockwiseDistance(seg.from, seg.to) / 2);
  }
  std::sort(offsets.begin(), offsets.end());
  return KeyId::FromRaw(seg.from.raw + offsets[offsets.size() / 2]);
}

std::vector<RingSegment> OscarPartitioner::ComputePartitions(
    NetworkView net, PeerId id, Rng* rng, uint64_t* steps) const {
  if (!net.alive(id)) return {};
  return ComputePartitionsFromKey(net, id, net.key(id), rng, steps);
}

std::vector<RingSegment> OscarPartitioner::ComputePartitionsFromKey(
    NetworkView net, PeerId origin, KeyId self_key, Rng* rng,
    uint64_t* steps) const {
  if (steps == nullptr) steps = sampling_steps_;
  std::vector<RingSegment> partitions;
  if (net.alive_count() < 3) return partitions;

  // The full ring except the vantage key itself: clockwise from just
  // after it back around to it.
  RingSegment remaining{KeyId::FromRaw(self_key.raw + 1), self_key};
  if (net.ring().CountInSegment(remaining.from, remaining.to) == 0) {
    return partitions;
  }

  const double n_hat =
      options_->size_estimator->Estimate(net, origin, rng);
  const uint32_t k = std::min(
      options_->max_partitions,
      std::max(1u, static_cast<uint32_t>(std::floor(
                       std::log2(std::max(2.0, n_hat))))));

  for (uint32_t level = 0; level + 1 < k; ++level) {
    const KeyId median = SampledMedian(net, origin, remaining, rng, steps);
    // Guard degenerate cuts that would empty either side.
    if (median == remaining.from || median == remaining.to) break;
    const RingSegment far_half{median, remaining.to};
    if (net.ring().CountInSegment(far_half.from, far_half.to) == 0) break;
    partitions.push_back(far_half);  // Farthest population half first.
    remaining.to = median;
    if (net.ring().CountInSegment(remaining.from, remaining.to) <= 1) break;
  }
  partitions.push_back(remaining);  // Nearest partition last.
  return partitions;
}

OscarOverlay::OscarOverlay() : OscarOverlay(OscarOptions{}) {}

OscarOverlay::OscarOverlay(OscarOptions options)
    : options_(WithDefaults(std::move(options))),
      partitioner_(&options_, &sampling_steps_) {}

std::optional<LinkCandidate> OscarOverlay::SampleLinkCandidate(
    NetworkView net, PeerId id, const std::vector<RingSegment>& partitions,
    Rng* rng, uint64_t* steps, const RingSegment* fixed_segment) const {
  // Uniform partition + uniform peer inside it == harmonic in rank;
  // a caller may pin the partition instead (the planner's stratified
  // first round), trading the draw for guaranteed coverage.
  const RingSegment& segment =
      fixed_segment != nullptr
          ? *fixed_segment
          : partitions[static_cast<size_t>(
                rng->UniformInt(partitions.size()))];
  auto first = options_.sampler->SampleInSegment(net, id, segment.from,
                                                 segment.to, rng);
  if (!first.ok()) return std::nullopt;
  *steps += first.value().steps;
  LinkCandidate candidate;
  candidate.primary = first.value().peer;
  candidate.alternate = candidate.primary;
  if (options_.use_p2c) {
    // Power of two choices: sample a second candidate from the same
    // partition; whoever carries the lower relative in-load when the
    // link is actually placed wins.
    auto second = options_.sampler->SampleInSegment(net, id, segment.from,
                                                    segment.to, rng);
    if (second.ok()) {
      *steps += second.value().steps;
      candidate.alternate = second.value().peer;
    }
  }
  return candidate;
}

Status OscarOverlay::BuildLinks(Network* net, PeerId id, Rng* rng) {
  if (!net->alive(id)) return Status::Ok();
  uint32_t budget = net->RemainingOutBudget(id);
  if (budget == 0 || net->alive_count() < 3) return Status::Ok();

  const std::vector<RingSegment> partitions =
      partitioner_.ComputePartitions(*net, id, rng);
  if (partitions.empty()) return Status::Ok();

  while (budget > 0) {
    bool linked = false;
    for (uint32_t attempt = 0; attempt < options_.attempts_per_link;
         ++attempt) {
      const auto candidate =
          SampleLinkCandidate(*net, id, partitions, rng, &sampling_steps_);
      if (!candidate.has_value()) continue;
      // Incremental construction resolves the p2c pair right here,
      // against the loads the links it just placed have produced.
      PeerId target = candidate->primary;
      if (candidate->alternate != candidate->primary &&
          net->RelativeInLoad(candidate->alternate) <
              net->RelativeInLoad(candidate->primary)) {
        target = candidate->alternate;
      }
      if (net->AddLongLink(id, target)) {
        linked = true;
        break;
      }
    }
    if (!linked) break;  // Neighborhood saturated; give up gracefully.
    --budget;
  }
  return Status::Ok();
}

PeerLinkPlan OscarOverlay::PlanLinks(NetworkView net, PeerId id,
                                     Rng* rng) const {
  PeerLinkPlan plan;
  if (!net.alive(id)) return plan;
  // The rewire clears every long link before plans are applied, so the
  // budget is the full out-cap — not the frozen remaining budget.
  plan.budget = net.caps(id).max_out;
  if (plan.budget == 0 || net.alive_count() < 3) return plan;

  const std::vector<RingSegment> partitions =
      partitioner_.ComputePartitions(net, id, rng, &plan.sampling_steps);
  if (partitions.empty()) return plan;

  FillPlanSlots(net, id, partitions, &plan, rng);
  return plan;
}

PeerLinkPlan OscarOverlay::PlanJoinLinks(NetworkView net, KeyId key,
                                         DegreeCaps caps, Rng* rng) const {
  PeerLinkPlan plan;
  // A joiner starts linkless, so its budget is the full out-cap.
  plan.budget = caps.max_out;
  if (plan.budget == 0 || net.alive_count() < 3) return plan;
  // The joiner is not in `net`: walks originate at the owner of its
  // key — the bootstrap contact a real join would route to first.
  const auto origin = net.OwnerOf(key);
  if (!origin.has_value()) return plan;
  const std::vector<RingSegment> partitions =
      partitioner_.ComputePartitionsFromKey(net, *origin, key, rng,
                                            &plan.sampling_steps);
  if (partitions.empty()) return plan;
  FillPlanSlots(net, *origin, partitions, &plan, rng);
  return plan;
}

void OscarOverlay::FillPlanSlots(NetworkView net, PeerId origin,
                                 const std::vector<RingSegment>& partitions,
                                 PeerLinkPlan* plan, Rng* rng) const {
  // Sampling runs over the intact frozen topology (links still up —
  // what a live peer's walks would actually traverse); feasibility and
  // the p2c pair resolution belong to the apply phase, where loads are
  // live. Planning only rejects what the peer itself can see:
  // re-sampled primaries already slotted in its own plan.
  const size_t slots =
      static_cast<size_t>(plan->budget) + options_.plan_backup_slots;
  // Stratified first round — one slot pinned to each partition,
  // farthest first — then uniform partition draws, the paper's
  // construction (one neighbor per partition) generalized to budgets
  // beyond log2(N-hat). Uniform draws alone leave a few percent of
  // peers with no far link at all (Binomial variance), and those
  // missing longest hops are exactly what greedy routing pays for
  // most.
  for (size_t slot = 0; plan->candidates.size() < slots; ++slot) {
    const RingSegment* pinned =
        slot < partitions.size() && slot < plan->budget ? &partitions[slot]
                                                        : nullptr;
    bool found = false;
    for (uint32_t attempt = 0; attempt < options_.attempts_per_link;
         ++attempt) {
      const auto candidate = SampleLinkCandidate(
          net, origin, partitions, rng, &plan->sampling_steps, pinned);
      if (!candidate.has_value()) continue;
      const bool seen =
          std::find_if(plan->candidates.begin(), plan->candidates.end(),
                       [&](const LinkCandidate& c) {
                         return c.primary == candidate->primary;
                       }) != plan->candidates.end();
      if (seen) continue;
      plan->candidates.push_back(*candidate);
      found = true;
      break;
    }
    // A dry pinned partition (unreachable sliver, or its peers already
    // slotted) forfeits only its own slot; a dry uniform draw means
    // the partitions are out of fresh candidates everywhere.
    if (!found && pinned == nullptr) break;
  }
}

}  // namespace oscar

#include "overlay/oscar/oscar_overlay.h"

#include <algorithm>
#include <cmath>

#include "sampling/oracle_sampler.h"
#include "sampling/random_walk_sampler.h"

namespace oscar {
namespace {

OscarOptions WithDefaults(OscarOptions options) {
  if (options.size_estimator == nullptr) {
    options.size_estimator = std::make_shared<OracleSizeEstimator>();
  }
  if (options.sampler == nullptr) {
    options.sampler = std::make_shared<RandomWalkSegmentSampler>();
  }
  options.samples_per_median = std::max(1u, options.samples_per_median);
  options.attempts_per_link = std::max(1u, options.attempts_per_link);
  return options;
}

double RelativeInLoad(const Peer& peer) {
  if (peer.caps.max_in == 0) return 1.0;
  return static_cast<double>(peer.long_in) /
         static_cast<double>(peer.caps.max_in);
}

}  // namespace

KeyId OscarPartitioner::SampledMedian(const Network& net, PeerId id,
                                      const RingSegment& seg,
                                      Rng* rng) const {
  std::vector<uint64_t> offsets;  // Clockwise distance from segment start.
  offsets.reserve(options_->samples_per_median);
  for (uint32_t i = 0; i < options_->samples_per_median; ++i) {
    auto sample =
        options_->sampler->SampleInSegment(net, id, seg.from, seg.to, rng);
    if (!sample.ok()) continue;
    *sampling_steps_ += sample.value().steps;
    offsets.push_back(
        ClockwiseDistance(seg.from, net.peer(sample.value().peer).key));
  }
  if (offsets.empty()) {
    // Sampling failed (e.g. unreachable sliver): split at the key-space
    // midpoint, degrading gracefully to a Mercury-style cut locally.
    return KeyId::FromRaw(seg.from.raw + ClockwiseDistance(seg.from, seg.to) / 2);
  }
  std::sort(offsets.begin(), offsets.end());
  return KeyId::FromRaw(seg.from.raw + offsets[offsets.size() / 2]);
}

std::vector<RingSegment> OscarPartitioner::ComputePartitions(
    const Network& net, PeerId id, Rng* rng) const {
  std::vector<RingSegment> partitions;
  const Peer& self = net.peer(id);
  if (!self.alive || net.alive_count() < 3) return partitions;

  // The full ring except the peer itself: clockwise from just after our
  // key back around to it.
  RingSegment remaining{KeyId::FromRaw(self.key.raw + 1), self.key};
  if (net.ring().CountInSegment(remaining.from, remaining.to) == 0) {
    return partitions;
  }

  const double n_hat =
      options_->size_estimator->Estimate(net, id, rng);
  const uint32_t k = std::min(
      options_->max_partitions,
      std::max(1u, static_cast<uint32_t>(std::floor(
                       std::log2(std::max(2.0, n_hat))))));

  for (uint32_t level = 0; level + 1 < k; ++level) {
    const KeyId median = SampledMedian(net, id, remaining, rng);
    // Guard degenerate cuts that would empty either side.
    if (median == remaining.from || median == remaining.to) break;
    const RingSegment far_half{median, remaining.to};
    if (net.ring().CountInSegment(far_half.from, far_half.to) == 0) break;
    partitions.push_back(far_half);  // Farthest population half first.
    remaining.to = median;
    if (net.ring().CountInSegment(remaining.from, remaining.to) <= 1) break;
  }
  partitions.push_back(remaining);  // Nearest partition last.
  return partitions;
}

OscarOverlay::OscarOverlay() : OscarOverlay(OscarOptions{}) {}

OscarOverlay::OscarOverlay(OscarOptions options)
    : options_(WithDefaults(std::move(options))),
      partitioner_(&options_, &sampling_steps_) {}

Status OscarOverlay::BuildLinks(Network* net, PeerId id, Rng* rng) {
  if (!net->peer(id).alive) return Status::Ok();
  uint32_t budget = net->RemainingOutBudget(id);
  if (budget == 0 || net->alive_count() < 3) return Status::Ok();

  const std::vector<RingSegment> partitions =
      partitioner_.ComputePartitions(*net, id, rng);
  if (partitions.empty()) return Status::Ok();

  while (budget > 0) {
    bool linked = false;
    for (uint32_t attempt = 0; attempt < options_.attempts_per_link;
         ++attempt) {
      // Uniform partition + uniform peer inside it == harmonic in rank.
      const RingSegment& segment = partitions[static_cast<size_t>(
          rng->UniformInt(partitions.size()))];
      auto first = options_.sampler->SampleInSegment(*net, id, segment.from,
                                                     segment.to, rng);
      if (!first.ok()) continue;
      sampling_steps_ += first.value().steps;
      PeerId target = first.value().peer;
      if (options_.use_p2c) {
        // Power of two choices: sample a second candidate from the same
        // partition and keep the one with the lower relative in-load.
        auto second = options_.sampler->SampleInSegment(
            *net, id, segment.from, segment.to, rng);
        if (second.ok()) {
          sampling_steps_ += second.value().steps;
          const PeerId alt = second.value().peer;
          if (RelativeInLoad(net->peer(alt)) <
              RelativeInLoad(net->peer(target))) {
            target = alt;
          }
        }
      }
      if (net->AddLongLink(id, target)) {
        linked = true;
        break;
      }
    }
    if (!linked) break;  // Neighborhood saturated; give up gracefully.
    --budget;
  }
  return Status::Ok();
}

}  // namespace oscar

// The Oscar overlay (Girdzijauskas, Datta, Aberer — ICDE'07): a
// small-world construction that stays navigable under ANY key
// distribution by measuring distance in peer population rather than
// key space. Each peer recursively halves the remaining ring population
// using sampled medians, yielding ~log2(N-hat) partitions of
// exponentially decreasing population; drawing a long link by picking a
// partition uniformly and a peer uniformly inside it reproduces the
// harmonic 1/rank law Kleinberg navigability requires.

#ifndef OSCAR_OVERLAY_OSCAR_OSCAR_OVERLAY_H_
#define OSCAR_OVERLAY_OSCAR_OSCAR_OVERLAY_H_

#include <vector>

#include "overlay/overlay.h"
#include "sampling/segment_sampler.h"
#include "sampling/size_estimator.h"

namespace oscar {

struct OscarOptions {
  SizeEstimatorPtr size_estimator;  // Defaults to OracleSizeEstimator.
  SegmentSamplerPtr sampler;        // Defaults to RandomWalkSegmentSampler.
  uint32_t samples_per_median = 9;  // Per-median sample size (ablation X2).
  bool use_p2c = true;              // Power-of-two-choices in-degree balance.
  uint32_t attempts_per_link = 8;   // Saturated-target retries per link.
  uint32_t max_partitions = 48;     // Safety cap on log2(N-hat).
};

/// A clockwise ring segment [from, to).
struct RingSegment {
  KeyId from;
  KeyId to;
};

/// Computes a peer's population partitions via sampled medians. Exposed
/// separately so harnesses can benchmark and inspect partitioning alone.
class OscarPartitioner {
 public:
  OscarPartitioner(const OscarOptions* options, uint64_t* sampling_steps)
      : options_(options), sampling_steps_(sampling_steps) {}

  /// Partitions of the ring as seen from `id`, ordered farthest (about
  /// half the population) to nearest (a handful of peers). Empty when
  /// the network is too small to partition.
  std::vector<RingSegment> ComputePartitions(const Network& net, PeerId id,
                                             Rng* rng) const;

 private:
  /// Median key of the clockwise segment, by sampling; falls back to the
  /// key-space midpoint when sampling fails.
  KeyId SampledMedian(const Network& net, PeerId id, const RingSegment& seg,
                      Rng* rng) const;

  const OscarOptions* options_;
  uint64_t* sampling_steps_;  // Owned by the enclosing overlay.
};

class OscarOverlay : public Overlay {
 public:
  OscarOverlay();
  explicit OscarOverlay(OscarOptions options);

  // Non-copyable: the partitioner aliases this instance's state.
  OscarOverlay(const OscarOverlay&) = delete;
  OscarOverlay& operator=(const OscarOverlay&) = delete;

  std::string name() const override { return "oscar"; }
  Status BuildLinks(Network* net, PeerId id, Rng* rng) override;
  uint64_t sampling_steps() const override { return sampling_steps_; }

  const OscarPartitioner& partitioner() const { return partitioner_; }
  const OscarOptions& options() const { return options_; }

 private:
  OscarOptions options_;
  uint64_t sampling_steps_ = 0;
  OscarPartitioner partitioner_;
};

}  // namespace oscar

#endif  // OSCAR_OVERLAY_OSCAR_OSCAR_OVERLAY_H_

// The Oscar overlay (Girdzijauskas, Datta, Aberer — ICDE'07): a
// small-world construction that stays navigable under ANY key
// distribution by measuring distance in peer population rather than
// key space. Each peer recursively halves the remaining ring population
// using sampled medians, yielding ~log2(N-hat) partitions of
// exponentially decreasing population; drawing a long link by picking a
// partition uniformly and a peer uniformly inside it reproduces the
// harmonic 1/rank law Kleinberg navigability requires.

#ifndef OSCAR_OVERLAY_OSCAR_OSCAR_OVERLAY_H_
#define OSCAR_OVERLAY_OSCAR_OSCAR_OVERLAY_H_

#include <optional>
#include <vector>

#include "overlay/overlay.h"
#include "sampling/segment_sampler.h"
#include "sampling/size_estimator.h"

namespace oscar {

struct OscarOptions {
  SizeEstimatorPtr size_estimator;  // Defaults to OracleSizeEstimator.
  SegmentSamplerPtr sampler;        // Defaults to RandomWalkSegmentSampler.
  uint32_t samples_per_median = 9;  // Per-median sample size (ablation X2).
  bool use_p2c = true;              // Power-of-two-choices in-degree balance.
  uint32_t attempts_per_link = 8;   // Saturated-target retries per link.
  uint32_t max_partitions = 48;     // Safety cap on log2(N-hat).
  /// Extra candidate slots PlanLinks proposes beyond the out budget.
  /// Plans are computed blind to each other, so some slots die at
  /// apply time against targets other plans saturated first; the
  /// backups (plus each slot's p2c alternate) let ApplyLinkPlan refill
  /// without a second sampling round.
  uint32_t plan_backup_slots = 4;
};

/// A clockwise ring segment [from, to).
struct RingSegment {
  KeyId from;
  KeyId to;
};

/// Computes a peer's population partitions via sampled medians. Exposed
/// separately so harnesses can benchmark and inspect partitioning alone.
class OscarPartitioner {
 public:
  OscarPartitioner(const OscarOptions* options, uint64_t* sampling_steps)
      : options_(options), sampling_steps_(sampling_steps) {}

  /// Partitions of the ring as seen from `id`, ordered farthest (about
  /// half the population) to nearest (a handful of peers). Empty when
  /// the network is too small to partition. `steps` receives the
  /// sampling spend; when null it is charged to the enclosing overlay's
  /// counter — the single-threaded convenience the harnesses use. The
  /// parallel planner always passes its own per-plan accumulator, which
  /// is what makes this method safe to call concurrently.
  std::vector<RingSegment> ComputePartitions(NetworkView net, PeerId id,
                                             Rng* rng,
                                             uint64_t* steps = nullptr) const;

  /// Partitions as seen from a key that need not belong to any peer in
  /// `net` — the joiner's view before it joins. Sampling walks start at
  /// `origin` (an alive peer, typically the owner of `self_key`).
  /// ComputePartitions(net, id, ...) is exactly this with origin == id
  /// and self_key == net.key(id).
  std::vector<RingSegment> ComputePartitionsFromKey(
      NetworkView net, PeerId origin, KeyId self_key, Rng* rng,
      uint64_t* steps) const;

 private:
  /// Median key of the clockwise segment, by sampling; falls back to the
  /// key-space midpoint when sampling fails.
  KeyId SampledMedian(NetworkView net, PeerId id, const RingSegment& seg,
                      Rng* rng, uint64_t* steps) const;

  const OscarOptions* options_;
  uint64_t* sampling_steps_;  // Owned by the enclosing overlay.
};

class OscarOverlay : public Overlay {
 public:
  OscarOverlay();
  explicit OscarOverlay(OscarOptions options);

  // Non-copyable: the partitioner aliases this instance's state.
  OscarOverlay(const OscarOverlay&) = delete;
  OscarOverlay& operator=(const OscarOverlay&) = delete;

  std::string name() const override { return "oscar"; }
  Status BuildLinks(Network* net, PeerId id, Rng* rng) override;

  /// Read-only rewiring plan over a frozen topology: same partition +
  /// sampling machinery as BuildLinks, but assuming the global link
  /// clear that precedes a checkpoint rewire, and with all state
  /// (candidates, sampling spend) returned instead of applied — safe to
  /// fan out across threads with per-peer rng streams.
  bool SupportsPlanning() const override { return true; }
  PeerLinkPlan PlanLinks(NetworkView net, PeerId id,
                         Rng* rng) const override;

  /// Join-time plan for a peer not yet in `net`: partitions computed
  /// from the joiner's key with walks originating at the key's owner,
  /// then the same stratified slot fill as PlanLinks. Thread-safe.
  bool SupportsJoinPlanning() const override { return true; }
  PeerLinkPlan PlanJoinLinks(NetworkView net, KeyId key, DegreeCaps caps,
                             Rng* rng) const override;

  void AddSamplingSteps(uint64_t steps) override { sampling_steps_ += steps; }

  uint64_t sampling_steps() const override { return sampling_steps_; }

  const OscarPartitioner& partitioner() const { return partitioner_; }
  const OscarOptions& options() const { return options_; }

 private:
  /// Draws one link slot from `partitions`: uniform partition (or the
  /// pinned `fixed_segment`), sampled primary, and (with p2c on) a
  /// sampled alternate from the same partition. Exactly the rng
  /// consumption of one BuildLinks attempt; WHO wins the pair is the
  /// caller's business — BuildLinks compares live loads immediately,
  /// PlanLinks defers to apply time.
  std::optional<LinkCandidate> SampleLinkCandidate(
      NetworkView net, PeerId id, const std::vector<RingSegment>& partitions,
      Rng* rng, uint64_t* steps,
      const RingSegment* fixed_segment = nullptr) const;

  /// The shared slot loop of PlanLinks and PlanJoinLinks: stratified
  /// first round over `partitions`, then uniform draws, deduped on
  /// primaries, until budget + plan_backup_slots candidates are filled.
  /// `origin` is the walk origin (the peer itself when rewiring, the
  /// joiner key's owner when join-planning).
  void FillPlanSlots(NetworkView net, PeerId origin,
                     const std::vector<RingSegment>& partitions,
                     PeerLinkPlan* plan, Rng* rng) const;

  OscarOptions options_;
  uint64_t sampling_steps_ = 0;
  OscarPartitioner partitioner_;
};

}  // namespace oscar

#endif  // OSCAR_OVERLAY_OSCAR_OSCAR_OVERLAY_H_

// Overlay strategy interface: how a peer chooses its long-range links.
// All overlays share the ring substrate (Network maintains alive ring
// neighbors); BuildLinks tops a peer's long out-links up to its budget,
// so the same call serves join, repair, and full rewiring.

#ifndef OSCAR_OVERLAY_OVERLAY_H_
#define OSCAR_OVERLAY_OVERLAY_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/network.h"
#include "core/rng.h"

namespace oscar {

class Overlay {
 public:
  virtual ~Overlay() = default;

  virtual std::string name() const = 0;

  /// Builds long links for `id` until its out budget is exhausted (or
  /// the strategy gives up on saturated targets). Idempotent top-up:
  /// existing links are kept.
  virtual Status BuildLinks(Network* net, PeerId id, Rng* rng) = 0;

  /// Cumulative protocol messages spent on sampling by this overlay
  /// instance (0 for oracle constructions).
  virtual uint64_t sampling_steps() const { return 0; }
};

using OverlayPtr = std::shared_ptr<Overlay>;
using OverlayFactory = std::function<OverlayPtr()>;

}  // namespace oscar

#endif  // OSCAR_OVERLAY_OVERLAY_H_

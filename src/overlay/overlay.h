// Overlay strategy interface: how a peer chooses its long-range links.
// All overlays share the ring substrate (Network maintains alive ring
// neighbors); BuildLinks tops a peer's long out-links up to its budget,
// so the same call serves join, repair, and full rewiring.

#ifndef OSCAR_OVERLAY_OVERLAY_H_
#define OSCAR_OVERLAY_OVERLAY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/network.h"
#include "core/network_view.h"
#include "core/rng.h"

namespace oscar {

/// One peer's rewiring intent, computed read-only against a frozen
/// pre-checkpoint topology. `candidates` is the ordered slot list the
/// peer would link to (each a sampled target plus optional p2c
/// alternate, resolved against live loads at apply); the apply phase
/// (Network::ApplyLinkPlan) walks it until `budget` links land,
/// skipping targets whose in-caps other peers' plans saturated first —
/// which is why a planner may propose a few more slots than it has
/// budget for.
struct PeerLinkPlan {
  std::vector<LinkCandidate> candidates;
  uint32_t budget = 0;
  uint64_t sampling_steps = 0;  // Protocol messages this plan cost.
};

class Overlay {
 public:
  virtual ~Overlay() = default;

  virtual std::string name() const = 0;

  /// Builds long links for `id` until its out budget is exhausted (or
  /// the strategy gives up on saturated targets). Idempotent top-up:
  /// existing links are kept.
  virtual Status BuildLinks(Network* net, PeerId id, Rng* rng) = 0;

  /// True when PlanLinks is implemented. Checkpoint rewiring then
  /// freezes the pre-checkpoint topology once and plans every peer
  /// read-only over it — order-independent and thread-safe — instead
  /// of rebuilding peers one by one against a half-rewired network.
  virtual bool SupportsPlanning() const { return false; }

  /// Plans `id`'s post-rewire links against `net` (typically a frozen
  /// TopologySnapshot), assuming all long links will be cleared before
  /// the plan is applied. Must be thread-safe: called concurrently for
  /// distinct peers with per-peer forked rngs, and must not mutate
  /// overlay state — sampling spend is returned in the plan and folded
  /// back via AddSamplingSteps after the deterministic reduce.
  virtual PeerLinkPlan PlanLinks(NetworkView net, PeerId id,
                                 Rng* rng) const {
    (void)net;
    (void)id;
    (void)rng;
    return PeerLinkPlan{};
  }

  /// Plans the long links a NOT-yet-joined peer (known only by its
  /// `key` and degree `caps`) would build, read-only against `net` —
  /// typically a frozen epoch snapshot shared by a whole join batch.
  /// Sampling walks originate at the snapshot owner of `key`, the peer
  /// a real joiner would contact first. Must be thread-safe exactly
  /// like PlanLinks: concurrent calls with per-joiner forked rngs, no
  /// overlay state mutation. Overlays that return true from
  /// SupportsPlanning() and want batched joins override this; the
  /// default plans nothing (Simulation then keeps such overlays on the
  /// sequential per-join path).
  virtual PeerLinkPlan PlanJoinLinks(NetworkView net, KeyId key,
                                     DegreeCaps caps, Rng* rng) const {
    (void)net;
    (void)key;
    (void)caps;
    (void)rng;
    return PeerLinkPlan{};
  }

  /// True when PlanJoinLinks is implemented — the gate for the batched
  /// join path (join_batch > 0 in GrowthConfig).
  virtual bool SupportsJoinPlanning() const { return false; }

  /// Folds sampling spend measured outside BuildLinks (the planning
  /// fan-out) back into sampling_steps(). No-op for oracle overlays.
  virtual void AddSamplingSteps(uint64_t steps) { (void)steps; }

  /// Cumulative protocol messages spent on sampling by this overlay
  /// instance (0 for oracle constructions).
  virtual uint64_t sampling_steps() const { return 0; }
};

using OverlayPtr = std::shared_ptr<Overlay>;
using OverlayFactory = std::function<OverlayPtr()>;

}  // namespace oscar

#endif  // OSCAR_OVERLAY_OVERLAY_H_

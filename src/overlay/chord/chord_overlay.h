// Chord-style baseline: deterministic fingers at key-space distances
// 2^-1, 2^-2, ... from the peer's key. The canonical uniform-assumption
// DHT — rank geometry collapses when keys cluster, since no finger can
// resolve structure finer than its fixed key-space scale.

#ifndef OSCAR_OVERLAY_CHORD_CHORD_OVERLAY_H_
#define OSCAR_OVERLAY_CHORD_CHORD_OVERLAY_H_

#include "overlay/overlay.h"

namespace oscar {

class ChordOverlay : public Overlay {
 public:
  std::string name() const override { return "chord"; }
  Status BuildLinks(Network* net, PeerId id, Rng* rng) override;
};

}  // namespace oscar

#endif  // OSCAR_OVERLAY_CHORD_CHORD_OVERLAY_H_

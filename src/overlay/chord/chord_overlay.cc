#include "overlay/chord/chord_overlay.h"

#include <cmath>

namespace oscar {

Status ChordOverlay::BuildLinks(Network* net, PeerId id, Rng* rng) {
  (void)rng;  // Chord's finger table is deterministic.
  const size_t n = net->alive_count();
  if (n < 3 || !net->alive(id)) return Status::Ok();
  const KeyId own_key = net->key(id);

  // The classic finger table: ceil(log2 N) fingers at halving key-space
  // distances. Under the uniform-key assumption finer fingers would all
  // collapse onto the successor, so Chord does not maintain them — and
  // a capped finger table cannot spend extra degree budget either,
  // which is exactly the rigidity the paper contrasts Oscar against.
  uint32_t table_size = 1;
  while ((size_t{1} << table_size) < n) ++table_size;
  const uint32_t fingers = std::min(net->RemainingOutBudget(id), table_size);
  for (uint32_t i = 1; i <= fingers; ++i) {
    const KeyId probe = KeyId::FromRaw(own_key.raw + (1ULL << (64 - i)));
    const auto target = net->ring().SuccessorOfKey(probe);
    if (!target.has_value()) break;
    // Duplicate owners and saturated targets simply drop the finger,
    // exactly as a capacity-respecting Chord node would.
    (void)net->AddLongLink(id, *target);
  }
  return Status::Ok();
}

}  // namespace oscar

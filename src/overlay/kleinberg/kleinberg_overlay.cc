#include "overlay/kleinberg/kleinberg_overlay.h"

#include <cmath>

namespace oscar {

Status KleinbergOverlay::BuildLinks(Network* net, PeerId id, Rng* rng) {
  const size_t n = net->alive_count();
  if (n < 3 || !net->alive(id)) return Status::Ok();
  const auto index = net->ring().IndexOf(net->key(id), id);
  if (!index.has_value()) return Status::Error("peer missing from ring");

  const double log_span = std::log(static_cast<double>(n - 1));
  uint32_t budget = net->RemainingOutBudget(id);
  const uint32_t max_attempts = 8 * budget + 8;
  for (uint32_t attempt = 0; budget > 0 && attempt < max_attempts;
       ++attempt) {
    // Harmonic rank draw over [1, n-1]: r = exp(U * ln(n-1)).
    const size_t rank = std::min<size_t>(
        n - 1, std::max<size_t>(
                   1, static_cast<size_t>(
                          std::exp(rng->NextDouble() * log_span))));
    const PeerId target = net->ring().at((*index + rank) % n).id;
    if (net->AddLongLink(id, target)) --budget;
  }
  return Status::Ok();
}

}  // namespace oscar

// Oracle Kleinberg construction: the full-knowledge upper bound Oscar
// approximates. Long-link targets are drawn by harmonic rank — the
// clockwise population rank r is chosen with P(r) ~ 1/r using the exact
// global ring index — which is the defining small-world property,
// independent of the key distribution.

#ifndef OSCAR_OVERLAY_KLEINBERG_KLEINBERG_OVERLAY_H_
#define OSCAR_OVERLAY_KLEINBERG_KLEINBERG_OVERLAY_H_

#include "overlay/overlay.h"

namespace oscar {

class KleinbergOverlay : public Overlay {
 public:
  std::string name() const override { return "kleinberg-oracle"; }
  Status BuildLinks(Network* net, PeerId id, Rng* rng) override;
};

}  // namespace oscar

#endif  // OSCAR_OVERLAY_KLEINBERG_KLEINBERG_OVERLAY_H_

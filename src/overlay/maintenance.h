// Amortized repair under continuous churn (extension X8). The paper
// rewires everyone periodically and calls churn handling orthogonal; a
// deployment repairs lazily (prune dead links, top the budget back up)
// plus an optional proactive fraction of full rewires per round.

#ifndef OSCAR_OVERLAY_MAINTENANCE_H_
#define OSCAR_OVERLAY_MAINTENANCE_H_

#include "churn/churn.h"
#include "overlay/overlay.h"

namespace oscar {

struct MaintenanceOptions {
  /// Fraction of alive peers fully rewired (partitions recomputed from
  /// scratch) each round, on top of lazy dead-link repair.
  double proactive_fraction = 0.0;
  /// Prune dead links but never rebuild: the cheapest repair tier —
  /// zero sampling bandwidth, routing tables only ever shrink.
  bool prune_only = false;
  /// Per-round sampling-step cap (0 = unbounded). Once a round's link
  /// building has spent this many sampling steps, the remaining peers
  /// this round get pruning only; the report flags the exhaustion.
  /// Pruning itself is always free and never capped.
  uint64_t max_sampling_steps_per_round = 0;
};

struct MaintenanceReport {
  uint64_t sampling_steps = 0;  // Sampling bandwidth spent this round.
  size_t pruned_links = 0;      // Dead links dropped by lazy repair.
  size_t rebuilt_peers = 0;     // Peers that rebuilt at least one link.
  size_t refreshed_peers = 0;   // Peers proactively rewired.
  /// The sampling budget ran out mid-round; some peers were pruned but
  /// not topped back up (they get another chance next round).
  bool budget_exhausted = false;
};

class Maintainer {
 public:
  Maintainer(OverlayPtr overlay, MaintenanceOptions options);

  /// One maintenance round over all alive peers.
  Result<MaintenanceReport> RunRound(Network* net, Rng* rng);

 private:
  OverlayPtr overlay_;
  MaintenanceOptions options_;
};

}  // namespace oscar

#endif  // OSCAR_OVERLAY_MAINTENANCE_H_

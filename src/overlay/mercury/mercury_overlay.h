// Mercury-style baseline: harmonic link construction measured in KEY
// SPACE rather than population. A peer draws a clockwise key-space
// distance d = exp((U - 1) * ln(N)) (harmonic over [1/N, 1]) and links
// to the owner of that key. Correct small-world geometry when keys are
// uniform; under skew, the geometry warps and in-links concentrate on
// peers owning large key-space gaps — the comparison the paper
// inherits from [8].

#ifndef OSCAR_OVERLAY_MERCURY_MERCURY_OVERLAY_H_
#define OSCAR_OVERLAY_MERCURY_MERCURY_OVERLAY_H_

#include "overlay/overlay.h"

namespace oscar {

class MercuryOverlay : public Overlay {
 public:
  std::string name() const override { return "mercury"; }
  Status BuildLinks(Network* net, PeerId id, Rng* rng) override;
};

}  // namespace oscar

#endif  // OSCAR_OVERLAY_MERCURY_MERCURY_OVERLAY_H_

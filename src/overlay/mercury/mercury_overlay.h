// Mercury-style baseline: harmonic link construction measured in KEY
// SPACE rather than population. A peer draws a clockwise key-space
// distance d = exp((U - 1) * ln(N)) (harmonic over [1/N, 1]) and links
// to the owner of that key. Correct small-world geometry when keys are
// uniform; under skew, the geometry warps and in-links concentrate on
// peers owning large key-space gaps — the comparison the paper
// inherits from [8].

#ifndef OSCAR_OVERLAY_MERCURY_MERCURY_OVERLAY_H_
#define OSCAR_OVERLAY_MERCURY_MERCURY_OVERLAY_H_

#include "overlay/overlay.h"

namespace oscar {

class MercuryOverlay : public Overlay {
 public:
  std::string name() const override { return "mercury"; }
  Status BuildLinks(Network* net, PeerId id, Rng* rng) override;

  /// Mercury's draws are pure key-space arithmetic over the ring index
  /// — no sampling walks, no overlay state — so planning is the same
  /// harmonic draw loop emitting candidates instead of links. With
  /// plans in hand Mercury rides the same parallel checkpoint-rewire
  /// and batched-join paths as Oscar (Chord and Kleinberg stay on the
  /// sequential rebuild: their oracle constructions are not worth
  /// planning).
  bool SupportsPlanning() const override { return true; }
  PeerLinkPlan PlanLinks(NetworkView net, PeerId id,
                         Rng* rng) const override;
  bool SupportsJoinPlanning() const override { return true; }
  PeerLinkPlan PlanJoinLinks(NetworkView net, KeyId key, DegreeCaps caps,
                             Rng* rng) const override;

 private:
  /// Shared draw loop: harmonic key-space probes from `own_key`,
  /// deduped on owners (and on `self`, the planning peer itself during
  /// a rewire; self == nullopt when join-planning for a peer not yet
  /// in `net`).
  static PeerLinkPlan PlanFrom(NetworkView net, KeyId own_key,
                               uint32_t budget, std::optional<PeerId> self,
                               Rng* rng);
};

}  // namespace oscar

#endif  // OSCAR_OVERLAY_MERCURY_MERCURY_OVERLAY_H_

#include "overlay/mercury/mercury_overlay.h"

#include <algorithm>
#include <cmath>
#include <optional>

namespace oscar {

Status MercuryOverlay::BuildLinks(Network* net, PeerId id, Rng* rng) {
  const size_t n = net->alive_count();
  if (n < 3 || !net->alive(id)) return Status::Ok();
  const KeyId own_key = net->key(id);
  const double log_n = std::log(static_cast<double>(n));

  uint32_t budget = net->RemainingOutBudget(id);
  const uint32_t max_attempts = 8 * budget + 8;
  for (uint32_t attempt = 0; budget > 0 && attempt < max_attempts;
       ++attempt) {
    // Harmonic over key-space distance [1/n, 1): d = e^{(U-1) ln n}.
    const double distance = std::exp((rng->NextDouble() - 1.0) * log_n);
    const KeyId probe = own_key.OffsetBy(distance);
    const auto target = net->ring().SuccessorOfKey(probe);
    if (!target.has_value()) break;
    if (net->AddLongLink(id, *target)) --budget;
  }
  return Status::Ok();
}

PeerLinkPlan MercuryOverlay::PlanFrom(NetworkView net, KeyId own_key,
                                      uint32_t budget,
                                      std::optional<PeerId> self, Rng* rng) {
  PeerLinkPlan plan;
  plan.budget = budget;
  const size_t n = net.alive_count();
  if (budget == 0 || n < 3) return plan;
  const double log_n = std::log(static_cast<double>(n));
  // A few backup slots beyond the budget: plans are blind to each
  // other, so some candidates die at apply against in-caps other plans
  // saturated first (mirrors OscarOptions::plan_backup_slots).
  const size_t slots = static_cast<size_t>(budget) + 4;
  const size_t max_attempts = 8 * slots + 8;
  for (size_t attempt = 0;
       plan.candidates.size() < slots && attempt < max_attempts;
       ++attempt) {
    // Harmonic over key-space distance [1/n, 1): d = e^{(U-1) ln n} —
    // exactly BuildLinks' draw, emitting candidates instead of links.
    const double distance = std::exp((rng->NextDouble() - 1.0) * log_n);
    const KeyId probe = own_key.OffsetBy(distance);
    const auto target = net.ring().SuccessorOfKey(probe);
    if (!target.has_value()) break;
    if (self.has_value() && *target == *self) continue;
    const bool seen =
        std::find_if(plan.candidates.begin(), plan.candidates.end(),
                     [&](const LinkCandidate& c) {
                       return c.primary == *target;
                     }) != plan.candidates.end();
    if (seen) continue;
    plan.candidates.push_back(LinkCandidate{*target, *target});
  }
  return plan;
}

PeerLinkPlan MercuryOverlay::PlanLinks(NetworkView net, PeerId id,
                                       Rng* rng) const {
  if (!net.alive(id)) return PeerLinkPlan{};
  // The rewire clears every long link before plans apply: full out-cap.
  return PlanFrom(net, net.key(id), net.caps(id).max_out, id, rng);
}

PeerLinkPlan MercuryOverlay::PlanJoinLinks(NetworkView net, KeyId key,
                                           DegreeCaps caps,
                                           Rng* rng) const {
  // The joiner is not in `net`, so no self to exclude — a probe can
  // never resolve to it.
  return PlanFrom(net, key, caps.max_out, std::nullopt, rng);
}

}  // namespace oscar

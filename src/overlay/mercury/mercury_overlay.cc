#include "overlay/mercury/mercury_overlay.h"

#include <cmath>

namespace oscar {

Status MercuryOverlay::BuildLinks(Network* net, PeerId id, Rng* rng) {
  const size_t n = net->alive_count();
  if (n < 3 || !net->peer(id).alive) return Status::Ok();
  const KeyId own_key = net->peer(id).key;
  const double log_n = std::log(static_cast<double>(n));

  uint32_t budget = net->RemainingOutBudget(id);
  const uint32_t max_attempts = 8 * budget + 8;
  for (uint32_t attempt = 0; budget > 0 && attempt < max_attempts;
       ++attempt) {
    // Harmonic over key-space distance [1/n, 1): d = e^{(U-1) ln n}.
    const double distance = std::exp((rng->NextDouble() - 1.0) * log_n);
    const KeyId probe = own_key.OffsetBy(distance);
    const auto target = net->ring().SuccessorOfKey(probe);
    if (!target.has_value()) break;
    if (net->AddLongLink(id, *target)) --budget;
  }
  return Status::Ok();
}

}  // namespace oscar

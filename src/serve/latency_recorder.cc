#include "serve/latency_recorder.h"

#include <algorithm>

namespace oscar {

LatencyRecorder::LatencyRecorder(size_t shards)
    : shards_(std::max<size_t>(1, shards)) {}

LogHistogram LatencyRecorder::Merged() const {
  LogHistogram merged;
  for (const LogHistogram& shard : shards_) merged.Merge(shard);
  return merged;
}

LatencyReport LatencyRecorder::Summarize(const LogHistogram& hist) {
  LatencyReport report;
  report.count = hist.Count();
  report.mean_ms = hist.Mean();
  report.p50_ms = hist.Percentile(50.0);
  report.p90_ms = hist.Percentile(90.0);
  report.p99_ms = hist.Percentile(99.0);
  report.p999_ms = hist.Percentile(99.9);
  report.max_ms = hist.Max();
  return report;
}

}  // namespace oscar

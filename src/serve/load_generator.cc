#include "serve/load_generator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <utility>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/network_view.h"
#include "core/rng.h"
#include "routing/csr_stepper.h"
#include "serve/token_bucket.h"

namespace oscar {
namespace {

// Counter-fork stream channels (Rng::Fork's `stream` argument): every
// consumer gets its own channel so no draw in one phase can shift
// another phase's stream.
constexpr uint64_t kRouteStream = 0x10ad;
constexpr uint64_t kHotKeyStream = 0x407;

/// Zipf CDF over ranks 1..n: rank r with probability proportional to
/// 1/r^s (same construction as the scenario catalog's hot-key law).
std::vector<double> ZipfCdf(size_t n, double exponent) {
  std::vector<double> cdf;
  cdf.reserve(n);
  double total = 0.0;
  for (size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), exponent);
    cdf.push_back(total);
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

}  // namespace

LoadGenerator::LoadGenerator(const TopologySnapshot& snapshot,
                             ServeOptions options)
    : snapshot_(snapshot), options_(std::move(options)) {}

Status LoadGenerator::RoutePhase(ServeReport* report) {
  const Ring& ring = snapshot_.ring();
  const size_t alive = ring.size();
  const NetworkView view(snapshot_);

  // Hot-key set: keys of randomly drawn alive peers (with replacement —
  // a duplicate just merges two popularity ranks onto one owner), so
  // every hot key has a concrete owner whose in-flight gauge the
  // peer-cap policy can saturate.
  std::vector<KeyId> hot_keys;
  std::vector<double> hot_cdf;
  if (options_.hot_keys > 0) {
    Rng hot_rng = Rng::Fork(options_.seed, kHotKeyStream, 0);
    hot_keys.reserve(options_.hot_keys);
    for (size_t i = 0; i < options_.hot_keys; ++i) {
      const size_t pick = hot_rng.UniformInt(alive);
      hot_keys.push_back(KeyId::FromRaw(ring.entries()[pick].key_raw));
    }
    hot_cdf = ZipfCdf(hot_keys.size(), options_.zipf_exponent);
  }

  routed_.assign(options_.lookups, RoutedLookup{});
  const uint32_t threads = std::max(1u, options_.threads);
  LatencyRecorder recorder(threads);
  // One stepper per worker: Start() resets route state but keeps the
  // neighbor scratch allocation warm across the worker's lookups.
  std::vector<CsrGreedyStepper> steppers(threads);
  const size_t max_steps = 4 * alive + 16;

  PoolGauge gauge;
  const auto wall_start = std::chrono::steady_clock::now();
  ParallelForWorkers(
      threads, options_.lookups,
      [&](uint32_t worker, size_t i) {
        // Each lookup draws from its own counter-forked stream, so the
        // (source, key) pair is a pure function of (seed, i) no matter
        // which worker claims the index or in what order.
        Rng rng = Rng::Fork(options_.seed, kRouteStream, i);
        const PeerId source =
            ring.entries()[rng.UniformInt(alive)].id;
        KeyId key;
        if (hot_keys.empty()) {
          key = KeyId::FromRaw(rng.Next());
        } else {
          const double u = rng.NextDouble();
          const auto it =
              std::upper_bound(hot_cdf.begin(), hot_cdf.end(), u);
          const size_t rank = std::min(
              static_cast<size_t>(it - hot_cdf.begin()),
              hot_keys.size() - 1);
          key = hot_keys[rank];
        }

        CsrGreedyStepper& stepper = steppers[worker];
        stepper.Start(view, source, key);
        for (size_t step = 0; step < max_steps && !stepper.done(); ++step) {
          stepper.Step(view);
        }
        if (!stepper.done()) stepper.Abandon(view);

        RoutedLookup& out = routed_[i];
        const RouteResult& result = stepper.result();
        out.messages = result.hops + result.wasted;
        out.success = result.success;
        out.owner = snapshot_.OwnerOf(key).value_or(source);
        recorder.shard(worker).Record(ServiceMs(out));
      },
      &gauge);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (gauge.Completed() != options_.lookups) {
    return Status::Error("route phase lost lookups (pool bug)");
  }

  report->routed = options_.lookups;
  report->route_wall_s = wall_s;
  report->route_lookups_per_s =
      wall_s > 0.0 ? static_cast<double>(options_.lookups) / wall_s : 0.0;

  uint64_t total_messages = 0;
  uint64_t total_service_messages = 0;
  size_t successes = 0;
  for (const RoutedLookup& lookup : routed_) {
    total_messages += lookup.messages;
    total_service_messages += lookup.messages == 0 ? 1 : lookup.messages;
    if (lookup.success) ++successes;
  }
  const double n = static_cast<double>(options_.lookups);
  report->mean_messages = static_cast<double>(total_messages) / n;
  report->route_success_rate = static_cast<double>(successes) / n;
  report->service = LatencyRecorder::Summarize(recorder.Merged());
  // The merged histogram's float sum depends on how work stealing
  // partitioned values across shards (float addition is not
  // associative); recompute the mean from the integer message total so
  // the summary stays byte-identical at any thread count.
  report->service.mean_ms =
      options_.hop_ms * static_cast<double>(total_service_messages) / n;
  return Status::Ok();
}

ServeCellReport LoadGenerator::ServeCell(
    double offered_per_s, const AdmissionPolicy& policy,
    const std::vector<double>& arrivals_ms) const {
  ServeCellReport cell;
  cell.offered_per_s = std::max(0.0, offered_per_s);
  cell.policy = policy.name();
  cell.submitted = arrivals_ms.size();

  struct Queued {
    double arrival_ms;
    size_t index;
  };
  struct Completion {
    double finish_ms;
    uint64_t seq;  // Start order: deterministic tie-break on finish.
    size_t index;
    bool operator>(const Completion& other) const {
      return finish_ms != other.finish_ms ? finish_ms > other.finish_ms
                                          : seq > other.seq;
    }
  };

  std::deque<Queued> queue;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      in_service;
  std::vector<uint32_t> owner_in_flight(snapshot_.size(), 0);
  const double timeout_ms = policy.QueueTimeoutMs();
  const size_t slots = std::max<size_t>(1, options_.concurrency);
  size_t free_slots = slots;
  LogHistogram latency;
  uint64_t start_seq = 0;
  double last_finish_ms = 0.0;

  // Per-cell admission/queue-depth timeline: three gauge events per
  // cadence tick, under this cell's own scope. Sampling reads state
  // only, so the sweep arithmetic (and its byte-determinism) is
  // untouched whether or not a sink is attached.
  TraceSink* const sink = options_.trace;
  double last_sample_ms = 0.0;
  bool sampled = false;
  const auto sample = [&](double now_ms) {
    TraceEvent depth;
    depth.t_us = TraceTimeUs(now_ms);
    depth.kind = TraceKind::kServeQueueDepth;
    depth.info = static_cast<uint32_t>(queue.size());
    sink->Append(depth);
    TraceEvent busy;
    busy.t_us = depth.t_us;
    busy.kind = TraceKind::kServeInFlight;
    busy.info = static_cast<uint32_t>(slots - free_slots);
    sink->Append(busy);
    TraceEvent refused;
    refused.t_us = depth.t_us;
    refused.kind = TraceKind::kServeDropped;
    refused.info = static_cast<uint32_t>(cell.dropped);
    refused.to = static_cast<uint32_t>(cell.shed);
    sink->Append(refused);
    last_sample_ms = now_ms;
    sampled = true;
  };
  if (sink != nullptr) {
    sink->SetScope(sink->Intern(StrCat(
        "serve rate=",
        cell.offered_per_s <= 0.0 ? std::string("off")
                                  : FormatDouble(cell.offered_per_s, 0),
        " policy=", cell.policy)));
  }

  // Starts service for `index` at `now_ms`; the end-to-end latency is
  // known immediately (queue wait + service time) — the completion
  // event only exists to free the slot and the owner gauge later.
  const auto start_service = [&](size_t index, double arrival_ms,
                                 double now_ms) {
    const double service_ms = ServiceMs(routed_[index]);
    const double finish_ms = now_ms + service_ms;
    in_service.push(Completion{finish_ms, start_seq++, index});
    --free_slots;
    latency.Record(now_ms - arrival_ms + service_ms);
    ++cell.completed;
    if (routed_[index].success) ++cell.succeeded;
    last_finish_ms = std::max(last_finish_ms, finish_ms);
  };

  // Frees one slot at `now_ms`, then refills it from the queue head,
  // shedding entries whose wait exceeded the policy deadline.
  const auto refill_from_queue = [&](double now_ms) {
    while (free_slots > 0 && !queue.empty()) {
      const Queued head = queue.front();
      queue.pop_front();
      if (now_ms - head.arrival_ms > timeout_ms) {
        ++cell.shed;
        --owner_in_flight[routed_[head.index].owner];
        continue;
      }
      start_service(head.index, head.arrival_ms, now_ms);
    }
  };

  const auto complete_until = [&](double now_ms) {
    while (!in_service.empty() && in_service.top().finish_ms <= now_ms) {
      const Completion done = in_service.top();
      in_service.pop();
      ++free_slots;
      --owner_in_flight[routed_[done.index].owner];
      refill_from_queue(done.finish_ms);
    }
  };

  for (size_t i = 0; i < arrivals_ms.size(); ++i) {
    const double now_ms = arrivals_ms[i];
    complete_until(now_ms);
    if (sink != nullptr &&
        (!sampled || now_ms - last_sample_ms >= options_.trace_cadence_ms)) {
      sample(now_ms);
    }
    const PeerId owner = routed_[i].owner;
    if (!policy.Admit(queue.size(), owner_in_flight[owner])) {
      ++cell.dropped;
      continue;
    }
    ++cell.admitted;
    ++owner_in_flight[owner];
    if (free_slots > 0 && queue.empty()) {
      start_service(i, now_ms, now_ms);
    } else {
      queue.push_back(Queued{now_ms, i});
      cell.queue_peak =
          std::max(cell.queue_peak, static_cast<double>(queue.size()));
    }
  }
  complete_until(std::numeric_limits<double>::infinity());
  // Closing sample: the drained state at the cell's last completion.
  if (sink != nullptr) sample(last_finish_ms);

  const double first_ms = arrivals_ms.empty() ? 0.0 : arrivals_ms.front();
  const double span_ms = last_finish_ms - first_ms;
  cell.achieved_per_s =
      span_ms > 0.0
          ? static_cast<double>(cell.completed) / span_ms * 1000.0
          : 0.0;
  cell.latency = LatencyRecorder::Summarize(latency);
  return cell;
}

Result<ServeReport> LoadGenerator::Run() {
  if (snapshot_.alive_count() == 0) {
    return Status::Error("serve: snapshot has no alive peers");
  }
  if (options_.lookups == 0) {
    return Status::Error("serve: lookups must be positive");
  }
  if (options_.offered_rates_per_s.empty()) {
    return Status::Error("serve: at least one offered rate required");
  }
  if (options_.policies.empty()) {
    return Status::Error("serve: at least one admission policy required");
  }
  std::vector<AdmissionPolicyPtr> policies;
  policies.reserve(options_.policies.size());
  for (const std::string& name : options_.policies) {
    auto policy = MakeAdmissionPolicy(name, options_.admission);
    if (!policy.ok()) return policy.status();
    policies.push_back(std::move(policy).value());
  }

  ServeReport report;
  Status routed = RoutePhase(&report);
  if (!routed.ok()) return routed;

  for (double rate : options_.offered_rates_per_s) {
    // One arrival schedule per rate, shared by every policy in the
    // cell row: policies are compared on literally identical traffic.
    const std::vector<double> arrivals = GenerateArrivalsMs(
        options_.lookups, rate, options_.burst, options_.seed);
    for (const AdmissionPolicyPtr& policy : policies) {
      report.cells.push_back(ServeCell(rate, *policy, arrivals));
      report.total_submitted += report.cells.back().submitted;
    }
  }
  return report;
}

}  // namespace oscar

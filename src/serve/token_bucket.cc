#include "serve/token_bucket.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"

namespace oscar {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_ms_(rate_per_s / 1000.0),
      burst_(std::max(1.0, burst)),
      tokens_(std::max(1.0, burst)) {}

void TokenBucket::RefillTo(double now_ms) {
  if (now_ms <= last_ms_) return;
  tokens_ = std::min(burst_, tokens_ + (now_ms - last_ms_) * rate_per_ms_);
  last_ms_ = now_ms;
}

double TokenBucket::AvailableAt(double now_ms) const {
  if (unlimited()) return burst_;
  if (now_ms <= last_ms_) return tokens_;
  return std::min(burst_, tokens_ + (now_ms - last_ms_) * rate_per_ms_);
}

bool TokenBucket::TryAcquire(double now_ms) {
  if (unlimited()) return true;
  RefillTo(now_ms);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::AcquireAt(double now_ms) {
  if (unlimited()) return now_ms;
  RefillTo(now_ms);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return now_ms;
  }
  // Earliest instant the fractional deficit refills to one whole token.
  const double wait_ms = (1.0 - tokens_) / rate_per_ms_;
  const double ready_ms = last_ms_ + wait_ms;
  RefillTo(ready_ms);
  tokens_ -= 1.0;
  return ready_ms;
}

std::vector<double> GenerateArrivalsMs(size_t count, double offered_per_s,
                                       double burst, uint64_t seed) {
  std::vector<double> arrivals(count, 0.0);
  if (count == 0 || offered_per_s <= 0.0) return arrivals;

  // Stream 0x5e72e is the serve-arrival channel; forking rather than
  // sharing the caller's rng keeps the schedule a pure function of
  // (seed, rate, burst) no matter what else the caller drew.
  Rng rng = Rng::Fork(seed, 0x5e72e, 0);
  TokenBucket bucket(offered_per_s, burst);
  const double mean_gap_ms = 1000.0 / offered_per_s;
  double demand_ms = 0.0;
  for (size_t i = 0; i < count; ++i) {
    // Exponential inter-arrival gap; 1 - u keeps log's argument in
    // (0, 1] (NextDouble can return exactly 0).
    demand_ms += -std::log(1.0 - rng.NextDouble()) * mean_gap_ms;
    arrivals[i] = bucket.AcquireAt(demand_ms);
  }
  return arrivals;
}

}  // namespace oscar

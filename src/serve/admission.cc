#include "serve/admission.h"

#include <limits>

#include "common/string_util.h"

namespace oscar {
namespace {

class AdmitAll : public AdmissionPolicy {
 public:
  std::string name() const override { return "none"; }
  bool Admit(size_t, size_t) const override { return true; }
};

class DropTail : public AdmissionPolicy {
 public:
  explicit DropTail(size_t queue_capacity) : capacity_(queue_capacity) {}
  std::string name() const override { return "drop-tail"; }
  bool Admit(size_t queue_depth, size_t) const override {
    return queue_depth < capacity_;
  }

 private:
  size_t capacity_;
};

class TimeoutShed : public AdmissionPolicy {
 public:
  explicit TimeoutShed(double timeout_ms) : timeout_ms_(timeout_ms) {}
  std::string name() const override { return "timeout"; }
  bool Admit(size_t, size_t) const override { return true; }
  double QueueTimeoutMs() const override { return timeout_ms_; }

 private:
  double timeout_ms_;
};

class PeerCap : public AdmissionPolicy {
 public:
  explicit PeerCap(size_t cap) : cap_(cap) {}
  std::string name() const override { return "peer-cap"; }
  bool Admit(size_t, size_t peer_in_flight) const override {
    return peer_in_flight < cap_;
  }

 private:
  size_t cap_;
};

}  // namespace

double AdmissionPolicy::QueueTimeoutMs() const {
  return std::numeric_limits<double>::infinity();
}

const std::vector<std::string>& AdmissionCatalog() {
  static const std::vector<std::string> kCatalog = {
      "none", "drop-tail", "timeout", "peer-cap"};
  return kCatalog;
}

Result<AdmissionPolicyPtr> MakeAdmissionPolicy(
    const std::string& name, const AdmissionOptions& options) {
  if (name == "none") return AdmissionPolicyPtr(new AdmitAll());
  if (name == "drop-tail") {
    return AdmissionPolicyPtr(new DropTail(options.queue_capacity));
  }
  if (name == "timeout") {
    return AdmissionPolicyPtr(new TimeoutShed(options.timeout_ms));
  }
  if (name == "peer-cap") {
    return AdmissionPolicyPtr(new PeerCap(options.per_peer_cap));
  }
  std::string known;
  for (const std::string& entry : AdmissionCatalog()) {
    known += known.empty() ? entry : StrCat("|", entry);
  }
  return Status::Error(
      StrCat("unknown admission policy '", name, "' (want ", known, ")"));
}

}  // namespace oscar

// Pluggable admission control for the serving layer: given how deep
// the wait queue is and how much traffic is already in flight for the
// target's owner peer, decide whether a newly arrived lookup enters
// the system, and how long it may wait before being shed.
//
// Policies are deliberately pure decision tables over two gauges —
// queue depth and per-peer in-flight — so the same object serves both
// operating modes: a wall-clock deployment feeds it the thread pool's
// live PoolGauge readings (common/thread_pool.h), while oscar_serve's
// deterministic summary feeds it modeled virtual-time depths from the
// queueing simulation. The catalog:
//
//   none       admit everything, wait forever (the unprotected
//              baseline — under overload the queue and tail latency
//              grow without bound)
//   drop-tail  bounded wait queue; arrivals beyond queue_capacity are
//              refused at the door (classic bounded-buffer backpressure:
//              tail latency capped, work lost at the edge)
//   timeout    admit everything, but shed any lookup still queued
//              after timeout_ms (deadline-aware shedding: spends queue
//              memory to avoid doing work nobody is still waiting for)
//   peer-cap   refuse a lookup when its owner peer already has
//              per_peer_cap lookups queued or in service (hot-spot
//              protection: under Zipf skew only the hot owners shed,
//              the long tail keeps serving)

#ifndef OSCAR_SERVE_ADMISSION_H_
#define OSCAR_SERVE_ADMISSION_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace oscar {

struct AdmissionOptions {
  size_t queue_capacity = 4096;  // drop-tail's wait-queue bound.
  double timeout_ms = 50.0;      // timeout's max queue wait.
  size_t per_peer_cap = 64;      // peer-cap's per-owner in-flight bound.
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  virtual std::string name() const = 0;

  /// Admit a lookup arriving when `queue_depth` lookups wait ahead of
  /// it and `peer_in_flight` lookups for the same owner peer are
  /// queued or in service.
  virtual bool Admit(size_t queue_depth, size_t peer_in_flight) const = 0;

  /// Maximum queue wait before an admitted lookup is shed; infinity
  /// means never.
  virtual double QueueTimeoutMs() const;
};

using AdmissionPolicyPtr = std::unique_ptr<AdmissionPolicy>;

/// The policy names, in catalog order.
const std::vector<std::string>& AdmissionCatalog();

/// Factory over the catalog: "none" | "drop-tail" | "timeout" |
/// "peer-cap". Unknown names are an error naming the catalog.
Result<AdmissionPolicyPtr> MakeAdmissionPolicy(
    const std::string& name, const AdmissionOptions& options);

}  // namespace oscar

#endif  // OSCAR_SERVE_ADMISSION_H_

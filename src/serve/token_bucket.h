// Deterministic token-bucket traffic shaping in virtual time, plus the
// open-loop arrival generator built on it. Tokens refill continuously
// at `rate_per_s` up to a `burst` ceiling; each admission spends one
// token, and when the bucket is dry AcquireAt reports the earliest
// future instant a token will exist instead of blocking. Everything is
// pure arithmetic over virtual milliseconds — no clocks, no sleeping —
// so a (seed, rate, burst) triple always produces the same arrival
// schedule, which is the substrate of oscar_serve's byte-identical
// summaries.

#ifndef OSCAR_SERVE_TOKEN_BUCKET_H_
#define OSCAR_SERVE_TOKEN_BUCKET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oscar {

class TokenBucket {
 public:
  /// rate_per_s <= 0 builds an unlimited bucket (every acquire succeeds
  /// immediately) — the "rate limiting off" mode. burst is clamped to
  /// at least one token so a valid bucket can always make progress.
  TokenBucket(double rate_per_s, double burst);

  /// Tokens banked at virtual time `now_ms` (capped at burst).
  double AvailableAt(double now_ms) const;

  /// Spends one token if a whole one is banked at `now_ms`.
  bool TryAcquire(double now_ms);

  /// Spends one token at the earliest instant >= now_ms one exists,
  /// and returns that instant. This is the shaping primitive: a demand
  /// event at `now_ms` is released at AcquireAt(now_ms).
  double AcquireAt(double now_ms);

  bool unlimited() const { return rate_per_ms_ <= 0.0; }

 private:
  void RefillTo(double now_ms);

  double rate_per_ms_;
  double burst_;
  double tokens_;
  double last_ms_ = 0.0;
};

/// Open-loop arrival schedule for `count` lookups: Poisson demand at
/// `offered_per_s` (exponential inter-arrival gaps drawn from `seed`
/// via a private forked stream) shaped through a TokenBucket of the
/// same sustained rate with `burst` tokens of depth. Demand that
/// outruns the bucket is released, in order, as tokens refill — short
/// Poisson clumps up to `burst` pass through intact, longer ones are
/// smoothed to the sustained rate. The result is sorted and
/// non-negative.
///
/// offered_per_s <= 0 means rate limiting off: every arrival is at
/// t = 0 (the pure firehose burst — maximum instantaneous overload).
std::vector<double> GenerateArrivalsMs(size_t count, double offered_per_s,
                                       double burst, uint64_t seed);

}  // namespace oscar

#endif  // OSCAR_SERVE_TOKEN_BUCKET_H_

// Open-loop lookup firehose over a frozen TopologySnapshot, in two
// phases with very different clocks:
//
// 1. ROUTE (wall-clock parallel, virtual-time free). Every lookup's
//    (source, target key) pair is drawn from its own counter-forked
//    rng stream — Rng::Fork(seed, stream, lookup) — and routed over
//    the shared snapshot by a per-worker CSR greedy stepper on the
//    common/thread_pool worker pool. A frozen snapshot is read-only,
//    so the fan-out is embarrassingly parallel and, because every
//    result lands in its own per-index slot and the per-lookup streams
//    consume nothing from each other, the routed outcomes are
//    identical at any OSCAR_THREADS. This phase is the raw-throughput
//    measurement: routed lookups per wall second.
//
// 2. SERVE (sequential, virtual-time). The routed lookups are replayed
//    through a deterministic queueing model per (offered rate,
//    admission policy) sweep cell: token-bucket arrivals (open loop —
//    arrivals never wait for completions), a FIFO wait queue feeding
//    `concurrency` virtual service slots, service time priced from the
//    route's message count, and the admission policy deciding at each
//    arrival (and each dequeue, for deadline shedding) what to refuse.
//    Everything here is arithmetic over the phase-1 results, so the
//    summary table is byte-identical across thread counts and runs.
//
// Splitting the clocks is what reconciles "drive millions of lookups
// across a worker pool" with "byte-identical summaries": wall time
// only ever appears in the throughput line (stderr / bench JSON),
// never in the summary rows.

#ifndef OSCAR_SERVE_LOAD_GENERATOR_H_
#define OSCAR_SERVE_LOAD_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/topology_snapshot.h"
#include "serve/admission.h"
#include "serve/latency_recorder.h"
#include "trace/trace.h"

namespace oscar {

struct ServeOptions {
  size_t lookups = 1000000;  // Routed once, replayed per sweep cell.
  uint64_t seed = 42;
  uint32_t threads = 1;      // Route-phase worker pool width.

  // Sweep axes: every offered rate crossed with every policy name.
  // Rate <= 0 means rate limiting off (all arrivals at t = 0).
  std::vector<double> offered_rates_per_s = {4000.0, 16000.0, 0.0};
  std::vector<std::string> policies = {"none", "drop-tail", "timeout",
                                       "peer-cap"};

  double burst = 64.0;       // Token-bucket depth (arrival clumping).
  size_t concurrency = 64;   // Virtual service slots.
  double hop_ms = 1.0;       // Service cost per routed message.
  AdmissionOptions admission;

  // Query-key skew: 0 = uniform keys; > 0 = that many hot keys under
  // a Zipf(zipf_exponent) popularity law (hot keys are drawn from the
  // snapshot's alive peers, so each has a real owner to overload).
  size_t hot_keys = 0;
  double zipf_exponent = 1.1;

  // Observability: with a sink attached, every sweep cell emits a
  // virtual-time admission/queue-depth timeline — wait-queue depth,
  // busy service slots, and cumulative dropped/shed counts sampled at
  // least `trace_cadence_ms` of virtual time apart, each cell under its
  // own "serve rate=<r> policy=<p>" scope. The sweep is sequential
  // virtual-time arithmetic, so the trace inherits its byte-determinism
  // across OSCAR_THREADS. Detached (nullptr) = zero events, one branch
  // per arrival. The wall-clock-parallel route phase is never traced.
  TraceSink* trace = nullptr;
  double trace_cadence_ms = 10.0;
};

/// One (offered rate, policy) sweep cell. All fields are virtual-time
/// deterministic.
struct ServeCellReport {
  double offered_per_s = 0.0;  // 0 = rate limiting off (burst at t=0).
  std::string policy;
  size_t submitted = 0;
  size_t admitted = 0;   // Passed admission at arrival.
  size_t dropped = 0;    // Refused at arrival (submitted - admitted).
  size_t shed = 0;       // Admitted but timed out waiting in queue.
  size_t completed = 0;  // Reached a service slot and finished.
  size_t succeeded = 0;  // Completed AND the route delivered.
  double achieved_per_s = 0.0;  // completed / virtual makespan.
  double queue_peak = 0.0;      // Deepest the wait queue ever got.
  LatencyReport latency;        // Arrival -> service completion.
};

struct ServeReport {
  // Route phase.
  size_t routed = 0;
  double route_success_rate = 0.0;
  double mean_messages = 0.0;      // Hops + wasted, the service driver.
  LatencyReport service;           // Pure service time, no queueing.
  double route_wall_s = 0.0;       // Wall clock: NOT deterministic.
  double route_lookups_per_s = 0.0;  // Wall clock: NOT deterministic.

  // Serve phase: offered_rates x policies, rates-major order.
  std::vector<ServeCellReport> cells;
  size_t total_submitted = 0;  // Sum over cells.
};

class LoadGenerator {
 public:
  /// The snapshot must stay alive for the generator's lifetime.
  LoadGenerator(const TopologySnapshot& snapshot, ServeOptions options);

  /// Routes the lookup stream once, then sweeps every (rate, policy)
  /// cell. Errors on an empty snapshot, an empty sweep axis, or an
  /// unknown policy name.
  Result<ServeReport> Run();

 private:
  struct RoutedLookup {
    uint32_t messages = 0;  // hops + wasted (the service cost driver).
    PeerId owner = 0;       // Owner of the target key at freeze time.
    bool success = false;
  };

  Status RoutePhase(ServeReport* report);
  ServeCellReport ServeCell(double offered_per_s,
                            const AdmissionPolicy& policy,
                            const std::vector<double>& arrivals_ms) const;
  double ServiceMs(const RoutedLookup& lookup) const {
    // A self-owned lookup (zero messages) still burns a slot for one
    // message time: admission must cost something or the model admits
    // infinite free work.
    return options_.hop_ms *
           static_cast<double>(lookup.messages == 0 ? 1 : lookup.messages);
  }

  const TopologySnapshot& snapshot_;
  ServeOptions options_;
  std::vector<RoutedLookup> routed_;
};

}  // namespace oscar

#endif  // OSCAR_SERVE_LOAD_GENERATOR_H_

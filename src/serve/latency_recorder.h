// Thread-sharded latency accounting over common/stats' LogHistogram.
// Each worker thread of a load-generation batch owns one histogram
// shard (keyed by the dense worker index ParallelForWorkers hands out),
// records into it lock-free, and the shards are merged afterwards.
// Because a merge is an element-wise integer add over a fixed bucket
// layout, the merged histogram — and every percentile read off it — is
// identical no matter how the work-stealing pool scattered lookups
// across workers. That is the property oscar_serve's cross-thread-count
// byte-identical summary stands on.

#ifndef OSCAR_SERVE_LATENCY_RECORDER_H_
#define OSCAR_SERVE_LATENCY_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace oscar {

/// Percentile digest of one merged histogram.
struct LatencyReport {
  uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

class LatencyRecorder {
 public:
  /// One shard per worker; `shards` >= 1.
  explicit LatencyRecorder(size_t shards);

  /// The histogram owned by `worker`. Distinct workers may record
  /// concurrently; a single shard must only ever be written by the one
  /// thread that owns it.
  LogHistogram& shard(size_t worker) { return shards_[worker]; }
  size_t shard_count() const { return shards_.size(); }

  /// Element-wise sum of all shards (order-independent).
  LogHistogram Merged() const;

  /// Merged() reduced to the serving tail digest.
  LatencyReport Report() const { return Summarize(Merged()); }

  static LatencyReport Summarize(const LogHistogram& hist);

 private:
  std::vector<LogHistogram> shards_;
};

}  // namespace oscar

#endif  // OSCAR_SERVE_LATENCY_RECORDER_H_

#include "metrics/recovery_metrics.h"

#include <algorithm>

namespace oscar {
namespace {

/// Success fraction over completions[first, last).
double SuccessOver(const std::vector<const LookupOutcome*>& completions,
                   size_t first, size_t last) {
  if (last <= first) return 1.0;
  size_t ok = 0;
  for (size_t i = first; i < last; ++i) {
    if (completions[i]->success) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(last - first);
}

/// Mean hops of the SUCCESSFUL completions in [first, last).
double HopsOver(const std::vector<const LookupOutcome*>& completions,
                size_t first, size_t last) {
  size_t ok = 0;
  double hops = 0.0;
  for (size_t i = first; i < last; ++i) {
    if (!completions[i]->success) continue;
    ++ok;
    hops += completions[i]->hops;
  }
  return ok > 0 ? hops / static_cast<double>(ok) : 0.0;
}

}  // namespace

RecoveryReport ComputeRecovery(const std::vector<LookupOutcome>& outcomes,
                               const std::vector<InjectedFault>& faults,
                               const RecoveryOptions& options) {
  RecoveryReport report;
  std::vector<const LookupOutcome*> done;
  done.reserve(outcomes.size());
  for (const LookupOutcome& outcome : outcomes) {
    if (outcome.finished) done.push_back(&outcome);
  }
  // Stable on equal completion times, so simultaneous completions keep
  // submission order and the windows are reproducible bytes.
  std::stable_sort(done.begin(), done.end(),
                   [](const LookupOutcome* a, const LookupOutcome* b) {
                     return a->completed_ms < b->completed_ms;
                   });
  const size_t window = std::max<size_t>(1, options.window);

  report.faults.reserve(faults.size());
  for (const InjectedFault& fault : faults) {
    FaultRecovery rec;
    rec.label = fault.label;
    rec.at_ms = fault.at_ms;
    rec.heal_ms = fault.heal_ms;
    rec.crashed = fault.crashed;

    // First completion strictly after injection.
    const size_t split = static_cast<size_t>(
        std::upper_bound(done.begin(), done.end(), fault.at_ms,
                         [](double t, const LookupOutcome* o) {
                           return t < o->completed_ms;
                         }) -
        done.begin());
    const size_t before_first = split > window ? split - window : 0;
    rec.ok_before = SuccessOver(done, before_first, split);
    rec.hops_before = HopsOver(done, before_first, split);

    const size_t after = done.size() - split;
    if (after == 0) {
      // Nothing completed post-injection: no dip observable.
      rec.dip = rec.ok_before;
      rec.ok_after = rec.ok_before;
      rec.hops_after = rec.hops_before;
      rec.ttr_ms = 0.0;
      report.faults.push_back(std::move(rec));
      continue;
    }
    const size_t w = std::min(window, after);
    const double threshold = options.threshold * rec.ok_before;
    rec.dip = 1.0;
    bool dipped = false;
    bool recovered = false;
    for (size_t last = split + w; last <= done.size(); ++last) {
      const double rate = SuccessOver(done, last - w, last);
      rec.dip = std::min(rec.dip, rate);
      if (rate < threshold) {
        dipped = true;
      } else if (dipped && !recovered) {
        recovered = true;
        rec.ttr_ms = done[last - 1]->completed_ms - fault.at_ms;
      }
    }
    if (!dipped) {
      rec.ttr_ms = 0.0;  // Never fell below the threshold.
    } else if (!recovered) {
      rec.ttr_ms = -1.0;  // Fell and stayed down through the run's end.
    }
    rec.ok_after = SuccessOver(done, done.size() - w, done.size());
    rec.hops_after = HopsOver(done, done.size() - w, done.size());
    report.faults.push_back(std::move(rec));
  }
  return report;
}

}  // namespace oscar

#include "metrics/routing_load_metrics.h"

#include <algorithm>

#include "common/stats.h"

namespace oscar {

RoutingLoadReport EvaluateRoutingLoad(NetworkView net,
                                      const Router& router,
                                      const RoutingLoadOptions& options,
                                      Rng* rng) {
  RoutingLoadReport report;
  const std::vector<PeerId> alive = net.AlivePeers();
  if (alive.empty() || options.num_queries == 0) return report;

  std::vector<double> load(net.size(), 0.0);
  for (size_t q = 0; q < options.num_queries; ++q) {
    const PeerId source =
        alive[static_cast<size_t>(rng->UniformInt(alive.size()))];
    const KeyId key = options.query_distribution != nullptr
                          ? options.query_distribution->Sample(rng)
                          : KeyId::FromUnit(rng->NextDouble());
    const RouteResult route = router.Route(net, source, key);
    // Everyone who forwarded the message pays; the terminal only serves.
    for (size_t i = 0; i + 1 < route.path.size(); ++i) {
      load[route.path[i]] += 1.0;
    }
  }

  std::vector<double> loads, capacities, relative;
  loads.reserve(alive.size());
  double total = 0.0;
  for (PeerId id : alive) {
    const uint32_t max_in = net.caps(id).max_in;
    loads.push_back(load[id]);
    capacities.push_back(static_cast<double>(max_in));
    relative.push_back(max_in > 0
                           ? load[id] / static_cast<double>(max_in)
                           : 0.0);
    total += load[id];
  }
  report.mean_load = total / static_cast<double>(alive.size());
  if (report.mean_load > 0.0) {
    report.peak_to_mean = Percentile(loads, 90.0) / report.mean_load;
    report.max_to_mean =
        *std::max_element(loads.begin(), loads.end()) / report.mean_load;
  }
  report.budget_relative_gini = Gini(relative);
  report.load_capacity_correlation = PearsonCorrelation(loads, capacities);
  return report;
}

}  // namespace oscar

// Recovery metrics: how fast (in virtual time) the overlay's lookup
// success rate comes back after each injected fault. Computed offline
// from the per-lookup outcome log and the fault injection records —
// pure functions of already-deterministic inputs, so the numbers are
// byte-stable across thread counts and repeat runs.
//
// The windowed success rate is the fraction of successful lookups in a
// sliding window of consecutive completions (ordered by virtual
// completion time, submission id breaking ties). Time-to-recover for a
// fault is measured against a RELATIVE threshold —
// `threshold * ok_before` — because hostile scenarios run with ambient
// loss and never sit at an absolute 1.0 baseline.

#ifndef OSCAR_METRICS_RECOVERY_METRICS_H_
#define OSCAR_METRICS_RECOVERY_METRICS_H_

#include <string>
#include <vector>

#include "sim/fault_plan.h"
#include "sim/message_sim.h"

namespace oscar {

struct RecoveryOptions {
  /// Completions per sliding success window (clamped to what exists).
  size_t window = 25;
  /// Recovery re-crossing level as a fraction of the pre-fault rate.
  double threshold = 0.9;
};

/// Per-fault recovery record. Sentinels: ttr_ms == 0 means the windowed
/// rate never dipped below the threshold (nothing to recover from);
/// ttr_ms < 0 means it dipped and never came back within the run.
struct FaultRecovery {
  std::string label;       // FaultSpec::Label() of the injected fault.
  double at_ms = 0.0;
  double heal_ms = -1.0;   // < 0: the fault never healed (e.g. a crash).
  size_t crashed = 0;      // Peers a region crash took down.
  double ok_before = 1.0;  // Windowed success just before injection.
  double dip = 1.0;        // Worst post-injection windowed success.
  double ok_after = 1.0;   // Windowed success over the final window.
  double hops_before = 0.0;  // Mean hops of pre-fault window successes.
  double hops_after = 0.0;   // Mean hops of final-window successes.
  double ttr_ms = 0.0;     // Virtual ms from injection to re-crossing.
};

struct RecoveryReport {
  std::vector<FaultRecovery> faults;  // Plan order.
  bool empty() const { return faults.empty(); }
};

/// Replays the outcome log against each injected fault. Unfinished
/// lookups are ignored (they never completed, so they have no
/// completion time to order by).
RecoveryReport ComputeRecovery(const std::vector<LookupOutcome>& outcomes,
                               const std::vector<InjectedFault>& faults,
                               const RecoveryOptions& options = {});

}  // namespace oscar

#endif  // OSCAR_METRICS_RECOVERY_METRICS_H_

// Link-geometry metrics (extension X5): the rank-octave histogram of
// long links. Kleinberg navigability needs link probability ~ 1/rank,
// i.e. a FLAT histogram over clockwise population-rank octaves
// [2^i, 2^{i+1}).

#ifndef OSCAR_METRICS_TOPOLOGY_METRICS_H_
#define OSCAR_METRICS_TOPOLOGY_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/network_view.h"

namespace oscar {

struct LinkGeometryReport {
  /// octave_counts[i] = long links whose clockwise rank falls in
  /// [2^i, 2^{i+1}).
  std::vector<uint64_t> octave_counts;
  uint64_t total_links = 0;
  /// max/mean share over octaves fully contained in [1, N) — 1.0 is a
  /// perfectly flat (navigable) geometry; large values mean the
  /// construction piles links onto a few scales.
  double octave_imbalance = 0.0;
};

LinkGeometryReport ComputeLinkGeometry(NetworkView net);

}  // namespace oscar

#endif  // OSCAR_METRICS_TOPOLOGY_METRICS_H_

// In-degree load metrics (Fig 1b, ablation X3): how well an overlay
// exploits the in-degree volume peers offer.

#ifndef OSCAR_METRICS_DEGREE_METRICS_H_
#define OSCAR_METRICS_DEGREE_METRICS_H_

#include <vector>

#include "core/network.h"

namespace oscar {

struct DegreeLoadReport {
  /// Per-peer actual/available in-degree, sorted ascending (the Fig 1b
  /// curve).
  std::vector<double> sorted_relative_load;
  /// Sum of realized in-degree over the total offered in-degree volume.
  double utilization = 0.0;
  /// Fraction of peers whose in-degree cap is fully used.
  double saturated_fraction = 0.0;
  /// Gini coefficient of the relative loads (0 == perfectly even).
  double load_gini = 0.0;
};

DegreeLoadReport ComputeDegreeLoad(const Network& net);

/// `points` evenly spaced samples of a sorted curve (endpoints included).
std::vector<double> DownsampleCurve(const std::vector<double>& curve,
                                    size_t points);

}  // namespace oscar

#endif  // OSCAR_METRICS_DEGREE_METRICS_H_

// Aggregations for message-level simulation runs: end-to-end latency
// percentiles, time-weighted in-flight concurrency, and per-peer
// forwarding load (how unevenly the message traffic lands on peers —
// the load story of the flash-crowd scenarios).

#ifndef OSCAR_METRICS_MESSAGE_METRICS_H_
#define OSCAR_METRICS_MESSAGE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oscar {

struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Summarizes a latency sample (empty input => all zeros).
LatencySummary SummarizeLatency(std::vector<double> samples_ms);

/// Time-weighted tracker of a gauge (the number of in-flight lookups):
/// feed every change with the virtual time it happened at; read back
/// the peak and the time-weighted mean.
class ConcurrencyTracker {
 public:
  void Add(double now_ms, int delta);
  size_t current() const { return current_; }
  size_t peak() const { return peak_; }
  /// Mean gauge value over [first Add, now_ms]; 0 before any Add.
  double TimeWeightedMean(double now_ms) const;

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
  double integral_ = 0.0;  // ∫ gauge dt since first Add.
  double first_ms_ = 0.0;
  double last_ms_ = 0.0;
  bool started_ = false;
};

struct PeerLoadSummary {
  double mean = 0.0;       // Messages per peer (over `population` peers).
  uint64_t max = 0;        // Busiest peer's message count.
  double peak_to_mean = 0.0;
  double gini = 0.0;       // Inequality of the load distribution.
  size_t population = 0;   // Peers the summary averages over.
};

/// Summarizes per-peer message counts. Only the first `population`
/// semantics matter to callers: pass counts for every peer that could
/// have carried traffic (zeros included) so the inequality numbers
/// reflect idle peers too.
PeerLoadSummary SummarizePeerLoad(const std::vector<uint64_t>& counts);

}  // namespace oscar

#endif  // OSCAR_METRICS_MESSAGE_METRICS_H_

// Routing-load metrics (extension X7): every forwarded message charged
// to the forwarding peer, under a skewed query workload.

#ifndef OSCAR_METRICS_ROUTING_LOAD_METRICS_H_
#define OSCAR_METRICS_ROUTING_LOAD_METRICS_H_

#include <cstddef>

#include "core/network_view.h"
#include "keyspace/key_distribution.h"
#include "routing/router.h"

namespace oscar {

struct RoutingLoadOptions {
  size_t num_queries = 0;
  /// Query keys; nullptr means uniform.
  const KeyDistribution* query_distribution = nullptr;
};

struct RoutingLoadReport {
  double mean_load = 0.0;      // Mean forwarded messages per alive peer.
  /// Hotspot factor: the 90th-percentile peer load over the mean. The
  /// busy tail of the distribution characterizes structural hotspots;
  /// the single maximum is dominated by order-statistic noise at
  /// realistic query volumes and is not comparable across overlays.
  double peak_to_mean = 0.0;
  /// The raw maximum over the mean, for callers that do want the
  /// extreme order statistic.
  double max_to_mean = 0.0;
  /// Gini of load normalized by declared capacity (in-degree cap):
  /// 0 == everyone carries traffic proportional to what they offered.
  double budget_relative_gini = 0.0;
  /// Pearson correlation between per-peer load and declared capacity.
  double load_capacity_correlation = 0.0;
};

RoutingLoadReport EvaluateRoutingLoad(NetworkView net,
                                      const Router& router,
                                      const RoutingLoadOptions& options,
                                      Rng* rng);

}  // namespace oscar

#endif  // OSCAR_METRICS_ROUTING_LOAD_METRICS_H_

#include "metrics/message_metrics.h"

#include <algorithm>

#include "common/stats.h"

namespace oscar {

LatencySummary SummarizeLatency(std::vector<double> samples_ms) {
  // The shared log-bucket histogram (also behind serve/latency_recorder)
  // instead of sort-based exact percentiles: constant memory, O(n)
  // instead of O(n log n), and ~2% bucket quantization on the
  // percentiles — well inside the run-to-run spread the message-level
  // summaries tolerate. Mean and max stay exact.
  LatencySummary summary;
  if (samples_ms.empty()) return summary;
  LogHistogram hist;
  for (double ms : samples_ms) hist.Record(ms);
  summary.mean_ms = hist.Mean();
  summary.max_ms = hist.Max();
  summary.p50_ms = hist.Percentile(50.0);
  summary.p95_ms = hist.Percentile(95.0);
  summary.p99_ms = hist.Percentile(99.0);
  return summary;
}

void ConcurrencyTracker::Add(double now_ms, int delta) {
  if (!started_) {
    started_ = true;
    first_ms_ = last_ms_ = now_ms;
  }
  if (now_ms > last_ms_) {
    integral_ += static_cast<double>(current_) * (now_ms - last_ms_);
    last_ms_ = now_ms;
  }
  if (delta < 0 && static_cast<size_t>(-delta) > current_) {
    current_ = 0;
  } else {
    current_ += delta;
  }
  peak_ = std::max(peak_, current_);
}

double ConcurrencyTracker::TimeWeightedMean(double now_ms) const {
  if (!started_) return 0.0;
  double integral = integral_;
  if (now_ms > last_ms_) {
    integral += static_cast<double>(current_) * (now_ms - last_ms_);
  }
  const double span = std::max(now_ms, last_ms_) - first_ms_;
  // A zero-length observation window (everything happened at one
  // instant) degenerates to the current gauge value.
  return span > 0.0 ? integral / span : static_cast<double>(current_);
}

PeerLoadSummary SummarizePeerLoad(const std::vector<uint64_t>& counts) {
  PeerLoadSummary summary;
  summary.population = counts.size();
  if (counts.empty()) return summary;
  std::vector<double> values;
  values.reserve(counts.size());
  uint64_t total = 0;
  for (uint64_t c : counts) {
    summary.max = std::max(summary.max, c);
    total += c;
    values.push_back(static_cast<double>(c));
  }
  summary.mean = static_cast<double>(total) /
                 static_cast<double>(counts.size());
  summary.peak_to_mean =
      summary.mean > 0.0 ? static_cast<double>(summary.max) / summary.mean
                         : 0.0;
  summary.gini = Gini(values);
  return summary;
}

}  // namespace oscar

#include "metrics/degree_metrics.h"

#include <algorithm>

#include "common/stats.h"

namespace oscar {

DegreeLoadReport ComputeDegreeLoad(const Network& net) {
  DegreeLoadReport report;
  double offered = 0.0, realized = 0.0;
  size_t saturated = 0, counted = 0;
  for (PeerId id : net.AlivePeers()) {
    const DegreeCaps caps = net.caps(id);
    if (caps.max_in == 0) continue;
    ++counted;
    offered += caps.max_in;
    realized += net.in_degree(id);
    if (net.in_degree(id) >= caps.max_in) ++saturated;
    report.sorted_relative_load.push_back(
        static_cast<double>(net.in_degree(id)) /
        static_cast<double>(caps.max_in));
  }
  std::sort(report.sorted_relative_load.begin(),
            report.sorted_relative_load.end());
  if (offered > 0.0) report.utilization = realized / offered;
  if (counted > 0) {
    report.saturated_fraction =
        static_cast<double>(saturated) / static_cast<double>(counted);
  }
  report.load_gini = Gini(report.sorted_relative_load);
  return report;
}

std::vector<double> DownsampleCurve(const std::vector<double>& curve,
                                    size_t points) {
  std::vector<double> out;
  if (curve.empty() || points == 0) return out;
  if (points == 1 || curve.size() == 1) return {curve.front()};
  out.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const size_t index = i * (curve.size() - 1) / (points - 1);
    out.push_back(curve[index]);
  }
  return out;
}

}  // namespace oscar

#include "metrics/topology_metrics.h"

#include <algorithm>
#include <cmath>

namespace oscar {

LinkGeometryReport ComputeLinkGeometry(NetworkView net) {
  LinkGeometryReport report;
  const size_t n = net.alive_count();
  if (n < 2) return report;

  size_t octaves = 0;
  while ((size_t{1} << (octaves + 1)) <= n - 1) ++octaves;
  ++octaves;  // Octave for the top partial range.
  report.octave_counts.assign(octaves, 0);

  const Ring& ring = net.ring();
  for (size_t index = 0; index < n; ++index) {
    const PeerId id = ring.at(index).id;
    for (PeerId target : net.OutLinks(id)) {
      if (!net.alive(target)) continue;
      const auto target_index = ring.IndexOf(net.key(target), target);
      if (!target_index.has_value()) continue;
      const size_t rank = (*target_index + n - index) % n;
      if (rank == 0) continue;
      const size_t octave = static_cast<size_t>(
          std::floor(std::log2(static_cast<double>(rank))));
      ++report.octave_counts[std::min(octave, octaves - 1)];
      ++report.total_links;
    }
  }

  // Imbalance over octaves fully contained in [1, n): the top octave is
  // truncated by the ring size and would distort the flatness measure.
  size_t full_octaves = 0;
  while ((size_t{1} << (full_octaves + 1)) <= n - 1) ++full_octaves;
  if (full_octaves == 0 || report.total_links == 0) return report;
  uint64_t in_full = 0, max_count = 0;
  for (size_t i = 0; i < full_octaves; ++i) {
    in_full += report.octave_counts[i];
    max_count = std::max(max_count, report.octave_counts[i]);
  }
  if (in_full == 0) return report;
  const double mean = static_cast<double>(in_full) /
                      static_cast<double>(full_octaves);
  report.octave_imbalance = static_cast<double>(max_count) / mean;
  return report;
}

}  // namespace oscar

// Replicated key-value placement over the ring (extension X9): items
// live at their owner plus r-1 clockwise successors, the classic
// successor-list scheme whose crash survival follows ~ 1 - f^r.

#ifndef OSCAR_STORE_REPLICATED_STORE_H_
#define OSCAR_STORE_REPLICATED_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/network.h"

namespace oscar {

struct AvailabilityReport {
  size_t total_items = 0;
  size_t items_with_replica = 0;  // At least one replica holder alive.
  size_t items_at_owner = 0;      // Current owner of the key holds one.

  double availability() const {
    return total_items == 0 ? 0.0
                            : static_cast<double>(items_with_replica) /
                                  static_cast<double>(total_items);
  }
  double owner_hit_rate() const {
    return total_items == 0 ? 0.0
                            : static_cast<double>(items_at_owner) /
                                  static_cast<double>(total_items);
  }
};

class ReplicatedStore {
 public:
  /// `replicas` total copies per item (owner included); must be >= 1.
  explicit ReplicatedStore(uint32_t replicas);

  /// Places an item at the current owner of `key` and its successors.
  Status Put(const Network& net, KeyId key, std::string value);

  AvailabilityReport CheckAvailability(const Network& net) const;

  /// Re-places every item that still has an alive replica onto the
  /// current owner + successors (restoring the replication factor).
  /// Items with no surviving replica are unrecoverable; returns how
  /// many there are. They stay in the store and keep counting against
  /// availability — data loss does not disappear from the books.
  size_t ReReplicate(const Network& net);

  size_t item_count() const { return items_.size(); }
  uint32_t replicas() const { return replicas_; }

 private:
  struct Item {
    KeyId key;
    std::string value;
    std::vector<PeerId> holders;
  };

  /// Owner of `key` plus distinct alive clockwise successors, up to the
  /// replication factor.
  std::vector<PeerId> PlacementFor(const Network& net, KeyId key) const;

  uint32_t replicas_;
  std::vector<Item> items_;
};

}  // namespace oscar

#endif  // OSCAR_STORE_REPLICATED_STORE_H_

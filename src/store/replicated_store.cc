#include "store/replicated_store.h"

#include <algorithm>

namespace oscar {

ReplicatedStore::ReplicatedStore(uint32_t replicas)
    : replicas_(std::max(1u, replicas)) {}

std::vector<PeerId> ReplicatedStore::PlacementFor(const Network& net,
                                                  KeyId key) const {
  std::vector<PeerId> holders;
  const auto owner = net.OwnerOf(key);
  if (!owner.has_value()) return holders;
  PeerId current = *owner;
  holders.push_back(current);
  while (holders.size() < replicas_) {
    const auto next = net.SuccessorOf(current);
    if (!next.has_value() || *next == holders.front()) break;  // Wrapped.
    holders.push_back(*next);
    current = *next;
  }
  return holders;
}

Status ReplicatedStore::Put(const Network& net, KeyId key,
                            std::string value) {
  std::vector<PeerId> holders = PlacementFor(net, key);
  if (holders.empty()) {
    return Status::Error("replicated store: no alive owner for key");
  }
  items_.push_back(Item{key, std::move(value), std::move(holders)});
  return Status::Ok();
}

AvailabilityReport ReplicatedStore::CheckAvailability(
    const Network& net) const {
  AvailabilityReport report;
  report.total_items = items_.size();
  for (const Item& item : items_) {
    bool any_alive = false;
    for (PeerId holder : item.holders) {
      if (net.alive(holder)) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) continue;
    ++report.items_with_replica;
    const auto owner = net.OwnerOf(item.key);
    if (owner.has_value() &&
        std::find(item.holders.begin(), item.holders.end(), *owner) !=
            item.holders.end()) {
      ++report.items_at_owner;
    }
  }
  return report;
}

size_t ReplicatedStore::ReReplicate(const Network& net) {
  size_t lost = 0;
  for (Item& item : items_) {
    bool any_alive = false;
    for (PeerId holder : item.holders) {
      if (net.alive(holder)) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) {
      ++lost;
      continue;  // Unrecoverable; placement left as a tombstone.
    }
    item.holders = PlacementFor(net, item.key);
  }
  return lost;
}

}  // namespace oscar

#include "core/network.h"

#include <algorithm>
#include <string>

namespace oscar {
namespace {

std::string PeerContext(const char* what, PeerId id) {
  return std::string(what) + " at peer " + std::to_string(id);
}

}  // namespace

PeerId Network::AppendPeer(KeyId key, DegreeCaps caps) {
  const PeerId id = static_cast<PeerId>(keys_.size());
  keys_.push_back(key);
  caps_.push_back(caps);
  alive_.push_back(1);
  out_base_.push_back(out_base_.back() + caps.max_out);
  in_base_.push_back(in_base_.back() + caps.max_in);
  out_count_.push_back(0);
  in_count_.push_back(0);
  out_slab_.resize(out_base_.back());
  in_slab_.resize(in_base_.back());
  return id;
}

PeerId Network::Join(KeyId key, DegreeCaps caps) {
  const PeerId id = AppendPeer(key, caps);
  ring_.Insert(key, id);
  Touch(id);
  return id;
}

PeerId Network::JoinMany(const std::vector<KeyId>& keys,
                         const std::vector<DegreeCaps>& caps) {
  const PeerId first = static_cast<PeerId>(keys_.size());
  std::vector<Ring::Entry> entries;
  entries.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const PeerId id = AppendPeer(keys[i], caps[i]);
    entries.push_back({keys[i].raw, id});
    Touch(id);
  }
  ring_.InsertMany(std::move(entries));
  return first;
}

void Network::Crash(PeerId id) {
  if (!alive_[id]) return;
  ClearLongLinks(id);  // Release the in-degree this peer's links held.
  alive_[id] = 0;
  in_count_[id] = 0;
  ring_.Remove(keys_[id], id);
  Touch(id);
}

void Network::CrashMany(const std::vector<PeerId>& victims) {
  size_t newly_dead = 0;
  for (PeerId id : victims) {
    if (!alive_[id]) continue;
    ClearLongLinks(id);
    alive_[id] = 0;
    in_count_[id] = 0;
    Touch(id);
    ++newly_dead;
  }
  if (newly_dead == 0) return;
  // After the liveness flips above, the only dead ids still on the ring
  // are exactly the victims: drop them in one pass.
  ring_.RemoveIdsIf([this](PeerId id) { return alive_[id] == 0; });
}

std::vector<PeerId> Network::AlivePeers() const {
  std::vector<PeerId> out;
  out.reserve(ring_.size());
  for (const Ring::Entry& entry : ring_.entries()) out.push_back(entry.id);
  return out;
}

std::optional<PeerId> Network::RingNeighbor(PeerId id, bool clockwise) const {
  if (!alive_[id] || ring_.size() < 2) return std::nullopt;
  const auto index = ring_.IndexOf(keys_[id], id);
  if (!index.has_value()) return std::nullopt;
  const size_t n = ring_.size();
  const size_t next = clockwise ? (*index + 1) % n : (*index + n - 1) % n;
  return ring_.at(next).id;
}

std::optional<PeerId> Network::SuccessorOf(PeerId id) const {
  return RingNeighbor(id, /*clockwise=*/true);
}

std::optional<PeerId> Network::PredecessorOf(PeerId id) const {
  return RingNeighbor(id, /*clockwise=*/false);
}

bool Network::AddLongLink(PeerId from, PeerId to) {
  if (from == to) return false;
  if (!alive_[from] || !alive_[to]) return false;
  if (out_count_[from] >= caps_[from].max_out) return false;
  if (in_count_[to] >= caps_[to].max_in) return false;
  PeerId* out_row = out_slab_.data() + out_base_[from];
  const uint32_t out_used = out_count_[from];
  if (std::find(out_row, out_row + out_used, to) != out_row + out_used) {
    return false;
  }
  out_row[out_used] = to;
  ++out_count_[from];
  in_slab_[in_base_[to] + in_count_[to]] = from;
  ++in_count_[to];
  Touch(from);
  Touch(to);
  return true;
}

void Network::ClearLongLinks(PeerId id) {
  const PeerId* out_row = out_slab_.data() + out_base_[id];
  const uint32_t out_used = out_count_[id];
  for (uint32_t i = 0; i < out_used; ++i) {
    const PeerId target = out_row[i];
    if (!alive_[target]) continue;
    PeerId* in_row = in_slab_.data() + in_base_[target];
    PeerId* in_end = in_row + in_count_[target];
    PeerId* it = std::find(in_row, in_end, id);
    if (it != in_end) {
      // Order-preserving erase, exactly as the vector layout behaved —
      // walk order over in-links is physics, not an implementation
      // detail.
      std::copy(it + 1, in_end, it);
      --in_count_[target];
      Touch(target);
    }
  }
  out_count_[id] = 0;
  Touch(id);
}

void Network::ClearAllLongLinks() {
  for (PeerId id = 0; id < keys_.size(); ++id) {
    if (!alive_[id]) continue;  // Dead peers hold no link state.
    bool changed = false;
    if (out_count_[id] != 0) {
      out_count_[id] = 0;
      changed = true;
    }
    if (in_count_[id] != 0) {
      in_count_[id] = 0;
      changed = true;
    }
    if (changed) Touch(id);
  }
}

size_t Network::ApplyLinkPlan(PeerId from,
                              const std::vector<LinkCandidate>& candidates,
                              uint32_t budget) {
  size_t added = 0;
  for (const LinkCandidate& candidate : candidates) {
    if (added >= budget) break;
    PeerId to = candidate.primary;
    if (candidate.alternate != candidate.primary &&
        RelativeInLoad(candidate.alternate) <
            RelativeInLoad(candidate.primary)) {
      to = candidate.alternate;
    }
    if (AddLongLink(from, to)) {
      ++added;
    } else if (candidate.alternate != candidate.primary) {
      // The pair's winner was refused (saturated by earlier plans, or
      // already linked): a peer holding two sampled candidates falls
      // back to the other one before burning a backup slot.
      const PeerId other =
          to == candidate.primary ? candidate.alternate : candidate.primary;
      if (AddLongLink(from, other)) ++added;
    }
  }
  return added;
}

Status Network::CheckInvariants() const {
  const size_t n = keys_.size();
  // Parallel arrays grow in lockstep; bases are (N+1) cap prefix sums.
  if (caps_.size() != n || alive_.size() != n || out_count_.size() != n ||
      in_count_.size() != n || out_base_.size() != n + 1 ||
      in_base_.size() != n + 1) {
    return Status::Error("parallel peer arrays out of lockstep");
  }
  if (out_base_[0] != 0 || in_base_[0] != 0) {
    return Status::Error("slab base prefix sums do not start at 0");
  }
  for (PeerId id = 0; id < n; ++id) {
    if (out_base_[id + 1] - out_base_[id] != caps_[id].max_out) {
      return Status::Error(PeerContext("out slab row != max_out cap", id));
    }
    if (in_base_[id + 1] - in_base_[id] != caps_[id].max_in) {
      return Status::Error(PeerContext("in slab row != max_in cap", id));
    }
  }
  if (out_slab_.size() < out_base_[n] || in_slab_.size() < in_base_[n]) {
    return Status::Error("slab storage smaller than its base extent");
  }
  size_t alive_total = 0;
  for (PeerId id = 0; id < n; ++id) {
    if (alive_[id] != 0 && alive_[id] != 1) {
      return Status::Error(PeerContext("alive flag not 0/1", id));
    }
    alive_total += alive_[id];
    // Degree counters never exceed the declared caps (AddLongLink's
    // cap gate is the only writer that may advance them).
    if (out_count_[id] > caps_[id].max_out) {
      return Status::Error(PeerContext("out degree exceeds cap", id));
    }
    if (in_count_[id] > caps_[id].max_in) {
      return Status::Error(PeerContext("in degree exceeds cap", id));
    }
    // Crash() clears both sides; dead peers hold no link state.
    if (!alive_[id] && (out_count_[id] != 0 || in_count_[id] != 0)) {
      return Status::Error(PeerContext("dead peer holds link state", id));
    }
    const PeerSpan out = OutLinks(id);
    for (size_t i = 0; i < out.size(); ++i) {
      const PeerId target = out[i];
      if (target >= n) {
        return Status::Error(PeerContext("out-link beyond peer table", id));
      }
      if (target == id) {
        return Status::Error(PeerContext("self link", id));
      }
      for (size_t j = i + 1; j < out.size(); ++j) {
        if (out[j] == target) {
          return Status::Error(PeerContext("duplicate out-link", id));
        }
      }
      // Reciprocity, out -> in: a live link must be registered exactly
      // once in the target's in row. (Dangling links to dead targets
      // are legal — routers discover them as dead probes.)
      if (alive_[target]) {
        const PeerSpan in = InLinks(target);
        const size_t hits =
            static_cast<size_t>(std::count(in.begin(), in.end(), id));
        if (hits != 1) {
          return Status::Error(
              PeerContext("out-link not mirrored exactly once in target", id));
        }
      }
    }
    // Reciprocity, in -> out: every in-link entry names an alive holder
    // whose out row contains this peer.
    const PeerSpan in = InLinks(id);
    for (PeerId holder : in) {
      if (holder >= n) {
        return Status::Error(PeerContext("in-link beyond peer table", id));
      }
      if (!alive_[holder]) {
        return Status::Error(PeerContext("in-link from dead holder", id));
      }
      const PeerSpan holder_out = OutLinks(holder);
      if (std::find(holder_out.begin(), holder_out.end(), id) ==
          holder_out.end()) {
        return Status::Error(
            PeerContext("in-link without matching out-link", id));
      }
    }
  }
  // Ring <-> peer table agreement: sorted (key, id) order, exactly the
  // alive peers, each with its table key.
  if (ring_.size() != alive_total) {
    return Status::Error("ring size != alive peer count");
  }
  std::vector<uint8_t> on_ring(n, 0);
  for (size_t pos = 0; pos < ring_.size(); ++pos) {
    const Ring::Entry& entry = ring_.at(pos);
    if (entry.id >= n) {
      return Status::Error("ring entry beyond peer table");
    }
    if (!alive_[entry.id]) {
      return Status::Error(PeerContext("dead peer on ring", entry.id));
    }
    if (entry.key_raw != keys_[entry.id].raw) {
      return Status::Error(PeerContext("ring key != table key", entry.id));
    }
    if (on_ring[entry.id]) {
      return Status::Error(PeerContext("peer on ring twice", entry.id));
    }
    on_ring[entry.id] = 1;
    if (pos > 0 && !(ring_.at(pos - 1) < entry)) {
      return Status::Error("ring entries out of (key, id) order");
    }
  }
  return Status::Ok();
}

size_t Network::PruneDeadLinks(PeerId id) {
  PeerId* out_row = out_slab_.data() + out_base_[id];
  PeerId* out_end = out_row + out_count_[id];
  PeerId* kept = std::remove_if(out_row, out_end,
                                [&](PeerId t) { return alive_[t] == 0; });
  const size_t dropped = static_cast<size_t>(out_end - kept);
  if (dropped != 0) {
    out_count_[id] = static_cast<uint32_t>(kept - out_row);
    Touch(id);
  }
  return dropped;
}

}  // namespace oscar

#include "core/network.h"

#include <algorithm>

namespace oscar {

PeerId Network::Join(KeyId key, DegreeCaps caps) {
  const PeerId id = static_cast<PeerId>(peers_.size());
  Peer peer;
  peer.key = key;
  peer.caps = caps;
  peers_.push_back(std::move(peer));
  ring_.Insert(key, id);
  Touch(id);
  return id;
}

void Network::Crash(PeerId id) {
  Peer& peer = peers_[id];
  if (!peer.alive) return;
  ClearLongLinks(id);  // Release the in-degree this peer's links held.
  peer.alive = false;
  peer.long_in_peers.clear();
  peer.long_in = 0;
  ring_.Remove(peer.key, id);
  Touch(id);
}

void Network::CrashMany(const std::vector<PeerId>& victims) {
  size_t newly_dead = 0;
  for (PeerId id : victims) {
    Peer& peer = peers_[id];
    if (!peer.alive) continue;
    ClearLongLinks(id);
    peer.alive = false;
    peer.long_in_peers.clear();
    peer.long_in = 0;
    Touch(id);
    ++newly_dead;
  }
  if (newly_dead == 0) return;
  // After the liveness flips above, the only dead ids still on the ring
  // are exactly the victims: drop them in one pass.
  ring_.RemoveIdsIf([this](PeerId id) { return !peers_[id].alive; });
}

std::vector<PeerId> Network::AlivePeers() const {
  std::vector<PeerId> out;
  out.reserve(ring_.size());
  for (const Ring::Entry& entry : ring_.entries()) out.push_back(entry.id);
  return out;
}

std::optional<PeerId> Network::RingNeighbor(PeerId id, bool clockwise) const {
  const Peer& peer = peers_[id];
  if (!peer.alive || ring_.size() < 2) return std::nullopt;
  const auto index = ring_.IndexOf(peer.key, id);
  if (!index.has_value()) return std::nullopt;
  const size_t n = ring_.size();
  const size_t next = clockwise ? (*index + 1) % n : (*index + n - 1) % n;
  return ring_.at(next).id;
}

std::optional<PeerId> Network::SuccessorOf(PeerId id) const {
  return RingNeighbor(id, /*clockwise=*/true);
}

std::optional<PeerId> Network::PredecessorOf(PeerId id) const {
  return RingNeighbor(id, /*clockwise=*/false);
}

bool Network::AddLongLink(PeerId from, PeerId to) {
  if (from == to) return false;
  Peer& src = peers_[from];
  Peer& dst = peers_[to];
  if (!src.alive || !dst.alive) return false;
  if (src.long_out.size() >= src.caps.max_out) return false;
  if (dst.long_in >= dst.caps.max_in) return false;
  if (std::find(src.long_out.begin(), src.long_out.end(), to) !=
      src.long_out.end()) {
    return false;
  }
  src.long_out.push_back(to);
  dst.long_in_peers.push_back(from);
  ++dst.long_in;
  Touch(from);
  Touch(to);
  return true;
}

void Network::ClearLongLinks(PeerId id) {
  Peer& peer = peers_[id];
  for (PeerId target : peer.long_out) {
    Peer& dst = peers_[target];
    if (!dst.alive) continue;
    const auto it = std::find(dst.long_in_peers.begin(),
                              dst.long_in_peers.end(), id);
    if (it != dst.long_in_peers.end()) {
      dst.long_in_peers.erase(it);
      --dst.long_in;
      Touch(target);
    }
  }
  peer.long_out.clear();
  Touch(id);
}

void Network::ClearAllLongLinks() {
  for (PeerId id = 0; id < peers_.size(); ++id) {
    Peer& peer = peers_[id];
    if (!peer.alive) continue;  // Dead peers hold no link state.
    bool changed = false;
    if (!peer.long_out.empty()) {
      peer.long_out.clear();
      changed = true;
    }
    if (peer.long_in != 0) {
      peer.long_in_peers.clear();
      peer.long_in = 0;
      changed = true;
    }
    if (changed) Touch(id);
  }
}

size_t Network::ApplyLinkPlan(PeerId from,
                              const std::vector<LinkCandidate>& candidates,
                              uint32_t budget) {
  size_t added = 0;
  for (const LinkCandidate& candidate : candidates) {
    if (added >= budget) break;
    PeerId to = candidate.primary;
    if (candidate.alternate != candidate.primary &&
        RelativeInLoad(peers_[candidate.alternate]) <
            RelativeInLoad(peers_[candidate.primary])) {
      to = candidate.alternate;
    }
    if (AddLongLink(from, to)) {
      ++added;
    } else if (candidate.alternate != candidate.primary) {
      // The pair's winner was refused (saturated by earlier plans, or
      // already linked): a peer holding two sampled candidates falls
      // back to the other one before burning a backup slot.
      const PeerId other =
          to == candidate.primary ? candidate.alternate : candidate.primary;
      if (AddLongLink(from, other)) ++added;
    }
  }
  return added;
}

size_t Network::PruneDeadLinks(PeerId id) {
  Peer& peer = peers_[id];
  const size_t before = peer.long_out.size();
  peer.long_out.erase(
      std::remove_if(peer.long_out.begin(), peer.long_out.end(),
                     [&](PeerId t) { return !peers_[t].alive; }),
      peer.long_out.end());
  if (before != peer.long_out.size()) Touch(id);
  return before - peer.long_out.size();
}

uint32_t Network::RemainingOutBudget(PeerId id) const {
  const Peer& peer = peers_[id];
  const uint32_t used = static_cast<uint32_t>(peer.long_out.size());
  return peer.caps.max_out > used ? peer.caps.max_out - used : 0;
}


}  // namespace oscar

#include "core/network.h"

#include <algorithm>

namespace oscar {

PeerId Network::AppendPeer(KeyId key, DegreeCaps caps) {
  const PeerId id = static_cast<PeerId>(keys_.size());
  keys_.push_back(key);
  caps_.push_back(caps);
  alive_.push_back(1);
  out_base_.push_back(out_base_.back() + caps.max_out);
  in_base_.push_back(in_base_.back() + caps.max_in);
  out_count_.push_back(0);
  in_count_.push_back(0);
  out_slab_.resize(out_base_.back());
  in_slab_.resize(in_base_.back());
  return id;
}

PeerId Network::Join(KeyId key, DegreeCaps caps) {
  const PeerId id = AppendPeer(key, caps);
  ring_.Insert(key, id);
  Touch(id);
  return id;
}

PeerId Network::JoinMany(const std::vector<KeyId>& keys,
                         const std::vector<DegreeCaps>& caps) {
  const PeerId first = static_cast<PeerId>(keys_.size());
  std::vector<Ring::Entry> entries;
  entries.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const PeerId id = AppendPeer(keys[i], caps[i]);
    entries.push_back({keys[i].raw, id});
    Touch(id);
  }
  ring_.InsertMany(std::move(entries));
  return first;
}

void Network::Crash(PeerId id) {
  if (!alive_[id]) return;
  ClearLongLinks(id);  // Release the in-degree this peer's links held.
  alive_[id] = 0;
  in_count_[id] = 0;
  ring_.Remove(keys_[id], id);
  Touch(id);
}

void Network::CrashMany(const std::vector<PeerId>& victims) {
  size_t newly_dead = 0;
  for (PeerId id : victims) {
    if (!alive_[id]) continue;
    ClearLongLinks(id);
    alive_[id] = 0;
    in_count_[id] = 0;
    Touch(id);
    ++newly_dead;
  }
  if (newly_dead == 0) return;
  // After the liveness flips above, the only dead ids still on the ring
  // are exactly the victims: drop them in one pass.
  ring_.RemoveIdsIf([this](PeerId id) { return alive_[id] == 0; });
}

std::vector<PeerId> Network::AlivePeers() const {
  std::vector<PeerId> out;
  out.reserve(ring_.size());
  for (const Ring::Entry& entry : ring_.entries()) out.push_back(entry.id);
  return out;
}

std::optional<PeerId> Network::RingNeighbor(PeerId id, bool clockwise) const {
  if (!alive_[id] || ring_.size() < 2) return std::nullopt;
  const auto index = ring_.IndexOf(keys_[id], id);
  if (!index.has_value()) return std::nullopt;
  const size_t n = ring_.size();
  const size_t next = clockwise ? (*index + 1) % n : (*index + n - 1) % n;
  return ring_.at(next).id;
}

std::optional<PeerId> Network::SuccessorOf(PeerId id) const {
  return RingNeighbor(id, /*clockwise=*/true);
}

std::optional<PeerId> Network::PredecessorOf(PeerId id) const {
  return RingNeighbor(id, /*clockwise=*/false);
}

bool Network::AddLongLink(PeerId from, PeerId to) {
  if (from == to) return false;
  if (!alive_[from] || !alive_[to]) return false;
  if (out_count_[from] >= caps_[from].max_out) return false;
  if (in_count_[to] >= caps_[to].max_in) return false;
  PeerId* out_row = out_slab_.data() + out_base_[from];
  const uint32_t out_used = out_count_[from];
  if (std::find(out_row, out_row + out_used, to) != out_row + out_used) {
    return false;
  }
  out_row[out_used] = to;
  ++out_count_[from];
  in_slab_[in_base_[to] + in_count_[to]] = from;
  ++in_count_[to];
  Touch(from);
  Touch(to);
  return true;
}

void Network::ClearLongLinks(PeerId id) {
  const PeerId* out_row = out_slab_.data() + out_base_[id];
  const uint32_t out_used = out_count_[id];
  for (uint32_t i = 0; i < out_used; ++i) {
    const PeerId target = out_row[i];
    if (!alive_[target]) continue;
    PeerId* in_row = in_slab_.data() + in_base_[target];
    PeerId* in_end = in_row + in_count_[target];
    PeerId* it = std::find(in_row, in_end, id);
    if (it != in_end) {
      // Order-preserving erase, exactly as the vector layout behaved —
      // walk order over in-links is physics, not an implementation
      // detail.
      std::copy(it + 1, in_end, it);
      --in_count_[target];
      Touch(target);
    }
  }
  out_count_[id] = 0;
  Touch(id);
}

void Network::ClearAllLongLinks() {
  for (PeerId id = 0; id < keys_.size(); ++id) {
    if (!alive_[id]) continue;  // Dead peers hold no link state.
    bool changed = false;
    if (out_count_[id] != 0) {
      out_count_[id] = 0;
      changed = true;
    }
    if (in_count_[id] != 0) {
      in_count_[id] = 0;
      changed = true;
    }
    if (changed) Touch(id);
  }
}

size_t Network::ApplyLinkPlan(PeerId from,
                              const std::vector<LinkCandidate>& candidates,
                              uint32_t budget) {
  size_t added = 0;
  for (const LinkCandidate& candidate : candidates) {
    if (added >= budget) break;
    PeerId to = candidate.primary;
    if (candidate.alternate != candidate.primary &&
        RelativeInLoad(candidate.alternate) <
            RelativeInLoad(candidate.primary)) {
      to = candidate.alternate;
    }
    if (AddLongLink(from, to)) {
      ++added;
    } else if (candidate.alternate != candidate.primary) {
      // The pair's winner was refused (saturated by earlier plans, or
      // already linked): a peer holding two sampled candidates falls
      // back to the other one before burning a backup slot.
      const PeerId other =
          to == candidate.primary ? candidate.alternate : candidate.primary;
      if (AddLongLink(from, other)) ++added;
    }
  }
  return added;
}

size_t Network::PruneDeadLinks(PeerId id) {
  PeerId* out_row = out_slab_.data() + out_base_[id];
  PeerId* out_end = out_row + out_count_[id];
  PeerId* kept = std::remove_if(out_row, out_end,
                                [&](PeerId t) { return alive_[t] == 0; });
  const size_t dropped = static_cast<size_t>(out_end - kept);
  if (dropped != 0) {
    out_count_[id] = static_cast<uint32_t>(kept - out_row);
    Touch(id);
  }
  return dropped;
}

}  // namespace oscar

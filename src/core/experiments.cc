#include "core/experiments.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>

#include "churn/churn.h"
#include "common/audit.h"
#include "common/string_util.h"
#include "core/topology_snapshot.h"
#include "overlay/chord/chord_overlay.h"
#include "overlay/kleinberg/kleinberg_overlay.h"
#include "overlay/mercury/mercury_overlay.h"
#include "overlay/oscar/oscar_overlay.h"
#include "routing/backtracking_router.h"
#include "routing/greedy_router.h"

namespace oscar {
namespace {

uint64_t EnvOrDefault(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  return (end == nullptr || *end != '\0') ? fallback : parsed;
}

}  // namespace

ExperimentScale ScaleFromEnv() {
  ExperimentScale scale;
  const char* mode_env = std::getenv("OSCAR_BENCH_SCALE");
  const std::string mode = mode_env == nullptr ? "smoke" : mode_env;
  if (mode == "paper") {
    scale.target_size = 10000;
    scale.queries = 1000;
    scale.checkpoints = {2000, 4000, 6000, 8000, 10000};
  } else if (mode == "n3000") {
    // The perf-probe scale PRs 5-8 track growth trajectories at.
    scale.target_size = 3000;
    scale.queries = 600;
    scale.checkpoints = {750, 1500, 3000};
  } else if (mode == "huge") {
    // Million-peer growth. Queries are SPARSE (200 per checkpoint —
    // evaluation cost must not drown construction cost, the thing this
    // tier measures), and ExperimentScale::huge tells harnesses to use
    // oracle segment sampling: random-walk sampling costs ~16k protocol
    // steps per join and would push construction into hours.
    scale.target_size = 1000000;
    scale.queries = 200;
    scale.checkpoints = {250000, 500000, 1000000};
    scale.huge = true;
  } else {
    // "smoke" (historical alias "small"): seconds per harness.
    scale.target_size = 600;
    scale.queries = 600;
    scale.checkpoints = {150, 300, 600};
  }
  scale.seed = EnvOrDefault("OSCAR_BENCH_SEED", 42);
  scale.queries = static_cast<size_t>(
      EnvOrDefault("OSCAR_BENCH_QUERIES", scale.queries));
  const size_t size_override = static_cast<size_t>(
      EnvOrDefault("OSCAR_BENCH_SIZE", scale.target_size));
  if (size_override != scale.target_size) {
    scale.target_size = std::max<size_t>(8, size_override);
    scale.checkpoints = {scale.target_size / 4, scale.target_size / 2,
                         scale.target_size};
  }
  return scale;
}

OverlayFactory OscarFactory() {
  return [] { return std::make_shared<OscarOverlay>(); };
}

OverlayFactory OscarNoP2cFactory() {
  return [] {
    OscarOptions options;
    options.use_p2c = false;
    return std::make_shared<OscarOverlay>(options);
  };
}

OverlayFactory OscarWithSampleSize(uint32_t samples_per_median) {
  return [samples_per_median] {
    OscarOptions options;
    options.samples_per_median = samples_per_median;
    return std::make_shared<OscarOverlay>(options);
  };
}

OverlayFactory MercuryFactory() {
  return [] { return std::make_shared<MercuryOverlay>(); };
}

OverlayFactory ChordFactory() {
  return [] { return std::make_shared<ChordOverlay>(); };
}

OverlayFactory KleinbergFactory() {
  return [] { return std::make_shared<KleinbergOverlay>(); };
}

Result<OverlayFactory> MakeNamedOverlay(const std::string& name) {
  if (name == "oscar") return OscarFactory();
  if (name == "oscar-nop2c") return OscarNoP2cFactory();
  if (name == "mercury") return MercuryFactory();
  if (name == "chord") return ChordFactory();
  if (name == "kleinberg") return KleinbergFactory();
  return Status::Error(
      StrCat("unknown overlay: '", name,
             "' (expected oscar|oscar-nop2c|mercury|chord|kleinberg)"));
}

namespace {

/// Shared growth-config plumbing for the runners.
Result<GrowthConfig> BaseConfig(const ExperimentScale& scale,
                                const std::string& key_name,
                                const std::string& degree_name,
                                const OverlayFactory& factory) {
  auto keys = MakeKeyDistribution(key_name);
  if (!keys.ok()) return keys.status();
  auto degrees = MakePaperDegreeDistribution(degree_name);
  if (!degrees.ok()) return degrees.status();
  GrowthConfig config;
  config.target_size = scale.target_size;
  config.queries_per_checkpoint = scale.queries;
  config.seed = scale.seed;
  config.checkpoints = scale.checkpoints;
  config.key_distribution = std::move(keys).value();
  config.degree_distribution = std::move(degrees).value();
  config.overlay = factory();
  if (config.overlay == nullptr) {
    return Status::Error("overlay factory returned null");
  }
  return config;
}

}  // namespace

Result<std::vector<SearchCostRow>> RunSearchCostVsSize(
    const ExperimentScale& scale,
    const std::vector<std::string>& degree_names,
    const std::vector<double>& churn_fractions,
    const OverlayFactory& factory) {
  std::vector<SearchCostRow> rows;
  for (const std::string& degree_name : degree_names) {
    auto config = BaseConfig(scale, "gnutella", degree_name, factory);
    if (!config.ok()) return config.status();
    // The hook outlives the move of the config into Simulation, so it
    // must hold its own reference to the query distribution.
    const KeyDistributionPtr query_keys = config.value().key_distribution;
    config.value().checkpoint_hook =
        [&rows, &scale, &churn_fractions, &degree_name, query_keys](
            const Network& net, size_t size, Rng* rng) -> Status {
      // Common random numbers across churn levels: every level crashes
      // a prefix of the same shuffle (so the 33% crash set contains the
      // 10% one) and replays the same query keys. The measured deltas
      // between churn levels are then structural, not sampling noise.
      const uint64_t eval_seed = rng->Next();
      // One freeze serves every row: the 0% row routes straight over
      // the frozen snapshot (the routers' CSR fast path; identical
      // routes by the view-equivalence contract), and each churn level
      // crashes a delta-restore of it — RestoreInto repairs only the
      // peers the previous level's crashes touched, and CrashFraction
      // batches its ring removals — then refreezes the crashed scratch
      // so the evaluation itself also rides the CSR steppers. Every
      // row stays byte-identical to the historical deep-copy
      // evaluation (guarded by topology_snapshot_test and
      // csr_stepper_test).
      std::optional<TopologySnapshot> frozen;
      Network scratch;  // Recycled across churn levels via RestoreInto.
      for (const double churn : churn_fractions) {
        SearchCostRow row;
        row.series = degree_name;
        row.churn_fraction = churn;
        row.network_size = size;
        SearchOptions search;
        search.num_queries = scale.queries;
        search.query_distribution = query_keys.get();
        search.source_by_key = true;
        SearchEvaluation eval;
        Rng query_rng(eval_seed ^ 0x9e3779b97f4a7c15ULL);
        if (!frozen.has_value()) frozen.emplace(net);
        if (churn == 0.0) {
          // Same router as the churn rows: on an intact network the
          // fault-aware DFS degenerates to pure nearest-first greedy
          // with zero waste, so the churn deltas compare like to like.
          eval = EvaluateSearch(*frozen, BacktrackingRouter(), search,
                                &query_rng);
        } else {
          frozen->RestoreInto(&scratch);  // Crash it, keep growing.
          // The journal-driven repair path runs here every churn level
          // after the first — the highest-traffic delta-restore site,
          // so it carries the restore-identity spot check.
          if (AuditEnabled()) {
            const Status audit = frozen->CheckRestoreIdentity(scratch);
            OSCAR_AUDIT(audit.ok(),
                        "fig2 delta restore: " + audit.message());
          }
          Rng crash_rng(eval_seed);
          auto crash_result = CrashFraction(&scratch, churn, &crash_rng);
          if (!crash_result.ok()) return crash_result.status();
          const TopologySnapshot crashed(scratch);
          eval = EvaluateSearch(crashed, BacktrackingRouter(), search,
                                &query_rng);
        }
        row.avg_cost = eval.avg_cost;
        row.avg_wasted = eval.avg_wasted;
        row.success_rate = eval.success_rate;
        rows.push_back(std::move(row));
      }
      return Status::Ok();
    };
    config.value().queries_per_checkpoint = 1;  // Hook does the real eval.
    Simulation sim(std::move(config).value());
    auto run = sim.Run();
    if (!run.ok()) return run.status();
  }
  return rows;
}

Result<std::vector<ComparisonRow>> RunOverlayComparison(
    const ExperimentScale& scale,
    const std::vector<std::pair<std::string, OverlayFactory>>& overlays,
    const std::vector<std::string>& key_names) {
  std::vector<ComparisonRow> rows;
  for (const auto& [overlay_name, factory] : overlays) {
    for (const std::string& key_name : key_names) {
      auto config = BaseConfig(scale, key_name, "constant", factory);
      if (!config.ok()) return config.status();
      config.value().checkpoints = {scale.target_size};
      Simulation sim(std::move(config).value());
      auto run = sim.Run();
      if (!run.ok()) return run.status();
      if (run.value().checkpoints.empty()) {
        return Status::Error("overlay comparison: no checkpoint result");
      }
      const CheckpointResult& last = run.value().checkpoints.back();
      ComparisonRow row;
      row.overlay_name = overlay_name;
      row.key_name = key_name;
      row.network_size = last.network_size;
      row.avg_cost = last.search.avg_cost;
      row.success_rate = last.search.success_rate;
      row.utilization = ComputeDegreeLoad(sim.network()).utilization;
      row.sampling_steps = sim.config().overlay->sampling_steps();
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

Result<std::vector<DegreeLoadRow>> RunDegreeLoad(
    const ExperimentScale& scale,
    const std::vector<std::string>& degree_names,
    const OverlayFactory& factory, const std::string& overlay_name) {
  std::vector<DegreeLoadRow> rows;
  for (const std::string& degree_name : degree_names) {
    auto config = BaseConfig(scale, "gnutella", degree_name, factory);
    if (!config.ok()) return config.status();
    config.value().checkpoints = {scale.target_size};
    config.value().queries_per_checkpoint = 1;  // Structure only.
    Simulation sim(std::move(config).value());
    auto run = sim.Run();
    if (!run.ok()) return run.status();
    DegreeLoadRow row;
    row.overlay_name = overlay_name;
    row.degree_name = degree_name;
    row.network_size = sim.network().alive_count();
    row.report = ComputeDegreeLoad(sim.network());
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace oscar

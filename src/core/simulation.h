// Simulation: deterministic growth of a network under a key
// distribution, a degree distribution and an overlay strategy, with
// search evaluation at size checkpoints. One seed => one byte-identical
// run (guarded by the deterministic-replay test).

#ifndef OSCAR_CORE_SIMULATION_H_
#define OSCAR_CORE_SIMULATION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/network.h"
#include "degree/degree_distribution.h"
#include "keyspace/key_distribution.h"
#include "overlay/overlay.h"
#include "routing/router.h"

namespace oscar {

struct SearchOptions {
  size_t num_queries = 100;
  /// Query-key distribution; nullptr means uniform keys.
  const KeyDistribution* query_distribution = nullptr;
  /// Pick each query's source as the owner of a random uniform key
  /// instead of a uniform alive peer. With a fixed rng seed this keeps
  /// (source, key) pairs aligned across evaluations of differently
  /// crashed copies of the same network — the variance-reduction trick
  /// the churn figures rely on.
  bool source_by_key = false;
  /// Optional per-route observer, invoked once per query with the raw
  /// route (the message-level cross-check compares these hop-by-hop).
  std::function<void(const RouteResult&)> per_route;
};

/// One (source, key) query draw.
struct QuerySample {
  PeerId source = 0;
  KeyId key;
};

/// Draws one query exactly as EvaluateSearch does (same rng consumption
/// order), so an external driver — the message-level simulator — can
/// replay the identical query stream from the same seed. `alive` must
/// be the network's current AlivePeers() list.
QuerySample SampleQuery(NetworkView net, const SearchOptions& options,
                        const std::vector<PeerId>& alive, Rng* rng);

struct SearchEvaluation {
  double avg_cost = 0.0;      // Mean hops + wasted messages per query.
  double p95_cost = 0.0;
  double avg_wasted = 0.0;    // Mean wasted messages per query.
  double success_rate = 0.0;
  size_t num_queries = 0;
};

/// Routes queries from random alive sources and aggregates costs.
/// Takes the topology through NetworkView: over a frozen snapshot the
/// routers' CSR fast path engages automatically, which is how the
/// churn figure evaluates its crash levels.
SearchEvaluation EvaluateSearch(NetworkView net, const Router& router,
                                const SearchOptions& options, Rng* rng);

/// Factory for the named key distributions the harnesses sweep:
/// "uniform" | "gnutella" | "clustered".
Result<KeyDistributionPtr> MakeKeyDistribution(const std::string& name);

/// Factory for the paper's in-degree distributions (mean 27):
/// "constant" | "realistic" | "stepped".
Result<DegreeDistributionPtr> MakePaperDegreeDistribution(
    const std::string& name);

struct GrowthConfig {
  size_t target_size = 0;
  size_t queries_per_checkpoint = 0;
  uint64_t seed = 0;
  /// Sizes at which the network is rewired and evaluated, ascending.
  /// Empty means a single checkpoint at target_size.
  std::vector<size_t> checkpoints;
  KeyDistributionPtr key_distribution;
  DegreeDistributionPtr degree_distribution;
  OverlayPtr overlay;
  /// Rewire every peer's long links at each checkpoint before
  /// evaluating (the paper's periodic global rewiring); joins between
  /// checkpoints only wire the joining peer.
  bool rewire_at_checkpoints = true;
  /// Worker threads for the checkpoint-rewiring fan-out (overlays that
  /// support planning freeze the pre-checkpoint topology and plan every
  /// peer concurrently over it). 0 resolves OSCAR_THREADS from the
  /// environment (default 1). The GrowthResult is byte-identical at
  /// any thread count: each peer plans from its own forked rng stream
  /// and plans are applied in a salt-shuffled deterministic order.
  uint32_t rewire_threads = 0;
  /// Joins planned per wave between checkpoints. 0 (default) keeps the
  /// historical sequential path: each joiner wires itself against the
  /// live network via BuildLinks, consuming the main growth rng —
  /// byte-identical to every prior release. k >= 1 switches overlays
  /// that support join planning to the batched path: joiners are
  /// admitted in waves of up to k (Network::JoinMany), each planned
  /// read-only over a shared EPOCH snapshot on its own forked rng
  /// stream (parallel across rewire_threads), then applied in join
  /// order against the live network. Epoch snapshots are refreshed at
  /// deterministic alive-count thresholds (~12.5% growth, and after
  /// every checkpoint rewire), NOT per wave — so the grown topology is
  /// byte-identical for every k >= 1 at every thread count; k trades
  /// snapshot-staleness granularity purely against planning fan-out.
  /// Overlays without join planning ignore this and stay sequential.
  uint32_t join_batch = 0;
  /// Optional per-checkpoint callback (e.g. crash a copy and evaluate
  /// under churn). Runs after the built-in evaluation.
  std::function<Status(const Network&, size_t checkpoint_size, Rng* rng)>
      checkpoint_hook;
};

struct CheckpointResult {
  size_t network_size = 0;
  SearchEvaluation search;
};

struct GrowthResult {
  std::vector<CheckpointResult> checkpoints;
  /// Wall time spent in checkpoint rewiring, summed over checkpoints.
  /// Timing only — never printed by the deterministic harnesses;
  /// consumed by tools/growth_probe for the perf artifact.
  double rewire_wall_ms = 0.0;
  size_t rewire_count = 0;  // Checkpoints that performed a rewire.
};

class Simulation {
 public:
  explicit Simulation(GrowthConfig config);

  /// Grows the network to target_size, evaluating at each checkpoint.
  Result<GrowthResult> Run();

  const Network& network() const { return network_; }
  const GrowthConfig& config() const { return config_; }

 private:
  /// The paper's periodic global rewiring. Planning overlays get the
  /// batch path: freeze, plan all peers (parallel, per-peer forked
  /// rngs), clear, apply in a salt-shuffled deterministic order.
  /// Others rebuild sequentially.
  Status RewireAllPeers(size_t checkpoint_index, uint32_t threads,
                        Rng* rng);

  GrowthConfig config_;
  Network network_;
};

}  // namespace oscar

#endif  // OSCAR_CORE_SIMULATION_H_

#include "core/simulation.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/audit.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/topology_snapshot.h"
#include "degree/constant_degree.h"
#include "degree/spiky_degree.h"
#include "degree/stepped_degree.h"
#include "keyspace/gnutella_distribution.h"
#include "routing/greedy_router.h"

namespace oscar {

QuerySample SampleQuery(NetworkView net, const SearchOptions& options,
                        const std::vector<PeerId>& alive, Rng* rng) {
  QuerySample sample;
  if (options.source_by_key) {
    sample.source = *net.OwnerOf(KeyId::FromUnit(rng->NextDouble()));
  } else {
    sample.source =
        alive[static_cast<size_t>(rng->UniformInt(alive.size()))];
  }
  sample.key = options.query_distribution != nullptr
                   ? options.query_distribution->Sample(rng)
                   : KeyId::FromUnit(rng->NextDouble());
  return sample;
}

SearchEvaluation EvaluateSearch(NetworkView net, const Router& router,
                                const SearchOptions& options, Rng* rng) {
  SearchEvaluation eval;
  const std::vector<PeerId> alive = net.AlivePeers();
  if (alive.empty() || options.num_queries == 0) return eval;

  std::vector<double> costs;
  costs.reserve(options.num_queries);
  double wasted_total = 0.0;
  size_t successes = 0;
  for (size_t q = 0; q < options.num_queries; ++q) {
    const QuerySample query = SampleQuery(net, options, alive, rng);
    const RouteResult route = router.Route(net, query.source, query.key);
    if (route.success) ++successes;
    costs.push_back(route.Cost());
    wasted_total += route.wasted;
    if (options.per_route) options.per_route(route);
  }
  double total = 0.0;
  for (double c : costs) total += c;
  eval.num_queries = costs.size();
  eval.avg_cost = total / static_cast<double>(costs.size());
  eval.p95_cost = Percentile(costs, 95.0);
  eval.avg_wasted = wasted_total / static_cast<double>(costs.size());
  eval.success_rate =
      static_cast<double>(successes) / static_cast<double>(costs.size());
  return eval;
}

Result<KeyDistributionPtr> MakeKeyDistribution(const std::string& name) {
  if (name == "uniform") {
    return KeyDistributionPtr(std::make_shared<UniformKeyDistribution>());
  }
  if (name == "gnutella") {
    auto made = GnutellaKeyDistribution::Make();
    if (!made.ok()) return made.status();
    return KeyDistributionPtr(std::make_shared<GnutellaKeyDistribution>(
        std::move(made).value()));
  }
  if (name == "clustered") {
    return KeyDistributionPtr(std::make_shared<ClusteredKeyDistribution>());
  }
  return Status::Error(StrCat("unknown key distribution: '", name,
                              "' (expected uniform|gnutella|clustered)"));
}

Result<DegreeDistributionPtr> MakePaperDegreeDistribution(
    const std::string& name) {
  if (name == "constant") {
    auto made = ConstantDegreeDistribution::Make(27, 27);
    if (!made.ok()) return made.status();
    return DegreeDistributionPtr(std::make_shared<ConstantDegreeDistribution>(
        std::move(made).value()));
  }
  if (name == "realistic") {
    return DegreeDistributionPtr(std::make_shared<SpikyDegreeDistribution>(
        SpikyDegreeDistribution::Paper()));
  }
  if (name == "stepped") {
    return DegreeDistributionPtr(std::make_shared<SteppedDegreeDistribution>());
  }
  return Status::Error(StrCat("unknown degree distribution: '", name,
                              "' (expected constant|realistic|stepped)"));
}

Simulation::Simulation(GrowthConfig config) : config_(std::move(config)) {}

Status Simulation::RewireAllPeers(size_t checkpoint_index, uint32_t threads,
                                  Rng* rng) {
  // The paper's periodic global rewiring: recompute everyone's
  // partitions now that N has changed since they joined.
  if (config_.overlay->SupportsPlanning()) {
    // Batch path, modelling peers that rewire concurrently from what
    // they observe: freeze the pre-checkpoint topology once, plan every
    // peer's cuts and links read-only over the frozen snapshot, then
    // clear and apply (salt-shuffled order, see below). One salt draw
    // keeps the growth
    // stream advancing identically regardless of N or thread count;
    // each peer's plan runs on its own Fork()ed stream, so the plan set
    // is independent of scheduling — byte-identical at any OSCAR_THREADS.
    const uint64_t rewire_salt = rng->Next();
    const TopologySnapshot frozen(network_);
    const std::vector<PeerId> peers = network_.AlivePeers();
    std::vector<PeerLinkPlan> plans(peers.size());
    const Overlay& overlay = *config_.overlay;
    // Distinct domain-separation constants keep the three derived
    // stream families (per-peer planning, apply shuffle) and the salt
    // itself decorrelated (fractional parts of sqrt(3) and of the
    // golden ratio's cousin — arbitrary odd mixing words).
    constexpr uint64_t kPlanStreamSalt = 0xbb67ae8584caa73bULL;
    ParallelFor(threads, peers.size(), [&](size_t i) {
      Rng peer_rng = Rng::Fork(rewire_salt ^ kPlanStreamSalt,
                               checkpoint_index, peers[i]);
      plans[i] = overlay.PlanLinks(frozen, peers[i], &peer_rng);
    });
    network_.ClearAllLongLinks();
    // Apply in a salt-shuffled (deterministic) order: ring order would
    // hand every in-cap contention win to the same key-space locality
    // wave, skewing who keeps links under saturation.
    std::vector<size_t> order(peers.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    Rng shuffle_rng(rewire_salt ^ 0x5bf03635d51f3a4dULL);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<size_t>(shuffle_rng.UniformInt(i))]);
    }
    uint64_t sampling_steps = 0;
    for (size_t i = 0; i < peers.size(); ++i) {
      network_.ApplyLinkPlan(peers[order[i]], plans[order[i]].candidates,
                             plans[order[i]].budget);
      sampling_steps += plans[order[i]].sampling_steps;
    }
    config_.overlay->AddSamplingSteps(sampling_steps);
    return Status::Ok();
  }
  // Sequential rebuild for overlays without a planner (oracle
  // constructions): clear everything, then re-link each peer in ring
  // order against the mutating network — the historical path, kept
  // byte-identical for those overlays.
  for (PeerId peer : network_.AlivePeers()) {
    network_.ClearLongLinks(peer);
  }
  for (PeerId peer : network_.AlivePeers()) {
    const Status status = config_.overlay->BuildLinks(&network_, peer, rng);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Result<GrowthResult> Simulation::Run() {
  if (config_.target_size == 0) {
    return Status::Error("growth: target_size must be positive");
  }
  if (config_.key_distribution == nullptr) {
    return Status::Error("growth: key_distribution not set");
  }
  if (config_.degree_distribution == nullptr) {
    return Status::Error("growth: degree_distribution not set");
  }
  if (config_.overlay == nullptr) {
    return Status::Error("growth: overlay not set");
  }
  std::vector<size_t> checkpoints = config_.checkpoints;
  if (checkpoints.empty()) checkpoints.push_back(config_.target_size);
  std::sort(checkpoints.begin(), checkpoints.end());
  checkpoints.erase(
      std::unique(checkpoints.begin(), checkpoints.end()),
      checkpoints.end());
  if (checkpoints.back() > config_.target_size) {
    return Status::Error(
        StrCat("growth: checkpoint ", checkpoints.back(),
               " beyond target size ", config_.target_size));
  }

  Rng rng(config_.seed);
  GrowthResult result;
  const GreedyRouter router;
  size_t next_checkpoint = 0;
  const uint32_t threads = config_.rewire_threads != 0
                               ? config_.rewire_threads
                               : ThreadCountFromEnv();

  // Batched join planning (join_batch > 0 on a join-planning overlay):
  // joiners are admitted in waves and planned read-only over a shared
  // EPOCH snapshot. The epoch — not the wave — is the determinism
  // boundary: snapshots refresh at alive-count thresholds (~12.5%
  // growth, plus after every checkpoint rewire) that do not depend on
  // the wave size, each joiner plans on a stream forked from
  // (epoch_salt, epoch_index, its peer id), and plans are applied in
  // join order. Every quantity a plan can observe is therefore a
  // function of alive counts and peer ids alone, which is what makes
  // the grown topology byte-identical for every k >= 1 at every thread
  // count (guarded by the batch-join determinism test).
  const bool batch_joins =
      config_.join_batch > 0 && config_.overlay->SupportsJoinPlanning();
  std::unique_ptr<TopologySnapshot> epoch;
  uint64_t epoch_salt = 0;
  uint64_t epoch_index = 0;
  size_t epoch_refresh_at = 0;
  // Domain separation for the per-joiner planning streams, distinct
  // from the rewire-path salts (arbitrary odd mixing word).
  constexpr uint64_t kJoinStreamSalt = 0x3c6ef372fe94f82bULL;
  const auto refresh_epoch = [&]() {
    epoch_salt = rng.Next();
    ++epoch_index;
    epoch = std::make_unique<TopologySnapshot>(network_);
    // Every joiner in the epoch plans over this frozen view; a
    // malformed freeze would fan corruption into the whole wave.
    if (AuditEnabled()) {
      const Status audit = epoch->Validate();
      OSCAR_AUDIT(audit.ok(), "epoch snapshot: " + audit.message());
    }
    const size_t base = network_.alive_count();
    epoch_refresh_at = base + std::max<size_t>(size_t{1}, base / 8);
  };
  if (batch_joins) refresh_epoch();

  while (network_.alive_count() < config_.target_size) {
    if (batch_joins) {
      // Wave size: up to join_batch, clipped so the wave lands exactly
      // on the next epoch-refresh, checkpoint, or target boundary —
      // boundaries are alive-count facts, never wave-size facts.
      const size_t alive = network_.alive_count();
      size_t wave = std::min<size_t>(config_.join_batch,
                                     config_.target_size - alive);
      wave = std::min(wave, epoch_refresh_at - alive);
      if (next_checkpoint < checkpoints.size()) {
        wave = std::min(wave, checkpoints[next_checkpoint] - alive);
      }
      // Keys and degrees are drawn from the main rng in join order —
      // the sequential path's exact per-join consumption order.
      std::vector<KeyId> keys(wave);
      std::vector<DegreeCaps> caps(wave);
      for (size_t i = 0; i < wave; ++i) {
        keys[i] = config_.key_distribution->Sample(&rng);
        caps[i] = config_.degree_distribution->Sample(&rng);
      }
      const PeerId first = network_.JoinMany(keys, caps);
      const Overlay& overlay = *config_.overlay;
      const TopologySnapshot& frozen = *epoch;
      std::vector<PeerLinkPlan> plans(wave);
      ParallelFor(threads, wave, [&](size_t i) {
        Rng joiner_rng =
            Rng::Fork(epoch_salt ^ kJoinStreamSalt, epoch_index,
                      first + static_cast<PeerId>(i));
        plans[i] =
            overlay.PlanJoinLinks(frozen, keys[i], caps[i], &joiner_rng);
      });
      // Apply in join order against the live network: p2c pairs resolve
      // against the loads earlier joiners' links just produced, exactly
      // as they would joining one at a time.
      uint64_t sampling_steps = 0;
      for (size_t i = 0; i < wave; ++i) {
        network_.ApplyLinkPlan(first + static_cast<PeerId>(i),
                               plans[i].candidates, plans[i].budget);
        sampling_steps += plans[i].sampling_steps;
      }
      config_.overlay->AddSamplingSteps(sampling_steps);
    } else {
      const PeerId id =
          network_.Join(config_.key_distribution->Sample(&rng),
                        config_.degree_distribution->Sample(&rng));
      const Status built = config_.overlay->BuildLinks(&network_, id, &rng);
      if (!built.ok()) return built;
    }

    while (next_checkpoint < checkpoints.size() &&
           network_.alive_count() == checkpoints[next_checkpoint]) {
      if (config_.rewire_at_checkpoints) {
        const auto rewire_start = std::chrono::steady_clock::now();
        const Status rewired =
            RewireAllPeers(next_checkpoint, threads, &rng);
        if (!rewired.ok()) return rewired;
        result.rewire_wall_ms +=
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - rewire_start)
                .count();
        ++result.rewire_count;
        // A global rewire touches every peer's link state — the widest
        // mutation in the system, and the one the structural audit is
        // cheapest relative to.
        if (AuditEnabled()) {
          const Status audit = network_.CheckInvariants();
          OSCAR_AUDIT(audit.ok(), "post-rewire network: " + audit.message());
        }
      }
      CheckpointResult checkpoint;
      checkpoint.network_size = network_.alive_count();
      SearchOptions search;
      search.num_queries = config_.queries_per_checkpoint;
      search.query_distribution = config_.key_distribution.get();
      checkpoint.search = EvaluateSearch(network_, router, search, &rng);
      result.checkpoints.push_back(checkpoint);
      if (config_.checkpoint_hook) {
        const Status status = config_.checkpoint_hook(
            network_, checkpoint.network_size, &rng);
        if (!status.ok()) return status;
      }
      ++next_checkpoint;
      // The rewire replaced every long link: plans drawn against the
      // pre-checkpoint epoch would be stale by a whole rewire.
      if (batch_joins) refresh_epoch();
    }
    if (batch_joins && network_.alive_count() >= epoch_refresh_at) {
      refresh_epoch();
    }
  }
  if (AuditEnabled()) {
    const Status audit = network_.CheckInvariants();
    OSCAR_AUDIT(audit.ok(), "grown network: " + audit.message());
  }
  return result;
}

}  // namespace oscar

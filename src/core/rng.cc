#include "core/rng.h"

#include <cmath>

namespace oscar {

double Rng::NextGaussian() {
  // Box-Muller; u1 nudged away from 0 so the log is finite.
  const double u1 = NextDouble() + 1e-300;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace oscar

#include "core/ring.h"

#include <algorithm>

namespace oscar {

size_t Ring::LowerBound(uint64_t raw) const {
  const Entry probe{raw, 0};
  return static_cast<size_t>(
      std::lower_bound(entries_.begin(), entries_.end(), probe) -
      entries_.begin());
}

void Ring::Insert(KeyId key, PeerId id) {
  const Entry entry{key.raw, id};
  entries_.insert(
      std::lower_bound(entries_.begin(), entries_.end(), entry), entry);
}

void Ring::InsertMany(std::vector<Entry> added) {
  if (added.empty()) return;
  if (added.size() == 1) {
    entries_.insert(std::lower_bound(entries_.begin(), entries_.end(),
                                     added.front()),
                    added.front());
    return;
  }
  std::sort(added.begin(), added.end());
  // Backward in-place merge: one O(existing + added) pass instead of an
  // O(existing) memmove per insert — the difference between O(N^2) and
  // O(N) ring maintenance over a million-peer join stream.
  const size_t old_size = entries_.size();
  entries_.resize(old_size + added.size());
  size_t read = old_size;
  size_t put = entries_.size();
  size_t from_new = added.size();
  while (from_new > 0) {
    if (read > 0 && added[from_new - 1] < entries_[read - 1]) {
      entries_[--put] = entries_[--read];
    } else {
      entries_[--put] = added[--from_new];
    }
  }
}

void Ring::Remove(KeyId key, PeerId id) {
  const Entry entry{key.raw, id};
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), entry);
  if (it != entries_.end() && it->key_raw == key.raw && it->id == id) {
    entries_.erase(it);
  }
}

std::optional<PeerId> Ring::OwnerOf(KeyId key) const {
  if (entries_.empty()) return std::nullopt;
  const size_t n = entries_.size();
  const size_t succ = LowerBound(key.raw) % n;
  const size_t pred = (succ + n - 1) % n;
  const KeyId succ_key = KeyId::FromRaw(entries_[succ].key_raw);
  const KeyId pred_key = KeyId::FromRaw(entries_[pred].key_raw);
  // Closest wins; the clockwise successor wins ties.
  if (RingDistance(key, succ_key) <= RingDistance(key, pred_key)) {
    return entries_[succ].id;
  }
  return entries_[pred].id;
}

size_t Ring::CountInSegment(KeyId from, KeyId to) const {
  if (entries_.empty() || from == to) return 0;
  const size_t i_from = LowerBound(from.raw);
  const size_t i_to = LowerBound(to.raw);
  if (from.raw < to.raw) return i_to - i_from;
  return entries_.size() - i_from + i_to;  // Segment wraps the seam.
}

std::optional<PeerId> Ring::NthInSegment(KeyId from, KeyId to,
                                         size_t offset) const {
  if (offset >= CountInSegment(from, to)) return std::nullopt;
  const size_t start = LowerBound(from.raw);
  return entries_[(start + offset) % entries_.size()].id;
}

std::optional<PeerId> Ring::SuccessorOfKey(KeyId key) const {
  if (entries_.empty()) return std::nullopt;
  return entries_[LowerBound(key.raw) % entries_.size()].id;
}

std::optional<size_t> Ring::IndexOf(KeyId key, PeerId id) const {
  const Entry entry{key.raw, id};
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), entry);
  if (it == entries_.end() || it->key_raw != key.raw || it->id != id) {
    return std::nullopt;
  }
  return static_cast<size_t>(it - entries_.begin());
}

}  // namespace oscar

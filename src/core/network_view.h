// NetworkView: one read interface over the two topology backends — a
// live, mutable Network and a frozen TopologySnapshot. It is a cheap
// value type (two pointers) constructed implicitly from either backend,
// so every read-side consumer (routers, steppers, samplers, size
// estimators, structural metrics) is written once and runs unchanged
// against a growing network or a shared snapshot. Dispatch is a single
// predictable branch per call; both backends expose the same Ring, so
// ring queries are forwarded without translation.
//
// A view does not own its backend: it is valid only while the Network
// or TopologySnapshot it was built from is alive, and reads through a
// view of a Network observe mutations immediately (exactly like the
// const Network& parameters it replaces).

#ifndef OSCAR_CORE_NETWORK_VIEW_H_
#define OSCAR_CORE_NETWORK_VIEW_H_

#include <optional>
#include <vector>

#include "core/key_id.h"
#include "core/network.h"
#include "core/ring.h"
#include "core/topology_snapshot.h"

namespace oscar {

class NetworkView {
 public:
  // Implicit by design: every `const Network&` read signature upgraded
  // to NetworkView keeps its call sites source-compatible.
  NetworkView(const Network& net) : net_(&net) {}           // NOLINT
  NetworkView(const TopologySnapshot& snap) : snap_(&snap) {}  // NOLINT

  /// The frozen backend, or nullptr when this view reads a live
  /// Network. Routers use it to swap in the CSR-specialized steppers —
  /// a frozen snapshot cannot change mid-route, so the flat arrays can
  /// be read without per-call dispatch.
  const TopologySnapshot* snapshot() const { return snap_; }

  size_t size() const { return net_ ? net_->size() : snap_->size(); }
  size_t alive_count() const { return ring().size(); }
  const Ring& ring() const { return net_ ? net_->ring() : snap_->ring(); }

  KeyId key(PeerId id) const {
    return net_ ? net_->key(id) : snap_->key(id);
  }
  bool alive(PeerId id) const {
    return net_ ? net_->alive(id) : snap_->alive(id);
  }
  DegreeCaps caps(PeerId id) const {
    return net_ ? net_->caps(id) : snap_->caps(id);
  }

  /// Long out-links of `id` in stored order (may dangle to dead peers).
  PeerSpan OutLinks(PeerId id) const {
    return net_ ? net_->OutLinks(id) : snap_->OutLinks(id);
  }
  /// Alive peers holding a long link to `id`.
  PeerSpan InLinks(PeerId id) const {
    return net_ ? net_->InLinks(id) : snap_->InLinks(id);
  }

  std::optional<PeerId> OwnerOf(KeyId target) const {
    return ring().OwnerOf(target);
  }
  std::optional<PeerId> SuccessorOf(PeerId id) const {
    return net_ ? net_->SuccessorOf(id) : snap_->SuccessorOf(id);
  }
  std::optional<PeerId> PredecessorOf(PeerId id) const {
    return net_ ? net_->PredecessorOf(id) : snap_->PredecessorOf(id);
  }

  /// Alive peers in ring (clockwise key) order — composed from the
  /// shared ring index rather than dispatched per backend.
  std::vector<PeerId> AlivePeers() const {
    std::vector<PeerId> out;
    out.reserve(ring().size());
    for (const Ring::Entry& entry : ring().entries()) out.push_back(entry.id);
    return out;
  }

  /// Appends the routing neighbors of `id`: ring successor and
  /// predecessor (when distinct, always alive) followed by long
  /// out-links in stored order (possibly dead). Composed here, once,
  /// from the backend primitives so the two backends can never drift
  /// apart in element order — routers are order-sensitive.
  void AppendNeighbors(PeerId id, std::vector<PeerId>* out) const {
    const auto succ = SuccessorOf(id);
    const auto pred = PredecessorOf(id);
    if (succ.has_value()) out->push_back(*succ);
    if (pred.has_value() && pred != succ) out->push_back(*pred);
    for (PeerId target : OutLinks(id)) out->push_back(target);
  }
  /// Appends the undirected gossip neighborhood of `id`: routing
  /// neighbors plus the peers holding long links TO `id`. Random walks
  /// use this symmetric view — walking only out-links concentrates the
  /// stationary distribution on already-popular peers.
  void AppendWalkNeighbors(PeerId id, std::vector<PeerId>* out) const {
    AppendNeighbors(id, out);
    for (PeerId source : InLinks(id)) out->push_back(source);
  }

 private:
  const Network* net_ = nullptr;
  const TopologySnapshot* snap_ = nullptr;
};

}  // namespace oscar

#endif  // OSCAR_CORE_NETWORK_VIEW_H_

// Network: the simulated peer population. Owns the peer table (keys,
// degree budgets, liveness, long links) and the Ring index over alive
// peers. Overlay strategies write links through AddLongLink, which is
// the single place in-degree caps are enforced.
//
// Storage is struct-of-arrays: per-peer attributes live in flat
// parallel vectors and both link directions are pooled into shared
// slabs (peer i's out-links occupy the fixed-capacity region
// [out_base_[i], out_base_[i] + caps_[i].max_out), of which the first
// out_count_[i] entries are live). Degree caps are immutable per peer,
// so slab regions never move once joined: a link insert is one store,
// a global link clear is a count wipe (bulk reclamation — no per-peer
// deallocations), and snapshot freeze/restore are flat array copies.
// This is what keeps million-peer growth cache-dense; the per-peer
// std::vector layout it replaces spent its time in allocator traffic.

#ifndef OSCAR_CORE_NETWORK_H_
#define OSCAR_CORE_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/key_id.h"
#include "core/ring.h"

namespace oscar {

/// Per-peer degree budget: how many long in-links a peer accepts and how
/// many long out-links it builds. Short (ring) links are not budgeted.
/// Caps are fixed at join time — the slab layout depends on it.
struct DegreeCaps {
  uint32_t max_in = 0;
  uint32_t max_out = 0;
};

/// Non-owning view of a contiguous run of peer ids (a slab region, a
/// CSR row). C++17 stand-in for std::span.
struct PeerSpan {
  const PeerId* ptr = nullptr;
  size_t count = 0;

  const PeerId* begin() const { return ptr; }
  const PeerId* end() const { return ptr + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  PeerId operator[](size_t i) const { return ptr[i]; }
};

/// One planned link slot: a sampled target plus an optional alternate
/// (power of two choices). The pair is resolved at APPLY time against
/// live in-loads — resolving it at plan time against a frozen snapshot
/// would herd every planner onto the same stale-low-load targets.
/// alternate == primary when no second sample was drawn.
struct LinkCandidate {
  PeerId primary = 0;
  PeerId alternate = 0;
};

class Network {
 public:
  /// Adds an alive peer and indexes it on the ring. Returns its id.
  PeerId Join(KeyId key, DegreeCaps caps);

  /// Adds `keys.size()` alive peers in one call — ids are assigned in
  /// argument order and the ring index absorbs all entries in a single
  /// merge pass, O(ring + k log k) instead of the O(ring) PER JOIN that
  /// sorted-vector inserts cost (the dominant constant at 10^6 peers).
  /// The resulting network is identical to calling Join() k times.
  /// Returns the id of the first added peer.
  PeerId JoinMany(const std::vector<KeyId>& keys,
                  const std::vector<DegreeCaps>& caps);

  /// Removes a peer from the ring and releases the in-degree its
  /// out-links held. Dangling in-links *to* it stay in the owners'
  /// out slabs — routers discover them as dead probes.
  void Crash(PeerId id);

  /// Crashes every peer in `victims` (already-dead entries are skipped)
  /// with per-victim link surgery but ONE ring filter pass, so a
  /// churn-figure crash level costs O(victims * degree + ring) instead
  /// of the O(victims * ring) that per-victim ring erases pay. The
  /// resulting network is identical to calling Crash() on each victim
  /// in order.
  void CrashMany(const std::vector<PeerId>& victims);

  const Ring& ring() const { return ring_; }
  size_t alive_count() const { return ring_.size(); }
  size_t size() const { return keys_.size(); }

  KeyId key(PeerId id) const { return keys_[id]; }
  bool alive(PeerId id) const { return alive_[id] != 0; }
  DegreeCaps caps(PeerId id) const { return caps_[id]; }
  /// Long in-links currently held against `id` (== InLinks(id).size()).
  uint32_t in_degree(PeerId id) const { return in_count_[id]; }

  /// Long out-links of `id` in insertion order (may dangle to dead
  /// peers). Valid until the next Join/JoinMany (slab growth may move
  /// the underlying storage).
  PeerSpan OutLinks(PeerId id) const {
    return {out_slab_.data() + out_base_[id], out_count_[id]};
  }
  /// Alive peers holding a long link to `id`, in insertion order.
  PeerSpan InLinks(PeerId id) const {
    return {in_slab_.data() + in_base_[id], in_count_[id]};
  }

  /// Fraction of `id`'s declared in-capacity currently in use — the
  /// load signal power-of-two-choices selection compares.
  double RelativeInLoad(PeerId id) const {
    if (caps_[id].max_in == 0) return 1.0;
    return static_cast<double>(in_count_[id]) /
           static_cast<double>(caps_[id].max_in);
  }

  std::optional<PeerId> OwnerOf(KeyId key) const { return ring_.OwnerOf(key); }

  /// Alive peers in ring (clockwise key) order.
  std::vector<PeerId> AlivePeers() const;

  /// Next/previous alive peer on the ring; nullopt when `id` is the only
  /// alive peer (or dead). For a 1-peer ring a peer has no neighbors.
  std::optional<PeerId> SuccessorOf(PeerId id) const;
  std::optional<PeerId> PredecessorOf(PeerId id) const;

  /// Adds a long link from -> to. Fails (returns false) on self-links,
  /// dead endpoints, duplicates, and when `to` is at its in-degree cap
  /// or `from` at its out-degree cap.
  bool AddLongLink(PeerId from, PeerId to);

  /// Drops all long out-links of `id`, returning targets' in-degree.
  void ClearLongLinks(PeerId id);

  /// Drops every long link in the network in one pass — the start of a
  /// global checkpoint rewire. Equivalent to ClearLongLinks on every
  /// alive peer but O(N) count wipes with no per-target in-list
  /// searches; each peer whose out- or in-state changes is journaled
  /// exactly once per side (delta restores depend on every changed row
  /// being Touched).
  void ClearAllLongLinks();

  /// Applies a planned candidate list for `from`: resolves each pair's
  /// power-of-two choice against the CURRENT in-loads (live feedback —
  /// earlier applied plans steer later choices, exactly as incremental
  /// construction's p2c did), then tries AddLongLink on the winner,
  /// walking the list until `budget` links have landed or it runs out.
  /// Every accepted link goes through AddLongLink itself, so in/out-
  /// caps, liveness, self and duplicate rejection — and the mutation
  /// journal — behave exactly as in incremental construction. Returns
  /// the number of links added.
  size_t ApplyLinkPlan(PeerId from,
                       const std::vector<LinkCandidate>& candidates,
                       uint32_t budget);

  /// Drops out-links of `id` that point at dead peers; returns the count.
  size_t PruneDeadLinks(PeerId id);

  /// Remaining out-link budget of an alive peer.
  uint32_t RemainingOutBudget(PeerId id) const {
    const uint32_t used = out_count_[id];
    return caps_[id].max_out > used ? caps_[id].max_out - used : 0;
  }

  /// Full structural self-check, the deep half of the OSCAR_AUDIT
  /// layer (common/audit.h). Verifies every invariant the SoA layout
  /// and the link protocol promise: parallel arrays in lockstep, slab
  /// bases equal to cap prefix sums, degree counters within caps and
  /// matching their slab rows, no self/duplicate out-links, dead peers
  /// holding no link state, in/out reciprocity between alive peers
  /// (every in-link entry backed by exactly one live out-link and vice
  /// versa), and ring <-> peer-table agreement (sorted, exactly the
  /// alive peers, matching keys). Returns the first violation found;
  /// O(N + E * max_in) — checkpoint-granularity cost, not per-hop.
  Status CheckInvariants() const;

 private:
  // audit_test corrupts private state to prove CheckInvariants actually
  // detects each violation class (there is no public path to an invalid
  // network — that is the point of the invariants).
  friend struct NetworkTestAccess;
  // TopologySnapshot::Restore() rebuilds the peer table and ring index
  // directly from its flat arrays (Join/AddLongLink cannot recreate
  // dead peers or dangling links), and RestoreInto() drives the
  // mutation journal below to repair only the peers touched since the
  // last restore.
  friend class TopologySnapshot;

  std::optional<PeerId> RingNeighbor(PeerId id, bool clockwise) const;

  /// Appends one row to every parallel array (no ring insert).
  PeerId AppendPeer(KeyId key, DegreeCaps caps);

  /// Records `id` as structurally dirty relative to the snapshot this
  /// network was last restored from. Every mutator calls it; it is a
  /// no-op unless a RestoreInto() armed the journal. Once the journal
  /// reaches N entries a delta restore has nothing left to win, so the
  /// journal disarms (forcing the next RestoreInto to a full rebuild)
  /// rather than growing with every further mutation.
  void Touch(PeerId id) {
    if (!journal_active_) return;
    if (journal_.size() >= keys_.size()) {
      journal_active_ = false;
      journal_.clear();
      return;
    }
    journal_.push_back(id);
  }

  // Struct-of-arrays peer table. All vectors are indexed by PeerId and
  // grow in lockstep; out_base_/in_base_ are (N+1)-element prefix sums
  // of the declared caps, so out_base_[i + 1] - out_base_[i] ==
  // caps_[i].max_out is peer i's immutable slab capacity.
  std::vector<KeyId> keys_;
  std::vector<DegreeCaps> caps_;
  std::vector<uint8_t> alive_;
  std::vector<uint64_t> out_base_{0};
  std::vector<uint64_t> in_base_{0};
  std::vector<uint32_t> out_count_;
  std::vector<uint32_t> in_count_;
  std::vector<PeerId> out_slab_;
  std::vector<PeerId> in_slab_;
  Ring ring_;
  // Delta-restore bookkeeping, managed by TopologySnapshot::RestoreInto:
  // which snapshot this network is a restore of (0 = none) and which
  // peers were mutated since.
  uint64_t restore_token_ = 0;
  bool journal_active_ = false;
  std::vector<PeerId> journal_;
};

}  // namespace oscar

#endif  // OSCAR_CORE_NETWORK_H_

// Deterministic splitmix64 RNG. Every stochastic component of the
// simulator draws from an explicitly threaded Rng so that a fixed seed
// reproduces a run bit-for-bit (see the deterministic-replay test).

#ifndef OSCAR_CORE_RNG_H_
#define OSCAR_CORE_RNG_H_

#include <cstdint>

namespace oscar {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit draw (splitmix64).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n); returns 0 when n == 0.
  uint64_t UniformInt(uint64_t n) {
    if (n == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t draw;
    do {
      draw = Next();
    } while (draw >= limit);
    return draw % n;
  }

  /// Standard normal via Box-Muller (one draw per call, no caching, to
  /// keep the consumption pattern deterministic and simple).
  double NextGaussian();

  /// A statistically independent child generator.
  Rng Split() { return Rng(Next() ^ 0x632be59bd9b4e019ULL); }

  /// Counter-forked stream: a generator derived purely from
  /// (seed, stream, substream), consuming nothing from any live Rng.
  /// Checkpoint rewiring forks one per (rewire salt, checkpoint, peer)
  /// so every peer's plan draws from its own stream regardless of the
  /// order — or thread — the plans are computed in.
  static Rng Fork(uint64_t seed, uint64_t stream, uint64_t substream) {
    uint64_t state = Mix(seed + 0x9e3779b97f4a7c15ULL);
    state = Mix(state ^ (stream + 0xbf58476d1ce4e5b9ULL));
    state = Mix(state ^ (substream + 0x94d049bb133111ebULL));
    return Rng(state);
  }

 private:
  /// splitmix64 finalizer: full-avalanche mixing for Fork.
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state_;
};

}  // namespace oscar

#endif  // OSCAR_CORE_RNG_H_

// The experiment layer the figure harnesses are written against:
// env-tunable scale, named overlay factories, and the three canned
// experiment runners that produce the paper's figures.

#ifndef OSCAR_CORE_EXPERIMENTS_H_
#define OSCAR_CORE_EXPERIMENTS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/network.h"
#include "core/rng.h"
#include "core/simulation.h"
#include "metrics/degree_metrics.h"
#include "overlay/overlay.h"

namespace oscar {

/// Experiment sizing, resolved from the environment (see ScaleFromEnv).
struct ExperimentScale {
  size_t target_size = 0;
  size_t queries = 0;         // Queries per evaluation point.
  uint64_t seed = 0;
  std::vector<size_t> checkpoints;  // Network sizes to evaluate at.
  /// True for the "huge" tier: consumers should prefer oracle segment
  /// sampling and sparse queries — walk-sampled construction at 10^6
  /// peers is wall-clock-infeasible (see README "Scale tiers").
  bool huge = false;
};

/// Reads the scale from the environment:
///   OSCAR_BENCH_SCALE   "smoke" (default; alias "small" — seconds per
///                       harness), "n3000" (the 3000-peer perf-probe
///                       scale), "paper" (the paper's 10k-peer runs),
///                       or "huge" (10^6 peers, sparse queries; sets
///                       ExperimentScale::huge so harnesses switch to
///                       oracle sampling).
///   OSCAR_BENCH_SIZE    overrides target_size (checkpoints become
///                       size/4, size/2, size).
///   OSCAR_BENCH_QUERIES overrides queries per evaluation.
///   OSCAR_BENCH_SEED    overrides the seed (default 42).
ExperimentScale ScaleFromEnv();

// ---- Named overlay factories -------------------------------------------

OverlayFactory OscarFactory();
OverlayFactory OscarNoP2cFactory();
/// Oscar with a specific per-median sample size (ablation X2).
OverlayFactory OscarWithSampleSize(uint32_t samples_per_median);
OverlayFactory MercuryFactory();
OverlayFactory ChordFactory();
OverlayFactory KleinbergFactory();

/// Factory lookup by harness/CLI name:
/// "oscar" | "oscar-nop2c" | "mercury" | "chord" | "kleinberg".
Result<OverlayFactory> MakeNamedOverlay(const std::string& name);

// ---- Experiment row types ----------------------------------------------

/// One (series, churn, size) cell of a search-cost-vs-size figure.
struct SearchCostRow {
  std::string series;       // Degree-distribution name.
  double churn_fraction = 0.0;
  size_t network_size = 0;
  double avg_cost = 0.0;    // Mean messages per query, wasted included.
  double avg_wasted = 0.0;
  double success_rate = 0.0;
};

/// One (overlay, key distribution) cell of the comparison table.
struct ComparisonRow {
  std::string overlay_name;
  std::string key_name;
  size_t network_size = 0;
  double avg_cost = 0.0;
  double success_rate = 0.0;
  double utilization = 0.0;
  uint64_t sampling_steps = 0;  // Construction sampling bandwidth.
};

/// One (overlay, degree distribution) in-degree load measurement.
struct DegreeLoadRow {
  std::string overlay_name;
  std::string degree_name;
  size_t network_size = 0;
  DegreeLoadReport report;
};

// ---- Runners ------------------------------------------------------------

/// Fig 1(c) / Fig 2 engine: grows one network per degree series under
/// Gnutella keys, and at every checkpoint evaluates each churn fraction
/// (0 => greedy routing on the intact network; >0 => crash a copy and
/// route with the fault-aware backtracking router).
Result<std::vector<SearchCostRow>> RunSearchCostVsSize(
    const ExperimentScale& scale,
    const std::vector<std::string>& degree_names,
    const std::vector<double>& churn_fractions,
    const OverlayFactory& factory);

/// X1/X2 engine: grows one constant-degree network per (overlay, key
/// distribution) pair and reports cost, utilization and sampling spend.
Result<std::vector<ComparisonRow>> RunOverlayComparison(
    const ExperimentScale& scale,
    const std::vector<std::pair<std::string, OverlayFactory>>& overlays,
    const std::vector<std::string>& key_names);

/// Fig 1(b) / X3 engine: grows one network per degree series under
/// Gnutella keys and measures the in-degree load curve.
Result<std::vector<DegreeLoadRow>> RunDegreeLoad(
    const ExperimentScale& scale,
    const std::vector<std::string>& degree_names,
    const OverlayFactory& factory, const std::string& overlay_name);

}  // namespace oscar

#endif  // OSCAR_CORE_EXPERIMENTS_H_

// TopologySnapshot: an immutable, cache-friendly freeze of a Network's
// read state. Peer attributes live in flat parallel arrays and both
// link directions are CSR-packed (offsets + one contiguous edge array),
// so a snapshot is one allocation-light pass to build, cheap to copy,
// and safe to share across threads or scenario replays. Restore()
// materializes a fresh mutable Network that is structurally identical
// to the one the snapshot was taken from — the substrate for replaying
// many crash/churn variants against one grown topology instead of
// regrowing or deep-copying it.

#ifndef OSCAR_CORE_TOPOLOGY_SNAPSHOT_H_
#define OSCAR_CORE_TOPOLOGY_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/key_id.h"
#include "core/network.h"
#include "core/ring.h"

namespace oscar {

/// Non-owning view of a contiguous run of peer ids (a CSR row or a
/// live Network's link vector). C++17 stand-in for std::span.
struct PeerSpan {
  const PeerId* ptr = nullptr;
  size_t count = 0;

  const PeerId* begin() const { return ptr; }
  const PeerId* end() const { return ptr + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  PeerId operator[](size_t i) const { return ptr[i]; }
};

class TopologySnapshot {
 public:
  TopologySnapshot() = default;
  /// Freezes `net` in one pass over its peer table and ring index.
  /// Aborts loudly (CHECK-style, message on stderr) if the edge arrays
  /// or ring would overflow the 32-bit CSR offsets — a >4B-edge build
  /// must fail instead of silently corrupting the offsets.
  explicit TopologySnapshot(const Network& net);

  size_t size() const { return keys_.size(); }
  size_t alive_count() const { return ring_.size(); }
  KeyId key(PeerId id) const { return keys_[id]; }
  bool alive(PeerId id) const { return alive_[id] != 0; }
  DegreeCaps caps(PeerId id) const { return caps_[id]; }
  const Ring& ring() const { return ring_; }

  /// Long out-links of `id`, in the exact order the live Network held
  /// them (possibly dangling to dead peers). In-links are the alive
  /// peers that held a link to `id` at freeze time.
  PeerSpan OutLinks(PeerId id) const {
    return {out_edges_.data() + out_offsets_[id],
            out_offsets_[id + 1] - out_offsets_[id]};
  }
  PeerSpan InLinks(PeerId id) const {
    return {in_edges_.data() + in_offsets_[id],
            in_offsets_[id + 1] - in_offsets_[id]};
  }

  std::optional<PeerId> OwnerOf(KeyId key) const { return ring_.OwnerOf(key); }

  /// Ring neighbors, identical semantics to Network::SuccessorOf /
  /// PredecessorOf but O(1): the ring position of every alive peer is
  /// precomputed at freeze time.
  std::optional<PeerId> SuccessorOf(PeerId id) const {
    return RingNeighbor(id, /*clockwise=*/true);
  }
  std::optional<PeerId> PredecessorOf(PeerId id) const {
    return RingNeighbor(id, /*clockwise=*/false);
  }

  /// Materializes a mutable Network structurally identical to the one
  /// this snapshot froze (peer order, link order, ring index). A
  /// restore is what churn experiments crash instead of deep-copying
  /// the grown network once per crash level.
  Network Restore() const;

  /// Restore() into a caller-owned Network, arming its mutation
  /// journal. The first call (or a call on a network restored from a
  /// different snapshot) is a full rebuild that reuses `net`'s existing
  /// allocations; every later call repairs ONLY the peers mutated since
  /// the previous restore — O(touched) instead of O(N) — plus one ring
  /// copy. The result is always structurally identical to Restore()
  /// (guarded by the delta-restore identity test); the journal is how
  /// fig2's per-crash-level restores and oscar_sim's per-scenario
  /// replays skip rebuilding the untouched bulk of the peer table.
  void RestoreInto(Network* net) const;

  // ---- CSR fast-path surface ----------------------------------------
  // Raw flat arrays for snapshot-specialized route steppers: one load
  // per field, no per-call backend dispatch. Valid while the snapshot
  // is alive; indices are PeerIds < size().
  static constexpr uint32_t kNotOnRing = UINT32_MAX;
  const KeyId* keys_data() const { return keys_.data(); }
  const DegreeCaps* caps_data() const { return caps_.data(); }
  const uint8_t* alive_data() const { return alive_.data(); }
  const uint32_t* out_offsets_data() const { return out_offsets_.data(); }
  const PeerId* out_edges_data() const { return out_edges_.data(); }
  /// Ring position of `id` (kNotOnRing when dead) — the O(1) index
  /// behind SuccessorOf/PredecessorOf, exposed so steppers can walk the
  /// ring without optional-wrapping each neighbor.
  uint32_t ring_pos(PeerId id) const { return ring_pos_[id]; }

 private:
  std::optional<PeerId> RingNeighbor(PeerId id, bool clockwise) const;

  std::vector<KeyId> keys_;
  std::vector<DegreeCaps> caps_;
  std::vector<uint8_t> alive_;
  // CSR link storage: row i spans [offsets[i], offsets[i + 1]).
  std::vector<uint32_t> out_offsets_;
  std::vector<PeerId> out_edges_;
  std::vector<uint32_t> in_offsets_;
  std::vector<PeerId> in_edges_;
  // Position of each alive peer in ring order (kNotOnRing when dead).
  std::vector<uint32_t> ring_pos_;
  Ring ring_;
  // Identity for delta restores: RestoreInto() only trusts a network's
  // mutation journal when the network was last restored from a snapshot
  // carrying this token (0 = default-constructed, never matches).
  uint64_t token_ = 0;
};

}  // namespace oscar

#endif  // OSCAR_CORE_TOPOLOGY_SNAPSHOT_H_

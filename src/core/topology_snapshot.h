// TopologySnapshot: an immutable, cache-friendly freeze of a Network's
// read state. Peer attributes live in flat parallel arrays and both
// link directions are CSR-packed (offsets + one contiguous edge array),
// so a snapshot is one allocation-light pass to build, cheap to copy,
// and safe to share across threads or scenario replays. Restore()
// materializes a fresh mutable Network that is structurally identical
// to the one the snapshot was taken from — the substrate for replaying
// many crash/churn variants against one grown topology instead of
// regrowing or deep-copying it.
//
// CSR offsets are 32-bit by default (cache-dense; every practical tier
// fits) and promote to 64-bit storage when an edge total crosses
// kWideOffsetThreshold — the guard that used to abort a >4B-edge build
// now just widens the offsets instead.

#ifndef OSCAR_CORE_TOPOLOGY_SNAPSHOT_H_
#define OSCAR_CORE_TOPOLOGY_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/key_id.h"
#include "core/network.h"
#include "core/ring.h"

namespace oscar {

class TopologySnapshot {
 public:
  TopologySnapshot() = default;
  /// Freezes `net` in one pass over its flat peer table (bulk copies of
  /// the key/caps/alive arrays, slab rows packed into CSR).
  explicit TopologySnapshot(const Network& net);

  size_t size() const { return keys_.size(); }
  size_t alive_count() const { return ring_.size(); }
  KeyId key(PeerId id) const { return keys_[id]; }
  bool alive(PeerId id) const { return alive_[id] != 0; }
  DegreeCaps caps(PeerId id) const { return caps_[id]; }
  const Ring& ring() const { return ring_; }

  /// Dual-width CSR offset view: one predictable branch selects the
  /// 32-bit (default) or promoted 64-bit array. Steppers index it per
  /// hop; the branch is free next to the cache miss on the edge row.
  struct CsrOffsets {
    const uint32_t* narrow = nullptr;
    const uint64_t* wide = nullptr;
    uint64_t operator[](size_t i) const {
      return narrow != nullptr ? narrow[i] : wide[i];
    }
  };

  /// Long out-links of `id`, in the exact order the live Network held
  /// them (possibly dangling to dead peers). In-links are the alive
  /// peers that held a link to `id` at freeze time.
  PeerSpan OutLinks(PeerId id) const {
    const CsrOffsets offsets = out_offsets();
    const uint64_t begin = offsets[id];
    return {out_edges_.data() + begin,
            static_cast<size_t>(offsets[id + 1] - begin)};
  }
  PeerSpan InLinks(PeerId id) const {
    const CsrOffsets offsets = in_offsets();
    const uint64_t begin = offsets[id];
    return {in_edges_.data() + begin,
            static_cast<size_t>(offsets[id + 1] - begin)};
  }

  std::optional<PeerId> OwnerOf(KeyId key) const { return ring_.OwnerOf(key); }

  /// Ring neighbors, identical semantics to Network::SuccessorOf /
  /// PredecessorOf but O(1): the ring position of every alive peer is
  /// precomputed at freeze time.
  std::optional<PeerId> SuccessorOf(PeerId id) const {
    return RingNeighbor(id, /*clockwise=*/true);
  }
  std::optional<PeerId> PredecessorOf(PeerId id) const {
    return RingNeighbor(id, /*clockwise=*/false);
  }

  /// Materializes a mutable Network structurally identical to the one
  /// this snapshot froze (peer order, link order, ring index). A
  /// restore is what churn experiments crash instead of deep-copying
  /// the grown network once per crash level.
  Network Restore() const;

  /// Restore() into a caller-owned Network, arming its mutation
  /// journal. The first call (or a call on a network restored from a
  /// different snapshot) is a full rebuild that reuses `net`'s existing
  /// allocations; every later call repairs ONLY the peers mutated since
  /// the previous restore — O(touched) instead of O(N) — plus one ring
  /// copy. The result is always structurally identical to Restore()
  /// (guarded by the delta-restore identity test); the journal is how
  /// fig2's per-crash-level restores and oscar_sim's per-scenario
  /// replays skip rebuilding the untouched bulk of the peer table.
  void RestoreInto(Network* net) const;

  // ---- CSR fast-path surface ----------------------------------------
  // Raw flat arrays for snapshot-specialized route steppers: one load
  // per field, no per-call backend dispatch. Valid while the snapshot
  // is alive; indices are PeerIds < size().
  static constexpr uint32_t kNotOnRing = UINT32_MAX;
  const KeyId* keys_data() const { return keys_.data(); }
  const DegreeCaps* caps_data() const { return caps_.data(); }
  const uint8_t* alive_data() const { return alive_.data(); }
  CsrOffsets out_offsets() const {
    return wide_ ? CsrOffsets{nullptr, out_offsets64_.data()}
                 : CsrOffsets{out_offsets32_.data(), nullptr};
  }
  CsrOffsets in_offsets() const {
    return wide_ ? CsrOffsets{nullptr, in_offsets64_.data()}
                 : CsrOffsets{in_offsets32_.data(), nullptr};
  }
  const PeerId* out_edges_data() const { return out_edges_.data(); }
  /// True when the edge totals crossed the promotion threshold and this
  /// snapshot stores 64-bit offsets.
  bool wide_offsets() const { return wide_; }
  /// Ring position of `id` (kNotOnRing when dead) — the O(1) index
  /// behind SuccessorOf/PredecessorOf, exposed so steppers can walk the
  /// ring without optional-wrapping each neighbor.
  uint32_t ring_pos(PeerId id) const { return ring_pos_[id]; }

  /// Test hook: lowers the 32 -> 64-bit promotion threshold so the wide
  /// path can be exercised without materializing 4 billion edges.
  /// Returns the previous value; pass UINT32_MAX to restore the default.
  static uint64_t SetWideOffsetThresholdForTest(uint64_t threshold);

  /// Deep structural self-check, the snapshot half of the OSCAR_AUDIT
  /// layer (common/audit.h): CSR offsets monotone and closed by the
  /// edge totals, exactly one offset width populated per `wide_`, row
  /// lengths within the declared caps, in-edges only from alive
  /// holders, out->in reciprocity between alive endpoints, and
  /// ring/ring_pos_ agreement with the peer table. Returns the first
  /// violation found.
  Status Validate() const;

  /// Delta-restore identity audit: verifies `net` (typically produced
  /// by RestoreInto's journal-driven repair path) is structurally
  /// identical to a fresh full Restore() of this snapshot — the
  /// equivalence the mutation journal promises. O(N + E): audit-only,
  /// called behind OSCAR_AUDIT at restore granularity.
  Status CheckRestoreIdentity(const Network& net) const;

 private:
  // audit_test corrupts private state to prove Validate() detects each
  // violation class (no public path builds an invalid snapshot).
  friend struct TopologySnapshotTestAccess;
  std::optional<PeerId> RingNeighbor(PeerId id, bool clockwise) const;

  std::vector<KeyId> keys_;
  std::vector<DegreeCaps> caps_;
  std::vector<uint8_t> alive_;
  // CSR link storage: row i spans [offsets[i], offsets[i + 1]). Exactly
  // one of the 32/64-bit offset arrays is populated, per `wide_`.
  std::vector<uint32_t> out_offsets32_;
  std::vector<uint32_t> in_offsets32_;
  std::vector<uint64_t> out_offsets64_;
  std::vector<uint64_t> in_offsets64_;
  std::vector<PeerId> out_edges_;
  std::vector<PeerId> in_edges_;
  bool wide_ = false;
  // Position of each alive peer in ring order (kNotOnRing when dead).
  std::vector<uint32_t> ring_pos_;
  Ring ring_;
  // Identity for delta restores: RestoreInto() only trusts a network's
  // mutation journal when the network was last restored from a snapshot
  // carrying this token (0 = default-constructed, never matches).
  uint64_t token_ = 0;
};

}  // namespace oscar

#endif  // OSCAR_CORE_TOPOLOGY_SNAPSHOT_H_

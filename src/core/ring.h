// Ring: the sorted key index over alive peers. Supports ownership
// lookup, clockwise order statistics (CountInSegment, rank queries) and
// neighbor queries — the substrate every overlay and router builds on.

#ifndef OSCAR_CORE_RING_H_
#define OSCAR_CORE_RING_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/key_id.h"

namespace oscar {

/// Peers are dense indices into Network's peer table.
using PeerId = uint32_t;

class Ring {
 public:
  struct Entry {
    uint64_t key_raw;
    PeerId id;
    friend bool operator<(const Entry& a, const Entry& b) {
      return a.key_raw != b.key_raw ? a.key_raw < b.key_raw : a.id < b.id;
    }
    friend bool operator==(const Entry& a, const Entry& b) {
      return a.key_raw == b.key_raw && a.id == b.id;
    }
  };

  void Insert(KeyId key, PeerId id);
  /// Inserts every entry in `added` (any order) in one backward merge
  /// pass — O(size + k log k) total where k sorted-vector Inserts would
  /// cost O(k * size). Identical result to inserting them one by one;
  /// Network::JoinMany is the caller that makes batched joins cheap.
  void InsertMany(std::vector<Entry> added);
  void Remove(KeyId key, PeerId id);

  /// Removes every entry whose id satisfies `pred` in one filter pass —
  /// O(size) total instead of O(size) per removal, the batched form
  /// Network::CrashMany uses. Survivor order is unchanged, so the
  /// result is identical to removing the same entries one by one.
  template <typename Pred>
  void RemoveIdsIf(Pred pred) {
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry& e) { return pred(e.id); }),
                   entries_.end());
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// The alive peer closest to `key` by shortest-way ring distance
  /// (ties broken clockwise). nullopt on an empty ring.
  std::optional<PeerId> OwnerOf(KeyId key) const;

  /// Number of alive peers whose key lies in the clockwise segment
  /// [from, to). from == to denotes the empty segment.
  size_t CountInSegment(KeyId from, KeyId to) const;

  /// The `offset`-th alive peer clockwise within [from, to); nullopt when
  /// the segment holds fewer than offset+1 peers.
  std::optional<PeerId> NthInSegment(KeyId from, KeyId to,
                                     size_t offset) const;

  /// First alive peer at or clockwise-after `key` (wrapping).
  std::optional<PeerId> SuccessorOfKey(KeyId key) const;

  /// Clockwise rank from the peer owning position `from_idx` — helpers
  /// for link-geometry metrics. `IndexOf` returns the position of the
  /// entry (key,id) in ring order, or nullopt if absent.
  std::optional<size_t> IndexOf(KeyId key, PeerId id) const;
  const Entry& at(size_t index) const { return entries_[index]; }

 private:
  // Position of the first entry with key_raw >= raw (== size() if none).
  size_t LowerBound(uint64_t raw) const;

  std::vector<Entry> entries_;  // Sorted by (key_raw, id).
};

}  // namespace oscar

#endif  // OSCAR_CORE_RING_H_

// KeyId: a position on the unit ring, stored as a 64-bit fixed-point
// fraction so ring arithmetic (wrap-around distances, segment membership)
// is exact. The unsigned wrap of uint64_t IS the ring wrap.

#ifndef OSCAR_CORE_KEY_ID_H_
#define OSCAR_CORE_KEY_ID_H_

#include <cmath>
#include <cstdint>

namespace oscar {

struct KeyId {
  uint64_t raw = 0;

  /// Maps u in [0, 1) onto the ring; out-of-range inputs are wrapped.
  static KeyId FromUnit(double u) {
    u -= std::floor(u);  // Wrap into [0, 1); also handles negatives.
    // 2^64 as a double. u < 1 guarantees the product converts in range;
    // the nearest double below 1.0 maps to 2^64 - 2^11 which still fits.
    double scaled = u * 18446744073709551616.0;
    if (scaled >= 18446744073709551615.0) scaled = 18446744073709551615.0;
    return KeyId{static_cast<uint64_t>(scaled)};
  }

  static KeyId FromRaw(uint64_t raw) { return KeyId{raw}; }

  double unit() const {
    return static_cast<double>(raw) / 18446744073709551616.0;
  }

  /// The key at clockwise offset `fraction` of the ring from this one.
  KeyId OffsetBy(double fraction) const {
    return KeyId{raw + FromUnit(fraction).raw};
  }

  friend bool operator==(KeyId a, KeyId b) { return a.raw == b.raw; }
  friend bool operator!=(KeyId a, KeyId b) { return a.raw != b.raw; }
  friend bool operator<(KeyId a, KeyId b) { return a.raw < b.raw; }
};

/// Distance travelling clockwise from `a` to `b` (in ring units of 2^-64).
inline uint64_t ClockwiseDistance(KeyId a, KeyId b) { return b.raw - a.raw; }

/// Shortest-way ring distance between `a` and `b`.
inline uint64_t RingDistance(KeyId a, KeyId b) {
  const uint64_t cw = b.raw - a.raw;
  const uint64_t ccw = a.raw - b.raw;
  return cw < ccw ? cw : ccw;
}

/// True when `key` lies in the clockwise half-open segment [from, to).
/// An empty segment (from == to) contains nothing.
inline bool InClockwiseSegment(KeyId key, KeyId from, KeyId to) {
  return ClockwiseDistance(from, key) < ClockwiseDistance(from, to);
}

}  // namespace oscar

#endif  // OSCAR_CORE_KEY_ID_H_

#include "core/topology_snapshot.h"

#include <algorithm>
#include <atomic>
#include <string>

namespace oscar {
namespace {

// 32 -> 64-bit promotion threshold for CSR offsets. Edge totals at or
// below it store 32-bit offsets; above it the snapshot promotes to
// 64-bit storage. Test-settable so the wide path can be exercised
// without building 4 billion edges.
std::atomic<uint64_t> g_wide_threshold{UINT32_MAX};

uint64_t NextSnapshotToken() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

}  // namespace

uint64_t TopologySnapshot::SetWideOffsetThresholdForTest(uint64_t threshold) {
  return g_wide_threshold.exchange(threshold);
}

TopologySnapshot::TopologySnapshot(const Network& net)
    : keys_(net.keys_),
      caps_(net.caps_),
      alive_(net.alive_),
      ring_(net.ring()),
      token_(NextSnapshotToken()) {
  const size_t n = keys_.size();
  uint64_t total_out = 0, total_in = 0;
  for (PeerId id = 0; id < n; ++id) {
    total_out += net.out_count_[id];
    total_in += net.in_count_[id];
  }
  const uint64_t threshold = g_wide_threshold.load(std::memory_order_relaxed);
  wide_ = total_out > threshold || total_in > threshold;
  out_edges_.reserve(total_out);
  in_edges_.reserve(total_in);
  const auto push_offsets = [&](uint64_t out_off, uint64_t in_off) {
    if (wide_) {
      out_offsets64_.push_back(out_off);
      in_offsets64_.push_back(in_off);
    } else {
      out_offsets32_.push_back(static_cast<uint32_t>(out_off));
      in_offsets32_.push_back(static_cast<uint32_t>(in_off));
    }
  };
  if (wide_) {
    out_offsets64_.reserve(n + 1);
    in_offsets64_.reserve(n + 1);
  } else {
    out_offsets32_.reserve(n + 1);
    in_offsets32_.reserve(n + 1);
  }
  push_offsets(0, 0);
  for (PeerId id = 0; id < n; ++id) {
    // Pack each peer's live slab prefix; the unused slab tail (capacity
    // beyond count) is dropped — snapshots are exactly-sized.
    const PeerSpan out = net.OutLinks(id);
    out_edges_.insert(out_edges_.end(), out.begin(), out.end());
    const PeerSpan in = net.InLinks(id);
    in_edges_.insert(in_edges_.end(), in.begin(), in.end());
    push_offsets(out_edges_.size(), in_edges_.size());
  }
  ring_pos_.assign(n, kNotOnRing);
  for (size_t pos = 0; pos < ring_.size(); ++pos) {
    ring_pos_[ring_.at(pos).id] = static_cast<uint32_t>(pos);
  }
}

std::optional<PeerId> TopologySnapshot::RingNeighbor(PeerId id,
                                                     bool clockwise) const {
  if (!alive(id) || ring_.size() < 2) return std::nullopt;
  const uint32_t pos = ring_pos_[id];
  if (pos == kNotOnRing) return std::nullopt;
  const size_t n = ring_.size();
  const size_t next = clockwise ? (pos + 1) % n : (pos + n - 1) % n;
  return ring_.at(next).id;
}

Status TopologySnapshot::Validate() const {
  const size_t n = keys_.size();
  if (caps_.size() != n || alive_.size() != n || ring_pos_.size() != n) {
    return Status::Error("snapshot parallel arrays out of lockstep");
  }
  // Exactly one offset width is populated, matching `wide_`.
  if (wide_) {
    if (out_offsets64_.size() != n + 1 || in_offsets64_.size() != n + 1 ||
        !out_offsets32_.empty() || !in_offsets32_.empty()) {
      return Status::Error("wide snapshot carries 32-bit offsets");
    }
  } else {
    if (out_offsets32_.size() != n + 1 || in_offsets32_.size() != n + 1 ||
        !out_offsets64_.empty() || !in_offsets64_.empty()) {
      return Status::Error("narrow snapshot carries 64-bit offsets");
    }
  }
  const CsrOffsets out_off = out_offsets();
  const CsrOffsets in_off = in_offsets();
  if (out_off[0] != 0 || in_off[0] != 0) {
    return Status::Error("CSR offsets do not start at 0");
  }
  if (out_off[n] != out_edges_.size() || in_off[n] != in_edges_.size()) {
    return Status::Error("CSR offsets not closed by the edge totals");
  }
  size_t alive_total = 0;
  for (PeerId id = 0; id < n; ++id) {
    if (alive_[id] != 0 && alive_[id] != 1) {
      return Status::Error("alive flag not 0/1 at peer " + std::to_string(id));
    }
    alive_total += alive_[id];
    if (out_off[id + 1] < out_off[id] || in_off[id + 1] < in_off[id]) {
      return Status::Error("CSR offsets not monotone at peer " +
                           std::to_string(id));
    }
    const uint64_t out_len = out_off[id + 1] - out_off[id];
    const uint64_t in_len = in_off[id + 1] - in_off[id];
    if (out_len > caps_[id].max_out || in_len > caps_[id].max_in) {
      return Status::Error("CSR row exceeds declared cap at peer " +
                           std::to_string(id));
    }
    if (!alive_[id] && (out_len != 0 || in_len != 0)) {
      return Status::Error("dead peer holds CSR rows at peer " +
                           std::to_string(id));
    }
    const PeerSpan out = OutLinks(id);
    for (PeerId target : out) {
      if (target >= n) {
        return Status::Error("out-edge beyond peer table at peer " +
                             std::to_string(id));
      }
      if (target == id) {
        return Status::Error("self edge at peer " + std::to_string(id));
      }
      // Dangling edges to dead targets are legal (frozen mid-churn);
      // live ones must be mirrored in the target's in row.
      if (alive_[target]) {
        const PeerSpan in = InLinks(target);
        if (std::count(in.begin(), in.end(), id) != 1) {
          return Status::Error("out-edge not mirrored exactly once, peer " +
                               std::to_string(id));
        }
      }
    }
    const PeerSpan in = InLinks(id);
    for (PeerId holder : in) {
      if (holder >= n || !alive_[holder]) {
        return Status::Error("in-edge from dead holder at peer " +
                             std::to_string(id));
      }
      const PeerSpan holder_out = OutLinks(holder);
      if (std::find(holder_out.begin(), holder_out.end(), id) ==
          holder_out.end()) {
        return Status::Error("in-edge without matching out-edge at peer " +
                             std::to_string(id));
      }
    }
  }
  // Ring and ring_pos_ agree with the peer table: exactly the alive
  // peers, sorted, each position index pointing back at its entry.
  if (ring_.size() != alive_total) {
    return Status::Error("ring size != alive peer count");
  }
  for (size_t pos = 0; pos < ring_.size(); ++pos) {
    const Ring::Entry& entry = ring_.at(pos);
    if (entry.id >= n || !alive_[entry.id] ||
        entry.key_raw != keys_[entry.id].raw) {
      return Status::Error("ring entry disagrees with peer table");
    }
    if (ring_pos_[entry.id] != pos) {
      return Status::Error("ring_pos does not point back at ring entry");
    }
    if (pos > 0 && !(ring_.at(pos - 1) < entry)) {
      return Status::Error("ring entries out of (key, id) order");
    }
  }
  for (PeerId id = 0; id < n; ++id) {
    if (!alive_[id] && ring_pos_[id] != kNotOnRing) {
      return Status::Error("dead peer carries a ring position");
    }
  }
  return Status::Ok();
}

Status TopologySnapshot::CheckRestoreIdentity(const Network& net) const {
  const Network full = Restore();
  const size_t n = full.keys_.size();
  if (net.keys_.size() != n) {
    return Status::Error("restored network has wrong peer count");
  }
  for (PeerId id = 0; id < n; ++id) {
    if (net.keys_[id].raw != full.keys_[id].raw) {
      return Status::Error("restored key diverges at peer " +
                           std::to_string(id));
    }
    if (net.caps_[id].max_in != full.caps_[id].max_in ||
        net.caps_[id].max_out != full.caps_[id].max_out) {
      return Status::Error("restored caps diverge at peer " +
                           std::to_string(id));
    }
    if (net.alive_[id] != full.alive_[id]) {
      return Status::Error("restored liveness diverges at peer " +
                           std::to_string(id));
    }
    // Link order is part of the contract (walk order is physics), so
    // rows must match element-wise, not as sets.
    const PeerSpan a_out = net.OutLinks(id);
    const PeerSpan b_out = full.OutLinks(id);
    if (a_out.size() != b_out.size() ||
        !std::equal(a_out.begin(), a_out.end(), b_out.begin())) {
      return Status::Error("restored out row diverges at peer " +
                           std::to_string(id));
    }
    const PeerSpan a_in = net.InLinks(id);
    const PeerSpan b_in = full.InLinks(id);
    if (a_in.size() != b_in.size() ||
        !std::equal(a_in.begin(), a_in.end(), b_in.begin())) {
      return Status::Error("restored in row diverges at peer " +
                           std::to_string(id));
    }
  }
  if (net.ring_.entries() != full.ring_.entries()) {
    return Status::Error("restored ring diverges from full restore");
  }
  return Status::Ok();
}

Network TopologySnapshot::Restore() const {
  Network net;
  RestoreInto(&net);
  return net;
}

void TopologySnapshot::RestoreInto(Network* net) const {
  const size_t n = size();
  // Repair one peer's row from the flat arrays. Caps are immutable per
  // peer, so an id's slab region is the same in every restore of the
  // same snapshot — a repair is two row copies plus scalar stores.
  const auto repair = [&](PeerId id) {
    net->keys_[id] = keys_[id];
    net->caps_[id] = caps_[id];
    net->alive_[id] = alive_[id];
    const PeerSpan out = OutLinks(id);
    std::copy(out.begin(), out.end(),
              net->out_slab_.data() + net->out_base_[id]);
    net->out_count_[id] = static_cast<uint32_t>(out.size());
    const PeerSpan in = InLinks(id);
    std::copy(in.begin(), in.end(), net->in_slab_.data() + net->in_base_[id]);
    net->in_count_[id] = static_cast<uint32_t>(in.size());
  };
  const bool delta = token_ != 0 && net->restore_token_ == token_ &&
                     net->journal_active_ && net->keys_.size() >= n &&
                     net->journal_.size() < n;
  if (delta) {
    // Drop peers joined since the last restore: truncate every parallel
    // array — and both slabs — back to the snapshot's extent. Bases of
    // surviving peers are unchanged (caps are join-time constants).
    net->keys_.resize(n);
    net->caps_.resize(n);
    net->alive_.resize(n);
    net->out_base_.resize(n + 1);
    net->in_base_.resize(n + 1);
    net->out_count_.resize(n);
    net->in_count_.resize(n);
    net->out_slab_.resize(net->out_base_[n]);
    net->in_slab_.resize(net->in_base_[n]);
    std::sort(net->journal_.begin(), net->journal_.end());
    net->journal_.erase(
        std::unique(net->journal_.begin(), net->journal_.end()),
        net->journal_.end());
    for (PeerId id : net->journal_) {
      if (id < n) repair(id);  // >= n: joined peers, already dropped.
    }
  } else {
    // Full rebuild: bulk array copies (reusing `net`'s allocations when
    // they are large enough) plus a prefix-sum pass to lay out slabs.
    net->keys_ = keys_;
    net->caps_ = caps_;
    net->alive_ = alive_;
    net->out_base_.resize(n + 1);
    net->in_base_.resize(n + 1);
    net->out_base_[0] = 0;
    net->in_base_[0] = 0;
    for (size_t i = 0; i < n; ++i) {
      net->out_base_[i + 1] = net->out_base_[i] + caps_[i].max_out;
      net->in_base_[i + 1] = net->in_base_[i] + caps_[i].max_in;
    }
    net->out_count_.resize(n);
    net->in_count_.resize(n);
    net->out_slab_.resize(net->out_base_[n]);
    net->in_slab_.resize(net->in_base_[n]);
    for (PeerId id = 0; id < n; ++id) repair(id);
  }
  net->ring_ = ring_;
  net->restore_token_ = token_;
  net->journal_active_ = true;
  net->journal_.clear();
}

}  // namespace oscar

#include "core/topology_snapshot.h"

namespace oscar {

TopologySnapshot::TopologySnapshot(const Network& net) : ring_(net.ring()) {
  const size_t n = net.size();
  keys_.reserve(n);
  caps_.reserve(n);
  alive_.reserve(n);
  out_offsets_.reserve(n + 1);
  in_offsets_.reserve(n + 1);
  size_t total_out = 0, total_in = 0;
  for (PeerId id = 0; id < n; ++id) {
    total_out += net.peer(id).long_out.size();
    total_in += net.peer(id).long_in_peers.size();
  }
  out_edges_.reserve(total_out);
  in_edges_.reserve(total_in);
  out_offsets_.push_back(0);
  in_offsets_.push_back(0);
  for (PeerId id = 0; id < n; ++id) {
    const Peer& peer = net.peer(id);
    keys_.push_back(peer.key);
    caps_.push_back(peer.caps);
    alive_.push_back(peer.alive ? 1 : 0);
    out_edges_.insert(out_edges_.end(), peer.long_out.begin(),
                      peer.long_out.end());
    in_edges_.insert(in_edges_.end(), peer.long_in_peers.begin(),
                     peer.long_in_peers.end());
    out_offsets_.push_back(static_cast<uint32_t>(out_edges_.size()));
    in_offsets_.push_back(static_cast<uint32_t>(in_edges_.size()));
  }
  ring_pos_.assign(n, kNotOnRing);
  for (size_t pos = 0; pos < ring_.size(); ++pos) {
    ring_pos_[ring_.at(pos).id] = static_cast<uint32_t>(pos);
  }
}

std::optional<PeerId> TopologySnapshot::RingNeighbor(PeerId id,
                                                     bool clockwise) const {
  if (!alive(id) || ring_.size() < 2) return std::nullopt;
  const uint32_t pos = ring_pos_[id];
  if (pos == kNotOnRing) return std::nullopt;
  const size_t n = ring_.size();
  const size_t next = clockwise ? (pos + 1) % n : (pos + n - 1) % n;
  return ring_.at(next).id;
}

Network TopologySnapshot::Restore() const {
  Network net;
  const size_t n = size();
  net.peers_.resize(n);
  for (PeerId id = 0; id < n; ++id) {
    Peer& peer = net.peers_[id];
    peer.key = keys_[id];
    peer.caps = caps_[id];
    peer.alive = alive(id);
    const PeerSpan out = OutLinks(id);
    peer.long_out.assign(out.begin(), out.end());
    const PeerSpan in = InLinks(id);
    peer.long_in_peers.assign(in.begin(), in.end());
    peer.long_in = static_cast<uint32_t>(peer.long_in_peers.size());
  }
  net.ring_ = ring_;
  return net;
}

}  // namespace oscar

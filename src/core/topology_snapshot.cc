#include "core/topology_snapshot.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace oscar {
namespace {

/// CHECK-style guard for the 32-bit CSR offsets and ring positions: a
/// build whose edge arrays (or ring) no longer fit must fail loudly
/// instead of silently wrapping the casts and corrupting every row.
void CheckFitsU32(size_t value, const char* what) {
  if (value > static_cast<size_t>(UINT32_MAX)) {
    std::fprintf(stderr,
                 "TopologySnapshot: %s (%zu) exceeds the 32-bit CSR limit "
                 "(%u); refusing to build a corrupt snapshot\n",
                 what, value, UINT32_MAX);
    std::abort();
  }
}

uint64_t NextSnapshotToken() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

}  // namespace

TopologySnapshot::TopologySnapshot(const Network& net)
    : ring_(net.ring()), token_(NextSnapshotToken()) {
  const size_t n = net.size();
  keys_.reserve(n);
  caps_.reserve(n);
  alive_.reserve(n);
  out_offsets_.reserve(n + 1);
  in_offsets_.reserve(n + 1);
  size_t total_out = 0, total_in = 0;
  for (PeerId id = 0; id < n; ++id) {
    total_out += net.peer(id).long_out.size();
    total_in += net.peer(id).long_in_peers.size();
  }
  CheckFitsU32(total_out, "total out-edge count");
  CheckFitsU32(total_in, "total in-edge count");
  CheckFitsU32(ring_.size(), "ring size");
  out_edges_.reserve(total_out);
  in_edges_.reserve(total_in);
  out_offsets_.push_back(0);
  in_offsets_.push_back(0);
  for (PeerId id = 0; id < n; ++id) {
    const Peer& peer = net.peer(id);
    keys_.push_back(peer.key);
    caps_.push_back(peer.caps);
    alive_.push_back(peer.alive ? 1 : 0);
    out_edges_.insert(out_edges_.end(), peer.long_out.begin(),
                      peer.long_out.end());
    in_edges_.insert(in_edges_.end(), peer.long_in_peers.begin(),
                     peer.long_in_peers.end());
    out_offsets_.push_back(static_cast<uint32_t>(out_edges_.size()));
    in_offsets_.push_back(static_cast<uint32_t>(in_edges_.size()));
  }
  ring_pos_.assign(n, kNotOnRing);
  for (size_t pos = 0; pos < ring_.size(); ++pos) {
    ring_pos_[ring_.at(pos).id] = static_cast<uint32_t>(pos);
  }
}

std::optional<PeerId> TopologySnapshot::RingNeighbor(PeerId id,
                                                     bool clockwise) const {
  if (!alive(id) || ring_.size() < 2) return std::nullopt;
  const uint32_t pos = ring_pos_[id];
  if (pos == kNotOnRing) return std::nullopt;
  const size_t n = ring_.size();
  const size_t next = clockwise ? (pos + 1) % n : (pos + n - 1) % n;
  return ring_.at(next).id;
}

Network TopologySnapshot::Restore() const {
  Network net;
  RestoreInto(&net);
  return net;
}

void TopologySnapshot::RestoreInto(Network* net) const {
  const size_t n = size();
  // Repair one peer's row from the flat arrays; vector assign() reuses
  // the row's existing capacity on a recycled network.
  const auto repair = [&](PeerId id) {
    Peer& peer = net->peers_[id];
    peer.key = keys_[id];
    peer.caps = caps_[id];
    peer.alive = alive(id);
    const PeerSpan out = OutLinks(id);
    peer.long_out.assign(out.begin(), out.end());
    const PeerSpan in = InLinks(id);
    peer.long_in_peers.assign(in.begin(), in.end());
    peer.long_in = static_cast<uint32_t>(peer.long_in_peers.size());
  };
  const bool delta = token_ != 0 && net->restore_token_ == token_ &&
                     net->journal_active_ && net->peers_.size() >= n &&
                     net->journal_.size() < n;
  if (delta) {
    net->peers_.resize(n);  // Drop peers joined since the last restore.
    std::sort(net->journal_.begin(), net->journal_.end());
    net->journal_.erase(
        std::unique(net->journal_.begin(), net->journal_.end()),
        net->journal_.end());
    for (PeerId id : net->journal_) {
      if (id < n) repair(id);  // >= n: joined peers, already dropped.
    }
  } else {
    net->peers_.resize(n);
    for (PeerId id = 0; id < n; ++id) repair(id);
  }
  net->ring_ = ring_;
  net->restore_token_ = token_;
  net->journal_active_ = true;
  net->journal_.clear();
}

}  // namespace oscar

// Segment samplers: draw a (near-)uniform random peer whose key lies in
// a clockwise ring segment. This is the primitive Oscar's partitioner
// consumes — the paper's network-size/median estimation reduces to it.
// Each sample reports the number of protocol messages it cost so the
// harnesses can account for sampling bandwidth.

#ifndef OSCAR_SAMPLING_SEGMENT_SAMPLER_H_
#define OSCAR_SAMPLING_SEGMENT_SAMPLER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/network_view.h"
#include "core/rng.h"

namespace oscar {

struct SegmentSample {
  PeerId peer = 0;
  uint64_t steps = 0;  // Messages spent obtaining this sample.
};

class SegmentSampler {
 public:
  virtual ~SegmentSampler() = default;

  /// Samples an alive peer with key in the clockwise segment [from, to),
  /// as seen from `origin`. Fails when the segment is empty.
  virtual Result<SegmentSample> SampleInSegment(NetworkView net,
                                                PeerId origin, KeyId from,
                                                KeyId to, Rng* rng) const = 0;
  virtual std::string name() const = 0;
};

using SegmentSamplerPtr = std::shared_ptr<const SegmentSampler>;

}  // namespace oscar

#endif  // OSCAR_SAMPLING_SEGMENT_SAMPLER_H_

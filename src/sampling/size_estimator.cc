#include "sampling/size_estimator.h"

#include <algorithm>

#include "common/string_util.h"

namespace oscar {

double OracleSizeEstimator::Estimate(NetworkView net, PeerId origin,
                                     Rng* rng) const {
  (void)origin;
  (void)rng;
  return std::max<double>(1.0, static_cast<double>(net.alive_count()));
}

double GapSizeEstimator::Estimate(NetworkView net, PeerId origin,
                                  Rng* rng) const {
  (void)rng;
  const size_t alive = net.alive_count();
  if (alive < 2) return 1.0;
  const uint32_t window =
      static_cast<uint32_t>(std::min<size_t>(window_, alive - 1));
  PeerId current = origin;
  uint64_t span = 0;
  for (uint32_t i = 0; i < window; ++i) {
    const auto next = net.SuccessorOf(current);
    if (!next.has_value()) break;
    span += ClockwiseDistance(net.key(current), net.key(*next));
    current = *next;
  }
  if (span == 0) return static_cast<double>(alive);
  const double span_fraction =
      static_cast<double>(span) / 18446744073709551616.0;
  return std::max(1.0, static_cast<double>(window) / span_fraction);
}

std::string GapSizeEstimator::name() const {
  return StrCat("gap(w=", window_, ")");
}

}  // namespace oscar

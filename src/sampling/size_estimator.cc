#include "sampling/size_estimator.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/topology_snapshot.h"

namespace oscar {
namespace {

/// Gap-window span over a frozen snapshot: the same successor chain as
/// the generic loop below, but walking precomputed ring positions
/// directly (one modular increment per hop) instead of an optional-
/// wrapped SuccessorOf per peer. Returns the summed clockwise span of
/// `window` successor gaps starting at `origin`, or 0 when the origin
/// is dead or the ring is degenerate — exactly the generic outcomes.
uint64_t GapSpanCsr(const TopologySnapshot& snap, PeerId origin,
                    uint32_t window) {
  const Ring& ring = snap.ring();
  const size_t n = ring.size();
  uint32_t pos = snap.ring_pos(origin);
  if (n < 2 || pos == TopologySnapshot::kNotOnRing) return 0;
  uint64_t span = 0;
  for (uint32_t i = 0; i < window; ++i) {
    const uint32_t next = static_cast<uint32_t>((pos + 1) % n);
    span += ClockwiseDistance(KeyId::FromRaw(ring.at(pos).key_raw),
                              KeyId::FromRaw(ring.at(next).key_raw));
    pos = next;
  }
  return span;
}

}  // namespace

double OracleSizeEstimator::Estimate(NetworkView net, PeerId origin,
                                     Rng* rng) const {
  (void)origin;
  (void)rng;
  return std::max<double>(1.0, static_cast<double>(net.alive_count()));
}

double GapSizeEstimator::Estimate(NetworkView net, PeerId origin,
                                  Rng* rng) const {
  (void)rng;
  const size_t alive = net.alive_count();
  if (alive < 2) return 1.0;
  const uint32_t window =
      static_cast<uint32_t>(std::min<size_t>(window_, alive - 1));
  uint64_t span = 0;
  if (net.snapshot() != nullptr) {
    span = GapSpanCsr(*net.snapshot(), origin, window);
  } else {
    PeerId current = origin;
    for (uint32_t i = 0; i < window; ++i) {
      const auto next = net.SuccessorOf(current);
      if (!next.has_value()) break;
      span += ClockwiseDistance(net.key(current), net.key(*next));
      current = *next;
    }
  }
  if (span == 0) return static_cast<double>(alive);
  const double span_fraction =
      static_cast<double>(span) / 18446744073709551616.0;
  return std::max(1.0, static_cast<double>(window) / span_fraction);
}

std::string GapSizeEstimator::name() const {
  return StrCat("gap(w=", window_, ")");
}

}  // namespace oscar

// Protocol-level sampler: a random walk over the overlay graph,
// rejection-tested at stride intervals until it lands in the requested
// segment. For very small segments, where rejection would take O(N)
// steps, it falls back to greedy-routing to a random key inside the
// segment — the range-walk trick a deployed Oscar node would use,
// slightly gap-biased but cheap.

#ifndef OSCAR_SAMPLING_RANDOM_WALK_SAMPLER_H_
#define OSCAR_SAMPLING_RANDOM_WALK_SAMPLER_H_

#include "sampling/segment_sampler.h"

namespace oscar {

struct RandomWalkOptions {
  uint32_t burn_in = 12;         // Steps before the first membership test.
  uint32_t test_stride = 6;      // Steps between membership tests.
  uint32_t max_walk_steps = 72;  // Rejection budget before falling back.
  /// Segments at or below this population are served from the successor
  /// list instead (uniform pick, one message per peer enumerated):
  /// rejection-walking into a sliver of the ring is hopeless, and every
  /// DHT node maintains its near neighborhood anyway.
  uint32_t successor_list_cutoff = 48;
  /// When the rejection budget is exhausted the sampler routes to a
  /// random key in the segment and spreads the landing over this many
  /// clockwise successors. Taking the owner alone would be gap-biased:
  /// peers in dense clusters own almost no key space, get starved of
  /// in-links, lose walk degree, and the starvation feeds back.
  uint32_t fallback_spread = 8;
  /// Metropolis-Hastings acceptance floor. Pure MH (accept with
  /// deg_u/deg_v) makes the walk uniform over peers but traps it at
  /// low-degree nodes — a freshly joined peer with two ring links would
  /// reject ~93% of its escape moves. The floor bounds the trap at
  /// 1/floor expected steps and still removes most of the degree bias.
  double mh_floor = 0.3;
  /// Test-only hook: when set, every walk position is appended — the
  /// origin, then each accepted proposal. The per-walk lockstep test
  /// uses it to hold the generic and CSR walk paths to the identical
  /// visited-peer sequence. Not thread-safe; leave null outside tests.
  std::vector<PeerId>* visit_trace = nullptr;
};

class RandomWalkSegmentSampler : public SegmentSampler {
 public:
  RandomWalkSegmentSampler() = default;
  explicit RandomWalkSegmentSampler(RandomWalkOptions options)
      : options_(options) {}

  Result<SegmentSample> SampleInSegment(NetworkView net, PeerId origin,
                                        KeyId from, KeyId to,
                                        Rng* rng) const override;
  std::string name() const override { return "random-walk"; }

 private:
  RandomWalkOptions options_;
};

}  // namespace oscar

#endif  // OSCAR_SAMPLING_RANDOM_WALK_SAMPLER_H_

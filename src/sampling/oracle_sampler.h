// Oracle sampler: exactly uniform over the segment via the global ring
// index, at unit cost. The idealized upper bound the random-walk
// sampler is measured against.

#ifndef OSCAR_SAMPLING_ORACLE_SAMPLER_H_
#define OSCAR_SAMPLING_ORACLE_SAMPLER_H_

#include "sampling/segment_sampler.h"

namespace oscar {

class OracleSegmentSampler : public SegmentSampler {
 public:
  Result<SegmentSample> SampleInSegment(NetworkView net, PeerId origin,
                                        KeyId from, KeyId to,
                                        Rng* rng) const override;
  std::string name() const override { return "oracle"; }
};

}  // namespace oscar

#endif  // OSCAR_SAMPLING_ORACLE_SAMPLER_H_

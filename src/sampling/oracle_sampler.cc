#include "sampling/oracle_sampler.h"

namespace oscar {

Result<SegmentSample> OracleSegmentSampler::SampleInSegment(
    NetworkView net, PeerId origin, KeyId from, KeyId to,
    Rng* rng) const {
  (void)origin;
  const size_t count = net.ring().CountInSegment(from, to);
  if (count == 0) return Status::Error("oracle sampler: empty segment");
  const size_t offset = static_cast<size_t>(rng->UniformInt(count));
  const auto peer = net.ring().NthInSegment(from, to, offset);
  if (!peer.has_value()) {
    return Status::Error("oracle sampler: ring index out of sync");
  }
  return SegmentSample{*peer, 1};
}

}  // namespace oscar

#include "sampling/random_walk_sampler.h"

#include <algorithm>

#include "core/topology_snapshot.h"
#include "routing/greedy_router.h"

namespace oscar {
namespace {

/// Where a rejection walk ended: on a peer inside the segment (found),
/// or at its final position with the budget exhausted (the fallback
/// range walk starts there). The two walk implementations below must
/// agree on this outcome draw for draw — the CSR one exists only to
/// read the topology faster, never to walk differently.
struct WalkOutcome {
  bool found = false;
  PeerId current = 0;
  uint64_t steps = 0;
};

/// Generic-backend walk: the degree-corrected (Metropolis-Hastings,
/// clamped) random walk over the undirected gossip graph; mixes in
/// O(log N) on a small world. Membership is tested at stride intervals
/// only — testing every step would bias samples toward the segment
/// boundary nearest the origin.
WalkOutcome WalkGeneric(NetworkView net, PeerId origin, KeyId from,
                        KeyId to, const RandomWalkOptions& options,
                        Rng* rng) {
  WalkOutcome out;
  PeerId current = origin;
  if (options.visit_trace != nullptr) options.visit_trace->push_back(current);
  std::vector<PeerId> scratch;
  std::vector<PeerId> alive;
  std::vector<PeerId> proposal_alive;
  const auto alive_walk_neighbors = [&net](PeerId id,
                                           std::vector<PeerId>* scratch_vec,
                                           std::vector<PeerId>* out_vec) {
    scratch_vec->clear();
    net.AppendWalkNeighbors(id, scratch_vec);
    out_vec->clear();
    for (PeerId n : *scratch_vec) {
      if (net.alive(n)) out_vec->push_back(n);
    }
  };
  const uint32_t total_steps = options.burn_in + options.max_walk_steps;
  alive_walk_neighbors(current, &scratch, &alive);
  for (uint32_t step = 0; step < total_steps; ++step) {
    if (step >= options.burn_in &&
        (step - options.burn_in) % options.test_stride == 0 &&
        InClockwiseSegment(net.key(current), from, to)) {
      out.found = true;
      break;
    }
    if (alive.empty()) break;
    const PeerId proposal =
        alive[static_cast<size_t>(rng->UniformInt(alive.size()))];
    alive_walk_neighbors(proposal, &scratch, &proposal_alive);
    ++out.steps;
    if (proposal_alive.empty()) continue;
    const double accept = std::max(
        options.mh_floor, static_cast<double>(alive.size()) /
                              static_cast<double>(proposal_alive.size()));
    if (rng->NextDouble() < accept) {
      current = proposal;
      alive.swap(proposal_alive);
      if (options.visit_trace != nullptr) {
        options.visit_trace->push_back(current);
      }
    }
  }
  out.current = current;
  return out;
}

/// Invokes fn(neighbor) over `id`'s undirected gossip neighborhood in
/// exactly NetworkView::AppendWalkNeighbors order — ring successor,
/// predecessor when distinct, the CSR out-link row, then the in-link
/// row — without materializing a vector. Mirrors the route steppers'
/// ForEachNeighbor in routing/csr_stepper.cc, plus the in-links walks
/// need for symmetry.
template <typename Fn>
inline void ForEachWalkNeighbor(const TopologySnapshot& snap, PeerId id,
                                Fn&& fn) {
  const Ring& ring = snap.ring();
  const size_t rn = ring.size();
  const uint32_t pos = snap.ring_pos(id);
  if (rn >= 2 && pos != TopologySnapshot::kNotOnRing) {
    const PeerId succ = ring.at((pos + 1) % rn).id;
    const PeerId pred = ring.at((pos + rn - 1) % rn).id;
    fn(succ);
    if (pred != succ) fn(pred);
  }
  for (PeerId target : snap.OutLinks(id)) fn(target);
  for (PeerId source : snap.InLinks(id)) fn(source);
}

size_t CountAliveWalkNeighbors(const TopologySnapshot& snap, PeerId id) {
  const uint8_t* alive = snap.alive_data();
  size_t count = 0;
  ForEachWalkNeighbor(snap, id, [&](PeerId n) { count += alive[n]; });
  return count;
}

/// The k-th (0-based) alive walk neighbor; precondition k < count.
PeerId KthAliveWalkNeighbor(const TopologySnapshot& snap, PeerId id,
                            size_t k) {
  const uint8_t* alive = snap.alive_data();
  PeerId picked = id;
  size_t seen = 0;
  ForEachWalkNeighbor(snap, id, [&](PeerId n) {
    if (!alive[n]) return;
    if (seen == k) picked = n;
    ++seen;
  });
  return picked;
}

/// Snapshot-backend walk: the same walk as WalkGeneric — same draws,
/// same acceptance arithmetic, same visited sequence (the per-walk
/// lockstep test holds the two line-equivalent) — but iterating the
/// frozen CSR rows in place instead of filtering materialized neighbor
/// vectors per hop. The uniform pick needs only (count, k-th element),
/// and the MH correction only the two neighborhood sizes, so no vector
/// is ever built.
WalkOutcome WalkCsr(const TopologySnapshot& snap, PeerId origin, KeyId from,
                    KeyId to, const RandomWalkOptions& options, Rng* rng) {
  WalkOutcome out;
  const KeyId* keys = snap.keys_data();
  PeerId current = origin;
  if (options.visit_trace != nullptr) options.visit_trace->push_back(current);
  const uint32_t total_steps = options.burn_in + options.max_walk_steps;
  size_t current_degree = CountAliveWalkNeighbors(snap, current);
  for (uint32_t step = 0; step < total_steps; ++step) {
    if (step >= options.burn_in &&
        (step - options.burn_in) % options.test_stride == 0 &&
        InClockwiseSegment(keys[current], from, to)) {
      out.found = true;
      break;
    }
    if (current_degree == 0) break;
    const PeerId proposal = KthAliveWalkNeighbor(
        snap, current,
        static_cast<size_t>(rng->UniformInt(current_degree)));
    const size_t proposal_degree = CountAliveWalkNeighbors(snap, proposal);
    ++out.steps;
    if (proposal_degree == 0) continue;
    const double accept = std::max(
        options.mh_floor, static_cast<double>(current_degree) /
                              static_cast<double>(proposal_degree));
    if (rng->NextDouble() < accept) {
      current = proposal;
      current_degree = proposal_degree;
      if (options.visit_trace != nullptr) {
        options.visit_trace->push_back(current);
      }
    }
  }
  out.current = current;
  return out;
}

}  // namespace

Result<SegmentSample> RandomWalkSegmentSampler::SampleInSegment(
    NetworkView net, PeerId origin, KeyId from, KeyId to,
    Rng* rng) const {
  const size_t count = net.ring().CountInSegment(from, to);
  if (count == 0) {
    return Status::Error("random-walk sampler: empty segment");
  }
  if (count <= options_.successor_list_cutoff) {
    // Successor-list path: enumerate the segment (one message per peer)
    // and pick uniformly. The ring index is shared by both backends.
    const auto peer = net.ring().NthInSegment(
        from, to, static_cast<size_t>(rng->UniformInt(count)));
    if (!peer.has_value()) {
      return Status::Error("random-walk sampler: ring index out of sync");
    }
    return SegmentSample{*peer, count};
  }
  // Rejection walk: the frozen-snapshot backend takes the CSR in-place
  // path, the live backend the generic one; outcomes are identical.
  const WalkOutcome walk =
      net.snapshot() != nullptr
          ? WalkCsr(*net.snapshot(), origin, from, to, options_, rng)
          : WalkGeneric(net, origin, from, to, options_, rng);
  if (walk.found) return SegmentSample{walk.current, walk.steps};
  uint64_t steps = walk.steps;
  // Fallback range walk: route to a uniformly random key inside the
  // segment, then de-bias the gap-weighted landing by hopping a random
  // number of clockwise successors (staying inside the segment). Over a
  // snapshot the route rides the CSR steppers automatically.
  const double span = static_cast<double>(ClockwiseDistance(from, to)) /
                      18446744073709551616.0;
  const KeyId probe =
      KeyId::FromRaw(from.raw + KeyId::FromUnit(rng->NextDouble() * span).raw);
  const RouteResult route = GreedyRouter().Route(net, walk.current, probe);
  steps += route.hops + route.wasted;
  PeerId landed = route.terminal;
  if (!InClockwiseSegment(net.key(landed), from, to)) {
    // The owner of the probe key can sit just outside a sparse segment;
    // snap to the segment's first clockwise peer.
    const auto first = net.ring().SuccessorOfKey(from);
    if (!first.has_value() ||
        !InClockwiseSegment(net.key(*first), from, to)) {
      return Status::Error("random-walk sampler: segment unreachable");
    }
    landed = *first;
    ++steps;
  }
  const uint32_t spread = std::max(1u, options_.fallback_spread);
  uint32_t hops = static_cast<uint32_t>(rng->UniformInt(spread));
  for (; hops > 0; --hops) {
    const auto next = net.SuccessorOf(landed);
    if (!next.has_value() ||
        !InClockwiseSegment(net.key(*next), from, to)) {
      break;
    }
    landed = *next;
    ++steps;
  }
  return SegmentSample{landed, steps};
}

}  // namespace oscar

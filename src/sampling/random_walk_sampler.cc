#include "sampling/random_walk_sampler.h"

#include <algorithm>

#include "routing/greedy_router.h"

namespace oscar {

Result<SegmentSample> RandomWalkSegmentSampler::SampleInSegment(
    NetworkView net, PeerId origin, KeyId from, KeyId to,
    Rng* rng) const {
  const size_t count = net.ring().CountInSegment(from, to);
  if (count == 0) {
    return Status::Error("random-walk sampler: empty segment");
  }
  if (count <= options_.successor_list_cutoff) {
    // Successor-list path: enumerate the segment (one message per peer)
    // and pick uniformly.
    const auto peer = net.ring().NthInSegment(
        from, to, static_cast<size_t>(rng->UniformInt(count)));
    if (!peer.has_value()) {
      return Status::Error("random-walk sampler: ring index out of sync");
    }
    return SegmentSample{*peer, count};
  }
  uint64_t steps = 0;
  PeerId current = origin;
  std::vector<PeerId> scratch;
  std::vector<PeerId> alive;
  std::vector<PeerId> proposal_alive;
  const auto alive_walk_neighbors = [&net](PeerId id,
                                           std::vector<PeerId>* scratch_vec,
                                           std::vector<PeerId>* out) {
    scratch_vec->clear();
    net.AppendWalkNeighbors(id, scratch_vec);
    out->clear();
    for (PeerId n : *scratch_vec) {
      if (net.alive(n)) out->push_back(n);
    }
  };
  const uint32_t total_steps = options_.burn_in + options_.max_walk_steps;
  // Degree-corrected (Metropolis-Hastings, clamped) random walk over the
  // undirected gossip graph; mixes in O(log N) on a small world.
  // Membership is tested at stride intervals only — testing every step
  // would bias samples toward the segment boundary nearest the origin.
  alive_walk_neighbors(current, &scratch, &alive);
  for (uint32_t step = 0; step < total_steps; ++step) {
    if (step >= options_.burn_in &&
        (step - options_.burn_in) % options_.test_stride == 0 &&
        InClockwiseSegment(net.key(current), from, to)) {
      return SegmentSample{current, steps};
    }
    if (alive.empty()) break;
    const PeerId proposal =
        alive[static_cast<size_t>(rng->UniformInt(alive.size()))];
    alive_walk_neighbors(proposal, &scratch, &proposal_alive);
    ++steps;
    if (proposal_alive.empty()) continue;
    const double accept = std::max(
        options_.mh_floor, static_cast<double>(alive.size()) /
                               static_cast<double>(proposal_alive.size()));
    if (rng->NextDouble() < accept) {
      current = proposal;
      alive.swap(proposal_alive);
    }
  }
  // Fallback range walk: route to a uniformly random key inside the
  // segment, then de-bias the gap-weighted landing by hopping a random
  // number of clockwise successors (staying inside the segment).
  const double span = static_cast<double>(ClockwiseDistance(from, to)) /
                      18446744073709551616.0;
  const KeyId probe =
      KeyId::FromRaw(from.raw + KeyId::FromUnit(rng->NextDouble() * span).raw);
  const RouteResult route = GreedyRouter().Route(net, current, probe);
  steps += route.hops + route.wasted;
  PeerId landed = route.terminal;
  if (!InClockwiseSegment(net.key(landed), from, to)) {
    // The owner of the probe key can sit just outside a sparse segment;
    // snap to the segment's first clockwise peer.
    const auto first = net.ring().SuccessorOfKey(from);
    if (!first.has_value() ||
        !InClockwiseSegment(net.key(*first), from, to)) {
      return Status::Error("random-walk sampler: segment unreachable");
    }
    landed = *first;
    ++steps;
  }
  const uint32_t spread = std::max(1u, options_.fallback_spread);
  uint32_t hops = static_cast<uint32_t>(rng->UniformInt(spread));
  for (; hops > 0; --hops) {
    const auto next = net.SuccessorOf(landed);
    if (!next.has_value() ||
        !InClockwiseSegment(net.key(*next), from, to)) {
      break;
    }
    landed = *next;
    ++steps;
  }
  return SegmentSample{landed, steps};
}

}  // namespace oscar

// Network-size estimation strategies. Oscar only consumes
// ceil(log2(N-hat)) — the partition count — so even crude estimators
// barely move routing quality (ablation X6 quantifies this).

#ifndef OSCAR_SAMPLING_SIZE_ESTIMATOR_H_
#define OSCAR_SAMPLING_SIZE_ESTIMATOR_H_

#include <memory>
#include <string>

#include "core/network_view.h"
#include "core/rng.h"

namespace oscar {

class SizeEstimator {
 public:
  virtual ~SizeEstimator() = default;
  /// Estimated number of alive peers, as seen from `origin`. Returns at
  /// least 1.
  virtual double Estimate(NetworkView net, PeerId origin,
                          Rng* rng) const = 0;
  virtual std::string name() const = 0;
};

using SizeEstimatorPtr = std::shared_ptr<const SizeEstimator>;

/// Ground truth (the paper's baseline assumption).
class OracleSizeEstimator : public SizeEstimator {
 public:
  double Estimate(NetworkView net, PeerId origin,
                  Rng* rng) const override;
  std::string name() const override { return "oracle"; }
};

/// Chord-style estimator: N-hat = window / (total key-space span of the
/// `window` successor gaps after the origin). Locally biased under
/// skewed key distributions — exactly the failure mode X6 probes.
class GapSizeEstimator : public SizeEstimator {
 public:
  explicit GapSizeEstimator(uint32_t window) : window_(window) {}
  double Estimate(NetworkView net, PeerId origin,
                  Rng* rng) const override;
  std::string name() const override;

 private:
  uint32_t window_;
};

}  // namespace oscar

#endif  // OSCAR_SAMPLING_SIZE_ESTIMATOR_H_

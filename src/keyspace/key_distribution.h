// Key distributions: how peer identifiers (and query keys) are spread
// over the unit ring. The paper's point is precisely that realistic
// distributions are NOT uniform, so this is a first-class strategy.

#ifndef OSCAR_KEYSPACE_KEY_DISTRIBUTION_H_
#define OSCAR_KEYSPACE_KEY_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/key_id.h"
#include "core/rng.h"

namespace oscar {

class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;
  virtual KeyId Sample(Rng* rng) const = 0;
  virtual std::string name() const = 0;
};

using KeyDistributionPtr = std::shared_ptr<KeyDistribution>;

/// Uniform keys — the assumption classic DHTs bake in.
class UniformKeyDistribution : public KeyDistribution {
 public:
  KeyId Sample(Rng* rng) const override {
    return KeyId::FromUnit(rng->NextDouble());
  }
  std::string name() const override { return "uniform"; }
};

/// Extreme skew: almost all keys fall into a handful of very narrow
/// clusters (plus a thin uniform background). Breaks key-space-uniform
/// finger constructions completely.
class ClusteredKeyDistribution : public KeyDistribution {
 public:
  ClusteredKeyDistribution();
  KeyId Sample(Rng* rng) const override;
  std::string name() const override { return "clustered"; }

 private:
  struct Cluster {
    double center;
    double width;
    double weight;  // Cumulative for inverse-CDF selection.
  };
  std::vector<Cluster> clusters_;
  double background_;  // Probability mass of the uniform background.
};

}  // namespace oscar

#endif  // OSCAR_KEYSPACE_KEY_DISTRIBUTION_H_

// A Gnutella-trace-like key distribution: heavily skewed but smooth-ish,
// modeled as a mixture of power-law hotspots over the ring, mimicking
// hashed identifiers of a real file-sharing workload (the distribution
// the paper grows its Oscar networks under).

#ifndef OSCAR_KEYSPACE_GNUTELLA_DISTRIBUTION_H_
#define OSCAR_KEYSPACE_GNUTELLA_DISTRIBUTION_H_

#include <vector>

#include "common/status.h"
#include "keyspace/key_distribution.h"

namespace oscar {

class GnutellaKeyDistribution : public KeyDistribution {
 public:
  /// Builds the canonical instance used by the harnesses.
  static Result<GnutellaKeyDistribution> Make();

  KeyId Sample(Rng* rng) const override;
  std::string name() const override { return "gnutella"; }

 private:
  struct Component {
    double start;        // Segment start on the ring.
    double span;         // Segment width.
    double exponent;     // Density within the segment ~ x^exponent.
    double cum_weight;   // Cumulative selection weight.
  };
  explicit GnutellaKeyDistribution(std::vector<Component> components);

  std::vector<Component> components_;
};

}  // namespace oscar

#endif  // OSCAR_KEYSPACE_GNUTELLA_DISTRIBUTION_H_

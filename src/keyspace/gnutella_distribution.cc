#include "keyspace/gnutella_distribution.h"

#include <cmath>

namespace oscar {

GnutellaKeyDistribution::GnutellaKeyDistribution(
    std::vector<Component> components)
    : components_(std::move(components)) {}

Result<GnutellaKeyDistribution> GnutellaKeyDistribution::Make() {
  // A handful of popularity regions of very different density. Within a
  // segment of width `span`, mass is drawn as start + span * u^exponent:
  // exponent > 1 front-loads the segment (power-law pile-up), exponent
  // == 1 is locally uniform. Roughly half the population ends up in
  // ~5% of the ring, matching the qualitative skew of Gnutella traces.
  std::vector<Component> components = {
      {0.02, 0.0030, 3.0, 0.24},  // Dense pile-up.
      {0.13, 0.0300, 2.0, 0.42},  // Secondary hotspot.
      {0.30, 0.0008, 1.0, 0.58},  // Very dense narrow band.
      {0.47, 0.1200, 2.5, 0.76},  // Broad skewed region.
      {0.70, 0.0015, 1.0, 0.90},  // Another narrow band.
      {0.00, 1.0000, 1.0, 1.00},  // Uniform background (10%).
  };
  if (components.back().cum_weight != 1.0) {
    return Status::Error("gnutella component weights must sum to 1");
  }
  return GnutellaKeyDistribution(std::move(components));
}

KeyId GnutellaKeyDistribution::Sample(Rng* rng) const {
  const double pick = rng->NextDouble();
  for (const Component& c : components_) {
    if (pick <= c.cum_weight) {
      const double u = std::pow(rng->NextDouble(), c.exponent);
      return KeyId::FromUnit(c.start + c.span * u);
    }
  }
  return KeyId::FromUnit(rng->NextDouble());
}

}  // namespace oscar

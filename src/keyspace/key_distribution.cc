#include "keyspace/key_distribution.h"

namespace oscar {

ClusteredKeyDistribution::ClusteredKeyDistribution() : background_(0.02) {
  // Five narrow hotspots of unequal popularity. Widths are a few 1e-4 of
  // the ring, so at simulated sizes hundreds of peers share a span no
  // fixed key-space finger can resolve.
  const double centers[] = {0.08, 0.21, 0.45, 0.60, 0.83};
  const double widths[] = {2e-4, 1e-4, 4e-4, 1e-4, 2e-4};
  const double weights[] = {0.30, 0.15, 0.25, 0.10, 0.18};
  double cumulative = 0.0;
  for (int i = 0; i < 5; ++i) {
    cumulative += weights[i];
    clusters_.push_back(Cluster{centers[i], widths[i], cumulative});
  }
}

KeyId ClusteredKeyDistribution::Sample(Rng* rng) const {
  const double pick = rng->NextDouble();
  if (pick >= 1.0 - background_) {
    return KeyId::FromUnit(rng->NextDouble());
  }
  const double scaled = pick / (1.0 - background_) *
                        clusters_.back().weight;
  for (const Cluster& cluster : clusters_) {
    if (scaled <= cluster.weight) {
      const double offset = (rng->NextDouble() - 0.5) * cluster.width;
      return KeyId::FromUnit(cluster.center + offset);
    }
  }
  return KeyId::FromUnit(rng->NextDouble());
}

}  // namespace oscar

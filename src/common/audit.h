// Runtime invariant auditing, behind the OSCAR_AUDIT env knob.
//
// The repo's determinism tests catch *divergence* (two runs disagree)
// but not *corruption that both runs share* — a degree counter drifting
// from its slab row, a reciprocity break, a delta restore healing into
// something subtly unlike the full restore. OSCAR_AUDIT() turns the
// structural contracts into machine-checked assertions that run inside
// the real pipelines (growth checkpoints, snapshot freezes, delta
// restores) at the operator's request:
//
//   OSCAR_AUDIT=1 ./build/oscar_sim baseline        # audited run
//   OSCAR_AUDIT=1 ctest --test-dir build            # audited suite
//
// Audits default OFF — the hot paths pay one cached-bool branch per
// audit point, nothing else. A failed audit prints the violated
// condition with its context and aborts, so sanitizer CI jobs (which
// run the smoke harnesses with OSCAR_AUDIT=1) fail loudly rather than
// carrying corrupted state into a green run. The deep checks live on
// the audited classes themselves as Status-returning methods
// (Network::CheckInvariants, TopologySnapshot::Validate) so tests can
// exercise detection without dying.

#ifndef OSCAR_COMMON_AUDIT_H_
#define OSCAR_COMMON_AUDIT_H_

#include <string>

namespace oscar {

/// True when the environment opts into runtime invariant audits
/// (OSCAR_AUDIT=1, also accepts "true"/"on"). Resolved once, cached —
/// safe and cheap to call from any thread after first use.
bool AuditEnabled();

/// Test hook: overrides the cached env decision. Returns the previous
/// value. Pass-through for audit_test, which must exercise both sides
/// without mutating the process environment.
bool SetAuditEnabledForTest(bool enabled);

/// Reports a failed audit (condition text + call-site context) to
/// stderr and aborts the process.
[[noreturn]] void AuditFail(const char* file, int line, const char* cond,
                            const std::string& detail);

}  // namespace oscar

/// Checks `cond` when audits are enabled; on violation prints the
/// condition, `detail` (any expression convertible to std::string), and
/// the call site, then aborts. Compiled in unconditionally — the
/// disabled cost is one predictable branch on a cached bool, and audit
/// points sit at checkpoint/freeze granularity, never inside per-hop
/// loops.
#define OSCAR_AUDIT(cond, detail)                                     \
  do {                                                                \
    if (::oscar::AuditEnabled() && !(cond)) {                         \
      ::oscar::AuditFail(__FILE__, __LINE__, #cond, (detail));        \
    }                                                                 \
  } while (false)

#endif  // OSCAR_COMMON_AUDIT_H_

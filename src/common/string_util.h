// Formatting helpers used by the metrics tables and bench harnesses.

#ifndef OSCAR_COMMON_STRING_UTIL_H_
#define OSCAR_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>

namespace oscar {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Fixed-point rendering with `digits` decimals, e.g. FormatDouble(3.14159, 2)
/// == "3.14". Negative zero is normalized to "0".
std::string FormatDouble(double value, int digits);

/// Renders a fraction as a percentage, e.g. FormatPercent(0.853) == "85.3%".
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace oscar

#endif  // OSCAR_COMMON_STRING_UTIL_H_

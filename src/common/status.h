// Lightweight error propagation used throughout the oscar:: library.
//
// `Status` carries ok/error + a message; `Result<T>` is a Status-or-value
// union supporting the `r.ok() / r.status() / r.value()` idiom the bench
// harnesses are written against.

#ifndef OSCAR_COMMON_STATUS_H_
#define OSCAR_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace oscar {

class Status {
 public:
  Status() = default;  // OK.
  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << (status.ok() ? "OK" : status.message());
}

template <typename T>
class Result {
 public:
  // Implicit conversions so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from an OK status");
    if (status_.ok()) status_ = Status::Error("unknown error");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace oscar

#endif  // OSCAR_COMMON_STATUS_H_

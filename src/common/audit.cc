#include "common/audit.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace oscar {
namespace {

bool ReadEnvKnob() {
  const char* value = std::getenv("OSCAR_AUDIT");
  if (value == nullptr) return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
         std::strcmp(value, "on") == 0;
}

// Cached decision. Mutable only through SetAuditEnabledForTest, which
// tests call before spawning any worker threads.
bool g_audit_enabled = ReadEnvKnob();

}  // namespace

bool AuditEnabled() { return g_audit_enabled; }

bool SetAuditEnabledForTest(bool enabled) {
  const bool previous = g_audit_enabled;
  g_audit_enabled = enabled;
  return previous;
}

[[noreturn]] void AuditFail(const char* file, int line, const char* cond,
                            const std::string& detail) {
  std::fprintf(stderr, "OSCAR_AUDIT violation at %s:%d\n  check: %s\n", file,
               line, cond);
  if (!detail.empty()) {
    std::fprintf(stderr, "  detail: %s\n", detail.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace oscar

#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>

#include "common/string_util.h"

namespace oscar {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddNumericRow(const std::string& label,
                                 const std::vector<double>& values,
                                 int digits) {
  std::vector<std::string> row = {label};
  row.reserve(values.size() + 1);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i])) << cell
         << " | ";
    }
    os << "\n";
  };

  size_t total = 1;
  for (size_t w : widths) total += w + 3;
  os << "\n-- " << title_ << " --\n";
  if (!header_.empty()) {
    print_row(header_);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) print_row(row);
}

}  // namespace oscar

// A minimal worker pool for embarrassingly parallel, determinism-
// critical fan-out: ParallelFor runs fn(i) for every i in [0, count)
// on up to `threads` OS threads, with workers pulling indices from a
// shared atomic counter. Callers own determinism by writing results
// into per-index slots and reducing them in index order afterwards —
// the pool guarantees only that every index runs exactly once.
//
// Workers are spawned per call rather than parked on a queue: the unit
// of work here is a checkpoint-scale batch (thousands of peers, each
// costing ~100+ sampled walk steps), so thread start-up is noise. The
// thread count comes from the caller, typically resolved once via
// ThreadCountFromEnv() (OSCAR_THREADS, default 1 — single-threaded
// unless the operator opts in).

#ifndef OSCAR_COMMON_THREAD_POOL_H_
#define OSCAR_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace oscar {

/// Runs fn(i) for every i in [0, count), using up to `threads` OS
/// threads (the calling thread counts as one). threads <= 1 runs
/// inline with zero overhead. `fn` must be safe to invoke concurrently
/// from distinct threads on distinct indices; no index runs twice.
void ParallelFor(uint32_t threads, size_t count,
                 const std::function<void(size_t)>& fn);

/// Worker count from OSCAR_THREADS. Unset, empty, non-numeric, signed,
/// zero, or above 256 all mean 1 (the deterministic-by-construction
/// default; the 256 ceiling keeps a typo from fork-bombing the host).
uint32_t ThreadCountFromEnv();

}  // namespace oscar

#endif  // OSCAR_COMMON_THREAD_POOL_H_

// A minimal worker pool for embarrassingly parallel, determinism-
// critical fan-out: ParallelFor runs fn(i) for every i in [0, count)
// on up to `threads` OS threads, with workers pulling indices from a
// shared atomic counter. Callers own determinism by writing results
// into per-index slots and reducing them in index order afterwards —
// the pool guarantees only that every index runs exactly once.
//
// Workers are spawned per call rather than parked on a queue: the unit
// of work here is a checkpoint-scale batch (thousands of peers, each
// costing ~100+ sampled walk steps), so thread start-up is noise. The
// thread count comes from the caller, typically resolved once via
// ThreadCountFromEnv() (OSCAR_THREADS, default 1 — single-threaded
// unless the operator opts in).

#ifndef OSCAR_COMMON_THREAD_POOL_H_
#define OSCAR_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace oscar {

/// Live progress gauges over one ParallelFor batch: how many indices
/// have been handed to workers, how many have finished, and therefore
/// how deep the remaining queue is and how much work is in flight right
/// now. Admission-control layers (serve/admission.h) consume exactly
/// these two numbers — a wall-clock deployment reads them off the pool
/// here, while the deterministic serving simulator feeds the same
/// policy interface modeled virtual-time depths instead.
///
/// Reset() is called by ParallelFor at batch start; reads are safe from
/// any thread during and after the batch (monotonic counters, relaxed
/// ordering — gauges, not synchronization).
class PoolGauge {
 public:
  size_t total() const { return total_; }
  size_t Dispatched() const {
    // Workers over-fetch one index each when the counter runs dry;
    // clamp so the gauge never reports phantom work.
    return std::min(dispatched_.load(std::memory_order_relaxed), total_);
  }
  size_t Completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Indices currently being executed by some worker.
  size_t InFlight() const {
    const size_t done = Completed();
    const size_t out = Dispatched();
    return out > done ? out - done : 0;
  }
  /// Indices not yet handed to any worker.
  size_t QueueDepth() const { return total_ - Dispatched(); }

 private:
  friend void ParallelForWorkers(
      uint32_t, size_t, const std::function<void(uint32_t, size_t)>&,
      PoolGauge*);

  void Reset(size_t total) {
    total_ = total;
    dispatched_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
  }

  size_t total_ = 0;
  std::atomic<size_t> dispatched_{0};
  std::atomic<size_t> completed_{0};
};

/// Runs fn(i) for every i in [0, count), using up to `threads` OS
/// threads (the calling thread counts as one). threads <= 1 runs
/// inline with zero overhead. `fn` must be safe to invoke concurrently
/// from distinct threads on distinct indices; no index runs twice.
void ParallelFor(uint32_t threads, size_t count,
                 const std::function<void(size_t)>& fn);

/// As ParallelFor, but fn(worker, i) also receives the dense index of
/// the worker thread executing it (0 = the calling thread, worker <
/// threads). The worker index is stable for the whole batch, which is
/// what per-worker accumulator shards (e.g. serve/latency_recorder's
/// histograms) key on — each shard is written by exactly one thread,
/// no locks, and the shards merge deterministically afterwards.
/// `gauge`, when non-null, is reset and then tracks the batch live.
void ParallelForWorkers(uint32_t threads, size_t count,
                        const std::function<void(uint32_t, size_t)>& fn,
                        PoolGauge* gauge = nullptr);

/// Worker count from OSCAR_THREADS. Unset, empty, non-numeric, signed,
/// zero, or above 256 all mean 1 (the deterministic-by-construction
/// default; the 256 ceiling keeps a typo from fork-bombing the host).
uint32_t ThreadCountFromEnv();

}  // namespace oscar

#endif  // OSCAR_COMMON_THREAD_POOL_H_

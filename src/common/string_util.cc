#include "common/string_util.h"

#include <cmath>
#include <iomanip>

namespace oscar {

std::string FormatDouble(double value, int digits) {
  if (value == 0.0) value = 0.0;  // Collapse -0.0.
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

}  // namespace oscar

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace oscar {

RunningStats::RunningStats()
    : count_(0),
      mean_(0.0),
      m2_(0.0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::Push(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::Max() const { return count_ == 0 ? 0.0 : max_; }

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::max(0.0, std::min(100.0, pct));
  const double pos = clamped / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

namespace {

// Bucket count for the fixed [kMinValue, kMaxValue) layout, plus an
// underflow bucket at index 0 and an overflow bucket at the end.
size_t LogBucketCount() {
  const double octaves =
      std::log2(LogHistogram::kMaxValue / LogHistogram::kMinValue);
  return static_cast<size_t>(
             std::ceil(octaves * LogHistogram::kBucketsPerOctave)) +
         2;
}

}  // namespace

LogHistogram::LogHistogram() : buckets_(LogBucketCount(), 0) {}

size_t LogHistogram::BucketOf(double value) const {
  if (!(value >= kMinValue)) return 0;  // Underflow; NaN lands here too.
  if (value >= kMaxValue) return buckets_.size() - 1;
  const double octave = std::log2(value / kMinValue);
  const size_t index =
      1 + static_cast<size_t>(octave * kBucketsPerOctave);
  return std::min(index, buckets_.size() - 2);
}

double LogHistogram::LowerBound(size_t bucket) const {
  if (bucket == 0) return 0.0;
  return kMinValue * std::exp2(static_cast<double>(bucket - 1) /
                               kBucketsPerOctave);
}

double LogHistogram::UpperBound(size_t bucket) const {
  if (bucket == 0) return kMinValue;
  if (bucket >= buckets_.size() - 1) return max_;
  return kMinValue *
         std::exp2(static_cast<double>(bucket) / kBucketsPerOctave);
}

void LogHistogram::Record(double value) {
  ++buckets_[BucketOf(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LogHistogram::Min() const { return count_ == 0 ? 0.0 : min_; }

double LogHistogram::Max() const { return count_ == 0 ? 0.0 : max_; }

double LogHistogram::Percentile(double pct) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::max(0.0, std::min(100.0, pct));
  // Same rank convention as the exact Percentile(): position in
  // [0, count - 1], interpolated. The extreme ranks are exact — the
  // recorded min/max, not a bucket midpoint (this also keeps the
  // under/overflow buckets' synthetic bounds out of the digest).
  const double pos =
      clamped / 100.0 * static_cast<double>(count_ - 1);
  if (pos <= 0.0) return min_;
  if (pos >= static_cast<double>(count_ - 1)) return max_;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t in_bucket = buckets_[i];
    if (pos < static_cast<double>(seen + in_bucket)) {
      // Fractional position of the target rank inside this bucket.
      const double frac =
          in_bucket == 1
              ? 0.5
              : (pos - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket - 1);
      const double lo = LowerBound(i);
      const double hi = UpperBound(i);
      const double value = lo + (hi - lo) * frac;
      return std::max(min_, std::min(max_, value));
    }
    seen += in_bucket;
  }
  return max_;
}

double Gini(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double cumulative = 0.0, weighted = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    weighted += sorted[i] * static_cast<double>(i + 1);
  }
  if (cumulative <= 0.0) return 0.0;
  const double n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * cumulative) - (n + 1.0) / n;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double cov = 0, vx = 0, vy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace oscar

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace oscar {

RunningStats::RunningStats()
    : count_(0),
      mean_(0.0),
      m2_(0.0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::Push(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::Max() const { return count_ == 0 ? 0.0 : max_; }

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::max(0.0, std::min(100.0, pct));
  const double pos = clamped / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Gini(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double cumulative = 0.0, weighted = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    weighted += sorted[i] * static_cast<double>(i + 1);
  }
  if (cumulative <= 0.0) return 0.0;
  const double n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * cumulative) - (n + 1.0) / n;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double cov = 0, vx = 0, vy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace oscar

// Small statistics helpers shared by the metrics and experiment layers.

#ifndef OSCAR_COMMON_STATS_H_
#define OSCAR_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace oscar {

/// Welford-style accumulator for mean / variance / extrema.
class RunningStats {
 public:
  RunningStats();

  void Push(double x);
  size_t Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double StdDev() const;
  double Min() const;
  double Max() const;

 private:
  size_t count_;
  double mean_;
  double m2_;
  double min_;
  double max_;
};

/// Percentile in [0, 100] by linear interpolation; 0 for empty input.
double Percentile(std::vector<double> values, double pct);

/// Gini coefficient of a non-negative sample; 0 for empty/degenerate input.
double Gini(const std::vector<double>& values);

/// Pearson correlation; 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace oscar

#endif  // OSCAR_COMMON_STATS_H_

// Small statistics helpers shared by the metrics and experiment layers.

#ifndef OSCAR_COMMON_STATS_H_
#define OSCAR_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oscar {

/// Welford-style accumulator for mean / variance / extrema.
class RunningStats {
 public:
  RunningStats();

  void Push(double x);
  size_t Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double StdDev() const;
  double Min() const;
  double Max() const;

 private:
  size_t count_;
  double mean_;
  double m2_;
  double min_;
  double max_;
};

/// Percentile in [0, 100] by linear interpolation; 0 for empty input.
double Percentile(std::vector<double> values, double pct);

/// Fixed-bucket log-scale histogram for positive, latency-like samples.
/// Bucket boundaries grow geometrically (kBucketsPerOctave subdivisions
/// per power of two, ~2.2% relative width), so memory is constant no
/// matter how many samples are recorded and a percentile query costs one
/// pass over the bucket array. Every instance shares the same fixed
/// layout, which makes Merge a plain element-wise add — counts are
/// integers, so a merged histogram is independent of the order (or the
/// thread) the shards were filled in. That order-independence is what
/// lets per-worker shards sum to a byte-stable summary at any worker
/// count.
///
/// Values below kMinValue land in an underflow bucket reported as
/// kMinValue; values at or above kMaxValue land in an overflow bucket
/// reported as the exact recorded maximum. Sum/mean/min/max are tracked
/// exactly; only the percentiles are bucket-quantized.
class LogHistogram {
 public:
  static constexpr double kMinValue = 1e-3;   // 1 microsecond, in ms.
  static constexpr double kMaxValue = 1e6;    // ~17 minutes, in ms.
  static constexpr int kBucketsPerOctave = 32;

  LogHistogram();

  void Record(double value);
  /// Element-wise add of `other`'s buckets and exact accumulators.
  void Merge(const LogHistogram& other);

  uint64_t Count() const { return count_; }
  double Mean() const;
  double Min() const;  // Exact; 0 when empty.
  double Max() const;  // Exact; 0 when empty.

  /// Percentile in [0, 100]: rank-interpolated inside the owning
  /// bucket's geometric bounds, clamped to the exact [Min, Max] so the
  /// extremes never quantize outside the recorded range. 0 when empty.
  double Percentile(double pct) const;

 private:
  size_t BucketOf(double value) const;
  double LowerBound(size_t bucket) const;
  double UpperBound(size_t bucket) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Gini coefficient of a non-negative sample; 0 for empty/degenerate input.
double Gini(const std::vector<double>& values);

/// Pearson correlation; 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace oscar

#endif  // OSCAR_COMMON_STATS_H_

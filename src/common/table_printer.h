// Column-aligned plain-text tables for the bench harnesses.

#ifndef OSCAR_COMMON_TABLE_PRINTER_H_
#define OSCAR_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace oscar {

class TablePrinter {
 public:
  explicit TablePrinter(std::string title);

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Convenience: a row whose first cell is `label` and whose remaining
  /// cells are `values` rendered with `digits` decimals.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values, int digits);
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oscar

#endif  // OSCAR_COMMON_TABLE_PRINTER_H_

#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace oscar {

void ParallelForWorkers(uint32_t threads, size_t count,
                        const std::function<void(uint32_t, size_t)>& fn,
                        PoolGauge* gauge) {
  if (gauge != nullptr) gauge->Reset(count);
  if (count == 0) return;
  const uint32_t workers = static_cast<uint32_t>(
      std::min<size_t>(std::max(1u, threads), count));
  if (workers == 1) {
    for (size_t i = 0; i < count; ++i) {
      if (gauge != nullptr) {
        gauge->dispatched_.fetch_add(1, std::memory_order_relaxed);
      }
      fn(0, i);
      if (gauge != nullptr) {
        gauge->completed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return;
  }
  // Dynamic index stealing: per-index work is highly variable (a walk
  // can hit its stride test early or burn the whole rejection budget),
  // so static striping would leave the fast workers idle.
  std::atomic<size_t> next{0};
  const auto drain = [&](uint32_t worker) {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (gauge != nullptr) {
        gauge->dispatched_.fetch_add(1, std::memory_order_relaxed);
      }
      fn(worker, i);
      if (gauge != nullptr) {
        gauge->completed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> extra;
  extra.reserve(workers - 1);
  for (uint32_t t = 1; t < workers; ++t) {
    extra.emplace_back(drain, t);
  }
  drain(0);  // The calling thread is worker 0.
  for (std::thread& thread : extra) thread.join();
}

void ParallelFor(uint32_t threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  ParallelForWorkers(
      threads, count, [&fn](uint32_t, size_t i) { fn(i); }, nullptr);
}

uint32_t ThreadCountFromEnv() {
  const char* value = std::getenv("OSCAR_THREADS");
  if (value == nullptr || *value == '\0') return 1;
  // strtoul "accepts" a leading minus by wrapping; treat it as garbage
  // instead of 2^64-ish threads.
  if (*value == '-' || *value == '+') return 1;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == nullptr || *end != '\0' || parsed == 0 || parsed > 256ul) {
    return 1;
  }
  return static_cast<uint32_t>(parsed);
}

}  // namespace oscar

#include "trace/columnar_trace.h"

namespace oscar {
namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

}  // namespace

ColumnarTraceWriter::ColumnarTraceWriter(std::ostream* out,
                                         size_t block_capacity)
    : out_(out), block_capacity_(block_capacity == 0 ? 1 : block_capacity) {
  frame_.assign(kOtraceMagic, sizeof(kOtraceMagic));
  PutU32(&frame_, kOtraceVersion);
  out_->write(frame_.data(), static_cast<std::streamsize>(frame_.size()));
}

ColumnarTraceWriter::~ColumnarTraceWriter() { Close(); }

void ColumnarTraceWriter::OnNewString(uint32_t id, const std::string& text) {
  frame_.clear();
  PutU8(&frame_, kOtraceStringTag);
  PutU32(&frame_, id);
  PutU32(&frame_, static_cast<uint32_t>(text.size()));
  frame_.append(text);
  out_->write(frame_.data(), static_cast<std::streamsize>(frame_.size()));
}

void ColumnarTraceWriter::SetScope(uint32_t scope_id) {
  // One scope per block: close out the pending block before switching.
  if (scope_id != scope() && !t_us_.empty()) FlushBlock();
  BasicTraceSink::SetScope(scope_id);
}

void ColumnarTraceWriter::Append(const TraceEvent& event) {
  t_us_.push_back(event.t_us);
  kind_.push_back(static_cast<uint8_t>(event.kind));
  lookup_.push_back(event.lookup);
  peer_.push_back(event.peer);
  to_.push_back(event.to);
  info_.push_back(event.info);
  ++total_events_;
  if (t_us_.size() >= block_capacity_) FlushBlock();
}

void ColumnarTraceWriter::FlushBlock() {
  if (t_us_.empty()) return;
  const uint32_t count = static_cast<uint32_t>(t_us_.size());
  frame_.clear();
  frame_.reserve(9 + count * 25);
  PutU8(&frame_, kOtraceBlockTag);
  PutU32(&frame_, scope());
  PutU32(&frame_, count);
  for (uint64_t v : t_us_) PutU64(&frame_, v);
  for (uint8_t v : kind_) PutU8(&frame_, v);
  for (uint32_t v : lookup_) PutU32(&frame_, v);
  for (uint32_t v : peer_) PutU32(&frame_, v);
  for (uint32_t v : to_) PutU32(&frame_, v);
  for (uint32_t v : info_) PutU32(&frame_, v);
  out_->write(frame_.data(), static_cast<std::streamsize>(frame_.size()));
  t_us_.clear();
  kind_.clear();
  lookup_.clear();
  peer_.clear();
  to_.clear();
  info_.clear();
}

Status ColumnarTraceWriter::Flush() {
  FlushBlock();
  out_->flush();
  if (!*out_) return Status::Error("otrace: stream write failed");
  return Status::Ok();
}

Status ColumnarTraceWriter::Close() {
  if (closed_) return Status::Ok();
  closed_ = true;
  FlushBlock();
  frame_.clear();
  PutU8(&frame_, kOtraceEndTag);
  PutU64(&frame_, total_events_);
  out_->write(frame_.data(), static_cast<std::streamsize>(frame_.size()));
  out_->flush();
  if (!*out_) return Status::Error("otrace: stream write failed");
  return Status::Ok();
}

}  // namespace oscar

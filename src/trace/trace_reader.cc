#include "trace/trace_reader.h"

#include <fstream>

#include "common/string_util.h"
#include "trace/columnar_trace.h"

namespace oscar {
namespace {

/// Bounds-checked little-endian cursor over the whole file image.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool done() const { return pos_ >= size_; }
  size_t pos() const { return pos_; }

  bool Take(size_t n, const char** out) {
    if (size_ - pos_ < n) return false;
    *out = data_ + pos_;
    pos_ += n;
    return true;
  }

  bool U8(uint8_t* out) {
    const char* p;
    if (!Take(1, &p)) return false;
    *out = static_cast<uint8_t>(*p);
    return true;
  }

  bool U32(uint32_t* out) {
    const char* p;
    if (!Take(4, &p)) return false;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
    *out = v;
    return true;
  }

  bool U64(uint64_t* out) {
    const char* p;
    if (!Take(8, &p)) return false;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
    *out = v;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& what, size_t at) {
  return Status::Error(StrCat("otrace: ", what, " at byte ", at));
}

}  // namespace

Result<TraceContents> ReadTrace(std::istream& in) {
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Error("otrace: read failed");
  }
  Cursor cursor(image.data(), image.size());

  const char* magic;
  uint32_t version = 0;
  if (!cursor.Take(sizeof(kOtraceMagic), &magic) ||
      std::string(magic, sizeof(kOtraceMagic)) !=
          std::string(kOtraceMagic, sizeof(kOtraceMagic))) {
    return Status::Error("otrace: bad magic (not an .otrace file?)");
  }
  if (!cursor.U32(&version) || version != kOtraceVersion) {
    return Status::Error(StrCat("otrace: unsupported version ", version,
                                " (want ", kOtraceVersion, ")"));
  }

  TraceContents contents;
  // Id 0 is the pre-interned empty scope (BasicTraceSink's default);
  // the writer never emits a string frame for it.
  contents.strings.emplace_back();
  bool saw_end = false;
  uint64_t declared_total = 0;
  while (!cursor.done()) {
    if (saw_end) return Corrupt("frame after end frame", cursor.pos());
    uint8_t tag = 0;
    cursor.U8(&tag);  // done() was false, so one byte exists.
    if (tag == kOtraceStringTag) {
      uint32_t id = 0, len = 0;
      const char* bytes;
      if (!cursor.U32(&id) || !cursor.U32(&len) || !cursor.Take(len, &bytes)) {
        return Corrupt("truncated string frame", cursor.pos());
      }
      // Ids are assigned densely in intern order by the writer.
      if (id != contents.strings.size()) {
        return Corrupt(StrCat("out-of-order string id ", id), cursor.pos());
      }
      contents.strings.emplace_back(bytes, len);
    } else if (tag == kOtraceBlockTag) {
      uint32_t scope = 0, count = 0;
      if (!cursor.U32(&scope) || !cursor.U32(&count)) {
        return Corrupt("truncated block header", cursor.pos());
      }
      if (scope >= contents.strings.size()) {
        return Corrupt(StrCat("undefined scope id ", scope), cursor.pos());
      }
      const size_t base = contents.records.size();
      contents.records.resize(base + count);
      for (size_t i = 0; i < count; ++i) {
        contents.records[base + i].scope = scope;
      }
      // Columns in the fixed file order; each loops over the block.
      for (size_t i = 0; i < count; ++i) {
        if (!cursor.U64(&contents.records[base + i].event.t_us)) {
          return Corrupt("truncated t_us column", cursor.pos());
        }
      }
      for (size_t i = 0; i < count; ++i) {
        uint8_t kind = 0;
        if (!cursor.U8(&kind)) {
          return Corrupt("truncated kind column", cursor.pos());
        }
        if (kind >= static_cast<uint8_t>(TraceKind::kCount)) {
          return Corrupt(StrCat("unknown event kind ", kind), cursor.pos());
        }
        contents.records[base + i].event.kind = static_cast<TraceKind>(kind);
      }
      for (size_t i = 0; i < count; ++i) {
        if (!cursor.U32(&contents.records[base + i].event.lookup)) {
          return Corrupt("truncated lookup column", cursor.pos());
        }
      }
      for (size_t i = 0; i < count; ++i) {
        if (!cursor.U32(&contents.records[base + i].event.peer)) {
          return Corrupt("truncated peer column", cursor.pos());
        }
      }
      for (size_t i = 0; i < count; ++i) {
        if (!cursor.U32(&contents.records[base + i].event.to)) {
          return Corrupt("truncated to column", cursor.pos());
        }
      }
      for (size_t i = 0; i < count; ++i) {
        if (!cursor.U32(&contents.records[base + i].event.info)) {
          return Corrupt("truncated info column", cursor.pos());
        }
      }
      ++contents.blocks;
    } else if (tag == kOtraceEndTag) {
      if (!cursor.U64(&declared_total)) {
        return Corrupt("truncated end frame", cursor.pos());
      }
      saw_end = true;
    } else {
      return Corrupt(StrCat("unknown frame tag ", tag), cursor.pos());
    }
  }
  if (!saw_end) {
    return Status::Error("otrace: missing end frame (truncated file?)");
  }
  if (declared_total != contents.records.size()) {
    return Status::Error(StrCat("otrace: end frame declares ", declared_total,
                                " events but file holds ",
                                contents.records.size()));
  }
  return contents;
}

Result<TraceContents> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(StrCat("otrace: cannot open ", path));
  }
  return ReadTrace(in);
}

}  // namespace oscar

// Reader for the `.otrace` columnar format (see columnar_trace.h for
// the frame layout): rematerializes framed blocks into flat TraceRecord
// rows plus the interned string table, validating magic, version, frame
// tags, event kinds, string references and the end frame's event total
// so a truncated or corrupt file is an error, never silent garbage.

#ifndef OSCAR_TRACE_TRACE_READER_H_
#define OSCAR_TRACE_TRACE_READER_H_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace oscar {

/// One decoded event plus the scope (interned-string id) of the block
/// it came from.
struct TraceRecord {
  TraceEvent event;
  uint32_t scope = 0;
};

struct TraceContents {
  std::vector<std::string> strings;  // Indexed by interned id.
  std::vector<TraceRecord> records;  // In file (= emission) order.
  size_t blocks = 0;

  const std::string& scope_text(const TraceRecord& record) const {
    return strings[record.scope];
  }
};

/// Decodes a whole `.otrace` stream (opened in binary mode).
Result<TraceContents> ReadTrace(std::istream& in);

/// Convenience: opens `path` and decodes it.
Result<TraceContents> ReadTraceFile(const std::string& path);

}  // namespace oscar

#endif  // OSCAR_TRACE_TRACE_READER_H_

#include "trace/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace oscar {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBacklog: return "backlog";
    case TraceKind::kStart: return "start";
    case TraceKind::kForward: return "fwd";
    case TraceKind::kBacktrack: return "back";
    case TraceKind::kStranded: return "stranded";
    case TraceKind::kLost: return "lost";
    case TraceKind::kTimeoutDead: return "timeout_dead";
    case TraceKind::kRetry: return "retry";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kDone: return "done";
    case TraceKind::kFailed: return "failed";
    case TraceKind::kQueueDepth: return "queue_depth";
    case TraceKind::kInFlight: return "in_flight";
    case TraceKind::kServeQueueDepth: return "serve_queue";
    case TraceKind::kServeInFlight: return "serve_busy";
    case TraceKind::kServeDropped: return "serve_dropped";
    case TraceKind::kMaintRound: return "maint_round";
    case TraceKind::kFaultInject: return "fault_inject";
    case TraceKind::kFaultHeal: return "fault_heal";
    case TraceKind::kCount: break;
  }
  return "unknown";
}

uint64_t TraceTimeUs(double t_ms) {
  // Quantize through the exact %.3f rendering the legacy CSV used:
  // snprintf does the decimal rounding, the digits become the integer.
  // This is the one place times turn into integers, so every sink and
  // the reader agree with the old bytes by construction.
  char buf[64];
  const int len = std::snprintf(buf, sizeof(buf), "%.3f", t_ms);
  if (len <= 0 || len >= static_cast<int>(sizeof(buf)) || buf[0] == '-' ||
      (buf[0] < '0' || buf[0] > '9')) {
    return 0;  // Negative/NaN/overflow: virtual time is never any of these.
  }
  uint64_t us = 0;
  for (const char* p = buf; *p != '\0'; ++p) {
    if (*p == '.') continue;
    us = us * 10 + static_cast<uint64_t>(*p - '0');
  }
  return us;
}

std::string TraceTimeMs(uint64_t t_us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", t_us / 1000,
                static_cast<unsigned>(t_us % 1000));
  return buf;
}

uint32_t BasicTraceSink::Intern(const std::string& text) {
  const auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.push_back(text);
  ids_.emplace(text, id);
  OnNewString(id, strings_.back());
  return id;
}

void BasicTraceSink::OnNewString(uint32_t /*id*/,
                                 const std::string& /*text*/) {}

void StringTraceSink::Append(const TraceEvent& event) {
  std::string& out = *out_;
  out.append("t=");
  out.append(TraceTimeMs(event.t_us));
  if (!scope_text().empty()) {
    out.append(" [");
    out.append(scope_text());
    out.append("]");
  }
  out.append(" ");
  out.append(TraceKindName(event.kind));
  if (event.lookup != kTraceNone) {
    out.append(" lookup=");
    out.append(std::to_string(event.lookup));
  }
  if (event.peer != kTraceNone) {
    out.append(" peer=");
    out.append(std::to_string(event.peer));
  }
  if (event.to != kTraceNone) {
    out.append(" to=");
    out.append(std::to_string(event.to));
  }
  out.append(" info=");
  out.append(std::to_string(event.info));
  out.append("\n");
}

CsvTraceSink::CsvTraceSink(std::ostream* out) : out_(out) {
  *out_ << Header();
}

void CsvTraceSink::Append(const TraceEvent& event) {
  std::ostream& out = *out_;
  out << TraceTimeMs(event.t_us) << ',' << scope_text() << ','
      << TraceKindName(event.kind) << ',';
  if (event.lookup != kTraceNone) out << event.lookup;
  out << ',';
  if (event.peer != kTraceNone) out << event.peer;
  out << ',';
  if (event.to != kTraceNone) out << event.to;
  out << ',' << event.info << '\n';
}

Status CsvTraceSink::Flush() {
  out_->flush();
  if (!*out_) return Status::Error("csv trace: stream write failed");
  return Status::Ok();
}

}  // namespace oscar

// Structured event tracing shared by both engines. A trace is a flat
// stream of fixed-width TraceEvents — virtual time quantized to u64
// microseconds, an event kind from a closed u8 enum, and three u32
// id/payload columns — tagged with an interned scenario scope. Sinks
// decide the encoding: the human-readable string sink and the CSV sink
// are thin adapters kept for the determinism tests and the `--csv`
// escape hatch; the columnar writer (columnar_trace.h) is the one that
// survives million-lookup runs.
//
// Instrumentation contract: emitting is guarded at the call site
// (`if (no sink) return;` before any argument is materialized), so a
// detached trace costs one pointer test per would-be event.

#ifndef OSCAR_TRACE_TRACE_H_
#define OSCAR_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace oscar {

/// Closed catalog of trace event kinds. The wire format stores the u8
/// value, so members are append-only: adding kinds is free, reordering
/// or deleting them breaks every `.otrace` file on disk.
enum class TraceKind : uint8_t {
  // Message-engine lookup lifecycle (the legacy CSV rows).
  kBacklog = 0,      // Admission backlog; peer = source.
  kStart = 1,        // Lookup activated; peer = source.
  kForward = 2,      // Hop forward; peer -> to, info = dead probes.
  kBacktrack = 3,    // Hop backtrack; peer -> to, info = dead probes.
  kStranded = 4,     // Message aboard a crashed peer; peer = the peer.
  kLost = 5,         // Transmission lost; peer -> to.
  kTimeoutDead = 6,  // Dead hop discovered by silence; peer = dead, to = resume.
  kRetry = 7,        // Transmission resent; peer -> to, info = attempt.
  kDrop = 8,         // Retry budget exhausted; peer -> to, info = attempts.
  kDone = 9,         // Lookup succeeded; peer = source, info = hops.
  kFailed = 10,      // Lookup failed; peer = source, info = hops.
  // Periodic virtual-time timeline samples (message engine).
  kQueueDepth = 11,  // Per-peer service queue depth; peer = peer, info = depth.
  kInFlight = 12,    // Active lookups; info = count, to = backlog depth.
  // Periodic virtual-time timeline samples (serve sweep, per cell).
  kServeQueueDepth = 13,  // Wait-queue depth; info = depth.
  kServeInFlight = 14,    // Busy service slots; info = count.
  kServeDropped = 15,     // Cumulative refused; info = dropped, to = shed.
  // Self-healing instrumentation (fault injection + maintenance rounds).
  kMaintRound = 16,   // Repair round ran; peer = pruned, to = rebuilt,
                      // info = sampling steps spent.
  kFaultInject = 17,  // FaultPlan fault armed; info = fault index.
  kFaultHeal = 18,    // FaultPlan fault healed; info = fault index.
  kCount,
};

/// The `event` column name for a kind (matches the legacy CSV names for
/// the lookup-lifecycle kinds). Out-of-range kinds yield "unknown".
const char* TraceKindName(TraceKind kind);

/// Sentinel for an absent peer/to/lookup column (rendered empty in CSV;
/// 0 is a real peer id). Real ids are dense indices, far below this.
constexpr uint32_t kTraceNone = 0xffffffffu;

/// One fixed-width trace event. `t_us` is virtual milliseconds
/// quantized by TraceTimeUs, so every sink renders identical times.
struct TraceEvent {
  uint64_t t_us = 0;
  TraceKind kind = TraceKind::kStart;
  uint32_t lookup = kTraceNone;
  uint32_t peer = kTraceNone;
  uint32_t to = kTraceNone;
  uint32_t info = 0;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.t_us == b.t_us && a.kind == b.kind && a.lookup == b.lookup &&
           a.peer == b.peer && a.to == b.to && a.info == b.info;
  }
};

/// Quantizes a virtual time in milliseconds to integer microseconds
/// with exactly printf-%.3f rounding, so rendering the integer back
/// reproduces the legacy FormatDouble(t_ms, 3) bytes.
uint64_t TraceTimeUs(double t_ms);

/// Renders quantized microseconds as the legacy t_ms column ("12.345").
std::string TraceTimeMs(uint64_t t_us);

/// Where trace events go. Implementations are single-threaded — both
/// engines emit from deterministic sequential code.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Interns `text`, returning a stable id (idempotent per sink).
  virtual uint32_t Intern(const std::string& text) = 0;

  /// Sets the scope (scenario / sweep-cell label, by interned id) that
  /// subsequent events are tagged with.
  virtual void SetScope(uint32_t scope_id) = 0;

  virtual void Append(const TraceEvent& event) = 0;

  /// Drains buffered state to the backing store. Writers with framing
  /// may emit a partial block; safe to call repeatedly.
  virtual Status Flush() = 0;
};

/// Shared Intern/SetScope bookkeeping: a string table plus the current
/// scope id. Subclasses render on Append.
class BasicTraceSink : public TraceSink {
 public:
  uint32_t Intern(const std::string& text) override;
  void SetScope(uint32_t scope_id) override { scope_ = scope_id; }
  Status Flush() override { return Status::Ok(); }

 protected:
  const std::string& scope_text() const { return strings_[scope_]; }
  uint32_t scope() const { return scope_; }

  /// Called once when Intern first sees `text` (after it got `id`).
  virtual void OnNewString(uint32_t id, const std::string& text);

  // id 0 is the empty scope, pre-interned so a sink with no SetScope
  // call still renders a well-formed (empty) scenario column.
  std::vector<std::string> strings_ = {""};
  std::map<std::string, uint32_t> ids_ = {{"", 0}};
  uint32_t scope_ = 0;
};

/// Human-readable adapter: one `t=<ms> <event> ...` line per event
/// appended to a caller-owned string. This is the in-memory sink the
/// determinism tests byte-compare; paper-scale runs use the columnar
/// writer instead.
class StringTraceSink : public BasicTraceSink {
 public:
  explicit StringTraceSink(std::string* out) : out_(out) {}
  void Append(const TraceEvent& event) override;

 private:
  std::string* out_;
};

/// CSV adapter: the legacy streaming row format with `scenario` as a
/// proper column — `t_ms,scenario,event,lookup,peer,to,info`, header
/// exactly once (at construction), absent columns empty. oscar_trace
/// --csv replays a decoded `.otrace` through this same sink, which is
/// what makes the round trip byte-exact by construction.
class CsvTraceSink : public BasicTraceSink {
 public:
  /// Writes the header immediately; `out` must outlive the sink.
  explicit CsvTraceSink(std::ostream* out);
  void Append(const TraceEvent& event) override;
  Status Flush() override;

  static const char* Header() {
    return "t_ms,scenario,event,lookup,peer,to,info\n";
  }

 private:
  std::ostream* out_;
};

}  // namespace oscar

#endif  // OSCAR_TRACE_TRACE_H_

// Binary columnar trace encoding (`.otrace`): events buffered as
// per-column arrays and flushed in framed blocks, so a million-lookup
// trace streams to disk at ~25 bytes/event with no per-event string
// work. All integers are little-endian regardless of host.
//
//   file   := magic "OTRC" | version u32 (=1) | frame*
//   frame  := string-frame | block-frame | end-frame
//   string := 'S' u8 | id u32 | len u32 | bytes[len]
//   block  := 'B' u8 | scope u32 | count u32
//             | t_us   u64[count]      (column order fixed)
//             | kind   u8 [count]
//             | lookup u32[count]
//             | peer   u32[count]
//             | to     u32[count]
//             | info   u32[count]
//   end    := 'E' u8 | total_events u64
//
// String frames are written when a string is first interned, so every
// scope id is defined before any block references it. The end frame's
// event total lets the reader reject truncated files.

#ifndef OSCAR_TRACE_COLUMNAR_TRACE_H_
#define OSCAR_TRACE_COLUMNAR_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace oscar {

inline constexpr char kOtraceMagic[4] = {'O', 'T', 'R', 'C'};
inline constexpr uint32_t kOtraceVersion = 1;
inline constexpr uint8_t kOtraceStringTag = 'S';
inline constexpr uint8_t kOtraceBlockTag = 'B';
inline constexpr uint8_t kOtraceEndTag = 'E';

class ColumnarTraceWriter : public BasicTraceSink {
 public:
  /// Writes the file header immediately; `out` must outlive the writer
  /// and should be opened in binary mode. Blocks flush every
  /// `block_capacity` events (and on scope changes, so each block has
  /// one scope).
  explicit ColumnarTraceWriter(std::ostream* out,
                               size_t block_capacity = 4096);
  ~ColumnarTraceWriter() override;  // Closes if the caller did not.

  void SetScope(uint32_t scope_id) override;
  void Append(const TraceEvent& event) override;
  Status Flush() override;

  /// Flushes and writes the end frame. Further Appends are a bug (they
  /// would follow the end frame and fail the read). Idempotent.
  Status Close();

  uint64_t events_written() const { return total_events_; }

 protected:
  void OnNewString(uint32_t id, const std::string& text) override;

 private:
  void FlushBlock();

  std::ostream* out_;
  const size_t block_capacity_;
  bool closed_ = false;
  uint64_t total_events_ = 0;
  // The pending block, one vector per column.
  std::vector<uint64_t> t_us_;
  std::vector<uint8_t> kind_;
  std::vector<uint32_t> lookup_;
  std::vector<uint32_t> peer_;
  std::vector<uint32_t> to_;
  std::vector<uint32_t> info_;
  std::string frame_;  // Serialization scratch, reused across frames.
};

}  // namespace oscar

#endif  // OSCAR_TRACE_COLUMNAR_TRACE_H_

#include "churn/churn.h"

#include <algorithm>

#include "common/string_util.h"

namespace oscar {

Result<size_t> CrashFraction(Network* net, double fraction, Rng* rng) {
  if (fraction < 0.0 || fraction >= 1.0) {
    return Status::Error(
        StrCat("crash fraction must be in [0, 1), got ", fraction));
  }
  std::vector<PeerId> alive = net->AlivePeers();
  size_t to_crash = static_cast<size_t>(
      fraction * static_cast<double>(alive.size()));
  to_crash = std::min(to_crash, alive.size() > 0 ? alive.size() - 1 : 0);
  // Partial Fisher-Yates: the first `to_crash` entries become a uniform
  // sample without replacement.
  for (size_t i = 0; i < to_crash; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng->UniformInt(alive.size() - i));
    std::swap(alive[i], alive[j]);
    net->Crash(alive[i]);
  }
  return to_crash;
}

Result<RollingChurnReport> RollingChurn(Network* net,
                                        const RollingChurnOptions& options,
                                        const KeyDistribution& keys,
                                        const DegreeDistribution& degrees,
                                        const RebuildFn& rebuild, Rng* rng) {
  if (options.rounds < 0) {
    return Status::Error("rolling churn: negative round count");
  }
  if (!rebuild) {
    return Status::Error("rolling churn: missing rebuild callback");
  }
  RollingChurnReport report;
  for (int round = 0; round < options.rounds; ++round) {
    std::vector<PeerId> alive = net->AlivePeers();
    const size_t leaves = std::min(
        options.leaves_per_round,
        alive.size() > 1 ? alive.size() - 1 : 0);
    for (size_t i = 0; i < leaves; ++i) {
      const size_t j =
          i + static_cast<size_t>(rng->UniformInt(alive.size() - i));
      std::swap(alive[i], alive[j]);
      net->Crash(alive[i]);
      ++report.left;
    }
    for (size_t i = 0; i < options.joins_per_round; ++i) {
      const PeerId id = net->Join(keys.Sample(rng), degrees.Sample(rng));
      const Status status = rebuild(net, id, rng);
      if (!status.ok()) return status;
      ++report.joined;
    }
  }
  return report;
}

}  // namespace oscar

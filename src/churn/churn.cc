#include "churn/churn.h"

#include <algorithm>

#include "common/string_util.h"

namespace oscar {

Result<size_t> CrashFraction(Network* net, double fraction, Rng* rng) {
  if (fraction < 0.0 || fraction >= 1.0) {
    return Status::Error(
        StrCat("crash fraction must be in [0, 1), got ", fraction));
  }
  std::vector<PeerId> alive = net->AlivePeers();
  size_t to_crash = static_cast<size_t>(
      fraction * static_cast<double>(alive.size()));
  to_crash = std::min(to_crash, alive.size() > 0 ? alive.size() - 1 : 0);
  // Partial Fisher-Yates: the first `to_crash` entries become a uniform
  // sample without replacement. The crashes themselves consume no rng,
  // so batching them after the draws (one ring pass via CrashMany
  // instead of a ring erase per victim) leaves the result identical.
  for (size_t i = 0; i < to_crash; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng->UniformInt(alive.size() - i));
    std::swap(alive[i], alive[j]);
  }
  alive.resize(to_crash);
  net->CrashMany(alive);
  return to_crash;
}

namespace {

/// One churn round: `leaves` uniform crashes (never the last alive
/// peer) then `joins` wired joins. Shared by the synchronous rounds and
/// the event-scheduled handler.
Status OneChurnRound(Network* net, size_t leaves, size_t joins,
                     const KeyDistribution& keys,
                     const DegreeDistribution& degrees,
                     const RebuildFn& rebuild, Rng* rng, size_t* left,
                     size_t* joined) {
  std::vector<PeerId> alive = net->AlivePeers();
  const size_t to_crash =
      std::min(leaves, alive.size() > 1 ? alive.size() - 1 : 0);
  for (size_t i = 0; i < to_crash; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng->UniformInt(alive.size() - i));
    std::swap(alive[i], alive[j]);
  }
  alive.resize(to_crash);
  net->CrashMany(alive);
  *left += to_crash;
  for (size_t i = 0; i < joins; ++i) {
    const PeerId id = net->Join(keys.Sample(rng), degrees.Sample(rng));
    const Status status = rebuild(net, id, rng);
    if (!status.ok()) return status;
    ++*joined;
  }
  return Status::Ok();
}

}  // namespace

Result<RollingChurnReport> RollingChurn(Network* net,
                                        const RollingChurnOptions& options,
                                        const KeyDistribution& keys,
                                        const DegreeDistribution& degrees,
                                        const RebuildFn& rebuild, Rng* rng) {
  if (options.rounds < 0) {
    return Status::Error("rolling churn: negative round count");
  }
  if (!rebuild) {
    return Status::Error("rolling churn: missing rebuild callback");
  }
  RollingChurnReport report;
  for (int round = 0; round < options.rounds; ++round) {
    const Status status =
        OneChurnRound(net, options.leaves_per_round, options.joins_per_round,
                      keys, degrees, rebuild, rng, &report.left,
                      &report.joined);
    if (!status.ok()) return status;
  }
  return report;
}

Result<size_t> CrashSegment(Network* net, KeyId from, double span) {
  if (span < 0.0 || span >= 1.0) {
    return Status::Error(
        StrCat("crash segment: span must be in [0, 1), got ", span));
  }
  const KeyId to = from.OffsetBy(span);
  std::vector<PeerId> victims;
  for (PeerId id : net->AlivePeers()) {
    if (InClockwiseSegment(net->key(id), from, to)) {
      victims.push_back(id);
    }
  }
  // A region covering everyone still leaves one survivor (ring-order
  // last), mirroring CrashFraction's guarantee.
  if (victims.size() == net->alive_count() && !victims.empty()) {
    victims.pop_back();
  }
  net->CrashMany(victims);
  return victims.size();
}

void ScheduleChurn(EventEngine* engine, Network* net,
                   const ChurnScheduleOptions& options,
                   const KeyDistribution& keys,
                   const DegreeDistribution& degrees, const RebuildFn& rebuild,
                   Rng* rng, ChurnScheduleReport* report) {
  for (int event = 0; event < options.events; ++event) {
    const SimTime at =
        options.start_ms + static_cast<double>(event) * options.interval_ms;
    engine->ScheduleAt(at, [net, options, &keys, &degrees, rebuild, rng,
                            report] {
      if (!report->status.ok()) return;  // A rebuild already failed.
      report->status = OneChurnRound(
          net, options.leaves_per_event, options.joins_per_event, keys,
          degrees, rebuild, rng, &report->left, &report->joined);
    });
  }
}

}  // namespace oscar

// Churn processes: one-shot crash waves (the paper's Fig 2 setup), a
// continuous leave/join process for steady-state experiments (X8),
// correlated regional crashes, and event-scheduled churn that fires on
// the discrete-event engine while lookups are in flight.

#ifndef OSCAR_CHURN_CHURN_H_
#define OSCAR_CHURN_CHURN_H_

#include <functional>

#include "common/status.h"
#include "core/network.h"
#include "degree/degree_distribution.h"
#include "keyspace/key_distribution.h"
#include "sim/event_engine.h"

namespace oscar {

/// Crashes floor(fraction * alive) uniformly chosen peers, always
/// leaving at least one alive. Returns the number crashed. Fails when
/// fraction is outside [0, 1).
Result<size_t> CrashFraction(Network* net, double fraction, Rng* rng);

struct RollingChurnOptions {
  size_t leaves_per_round = 0;
  size_t joins_per_round = 0;
  int rounds = 1;
};

struct RollingChurnReport {
  size_t left = 0;
  size_t joined = 0;
};

/// Called for each joining peer to wire it into the overlay.
using RebuildFn = std::function<Status(Network*, PeerId, Rng*)>;

/// Runs `rounds` rounds of `leaves_per_round` crashes followed by
/// `joins_per_round` joins (keys and degree budgets sampled from the
/// given distributions, each new peer wired via `rebuild`).
Result<RollingChurnReport> RollingChurn(Network* net,
                                        const RollingChurnOptions& options,
                                        const KeyDistribution& keys,
                                        const DegreeDistribution& degrees,
                                        const RebuildFn& rebuild, Rng* rng);

/// Crashes every alive peer whose key lies in the clockwise segment
/// [from, from + span) — a correlated regional failure (all peers of
/// one data center / prefix going down together). Always leaves at
/// least one peer alive. Returns the number crashed. Fails when span is
/// outside [0, 1).
Result<size_t> CrashSegment(Network* net, KeyId from, double span);

struct ChurnScheduleOptions {
  SimTime start_ms = 0.0;     // When the first event fires.
  SimTime interval_ms = 0.0;  // Spacing between events.
  int events = 0;
  size_t leaves_per_event = 0;
  size_t joins_per_event = 0;
};

/// Filled in as scheduled events fire; `status` latches the first
/// rebuild failure (events after a failure do nothing).
struct ChurnScheduleReport {
  size_t left = 0;
  size_t joined = 0;
  Status status;
};

/// Schedules `events` churn events on the engine: each crashes
/// `leaves_per_event` uniformly chosen peers (never the last one) and
/// joins `joins_per_event` new peers wired via `rebuild`. All borrowed
/// references must outlive the engine run. This is how stale links,
/// in-flight lookups racing crashes, and timeout-driven recovery enter
/// the message-level simulation — failures land *between* message
/// events, never at convenient barriers.
void ScheduleChurn(EventEngine* engine, Network* net,
                   const ChurnScheduleOptions& options,
                   const KeyDistribution& keys,
                   const DegreeDistribution& degrees, const RebuildFn& rebuild,
                   Rng* rng, ChurnScheduleReport* report);

}  // namespace oscar

#endif  // OSCAR_CHURN_CHURN_H_

// Churn processes: one-shot crash waves (the paper's Fig 2 setup) and a
// continuous leave/join process for steady-state experiments (X8).

#ifndef OSCAR_CHURN_CHURN_H_
#define OSCAR_CHURN_CHURN_H_

#include <functional>

#include "common/status.h"
#include "core/network.h"
#include "degree/degree_distribution.h"
#include "keyspace/key_distribution.h"

namespace oscar {

/// Crashes floor(fraction * alive) uniformly chosen peers, always
/// leaving at least one alive. Returns the number crashed. Fails when
/// fraction is outside [0, 1).
Result<size_t> CrashFraction(Network* net, double fraction, Rng* rng);

struct RollingChurnOptions {
  size_t leaves_per_round = 0;
  size_t joins_per_round = 0;
  int rounds = 1;
};

struct RollingChurnReport {
  size_t left = 0;
  size_t joined = 0;
};

/// Called for each joining peer to wire it into the overlay.
using RebuildFn = std::function<Status(Network*, PeerId, Rng*)>;

/// Runs `rounds` rounds of `leaves_per_round` crashes followed by
/// `joins_per_round` joins (keys and degree budgets sampled from the
/// given distributions, each new peer wired via `rebuild`).
Result<RollingChurnReport> RollingChurn(Network* net,
                                        const RollingChurnOptions& options,
                                        const KeyDistribution& keys,
                                        const DegreeDistribution& degrees,
                                        const RebuildFn& rebuild, Rng* rng);

}  // namespace oscar

#endif  // OSCAR_CHURN_CHURN_H_
